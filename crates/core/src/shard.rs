//! A sharded parallel monitoring engine: the parameter-instance space is
//! partitioned across N worker shards, each owning a private [`Engine`]
//! per property block, so no locks are taken on the event hot path.
//!
//! Parametric trace slicing is embarrassingly parallel per slice (Roşu &
//! Chen): once an event is routed to the parameter instances it affects,
//! each monitor instance steps independently. The partition key is the
//! property's *owner parameter* — the parameter bound by the most events
//! of the alphabet ([`owner_param`]). Routing follows the paper's Figure 5
//! indexing discipline:
//!
//! * an event whose instance binds the owner is routed to exactly one
//!   shard, by a stable splitmix64-seeded hash of the owner *object*;
//! * an event whose (partial) instance does not bind the owner is
//!   broadcast to every shard.
//!
//! Verdict equivalence with the sequential engine holds because slices
//! never span shards under this rule. A monitor binding owner object `o`
//! only ever interacts — through joins, the disable table, and timestamp
//! comparisons — with monitors and event instances that either bind the
//! same `o` (routed to the same shard) or bind no owner at all
//! (broadcast, hence present in that shard); and each shard sees its
//! subsequence in global order, so every timestamp comparison agrees with
//! the sequential run. Monitors that do *not* bind the owner are stepped
//! only by broadcast events and are therefore identical replicas in every
//! shard; their goal reports are deduplicated by accepting shard 0's copy
//! only.
//!
//! Events travel in per-shard batches (configurable) to amortize channel
//! crossings; trigger reports funnel back and are ordered by
//! `(event_seq, ordinal)` so output is deterministic regardless of shard
//! interleaving — the same key the write-ahead journal uses. Per-shard
//! [`EngineStats`] are aggregated through [`EngineStats::merge_from`],
//! whose peak-vs-counter semantics this module is the first cross-thread
//! consumer of.
//!
//! # Heap access
//!
//! Workers read the shared [`Heap`] through liveness queries only
//! (`Heap: Sync`). A [`ShardSession`] borrows the heap for its whole
//! lifetime and quiesces every worker on drop, so the heap can only be
//! mutated (collections, frees, kills) *between* sessions, when no batch
//! is in flight.

use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use rv_heap::{Heap, HeapConfig, ObjId, SplitMix64};
use rv_logic::{EventId, ParamId, Verdict};
use rv_spec::CompiledSpec;

use crate::binding::Binding;
use crate::engine::{EngineConfig, GcPolicy};
use crate::error::EngineError;
use crate::multi::PropertyMonitor;
use crate::obs::{EngineObserver, NoopObserver, Phase};
use crate::profile::PhaseProfiler;
use crate::reference::{monitor_trace, Trigger};
use crate::stats::EngineStats;

/// Sharding parameters.
#[derive(Clone, Copy, Debug)]
pub struct ShardConfig {
    /// Number of worker shards (≥ 1).
    pub shards: usize,
    /// Events buffered per shard before a batch is sent (≥ 1).
    pub batch: usize,
    /// Seed for the owner-object routing hash. Any value is correct; it
    /// only shifts which shard a given owner object lands on.
    pub seed: u64,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig { shards: 4, batch: 64, seed: 0x5EED }
    }
}

impl ShardConfig {
    /// A config with `shards` workers and default batch/seed.
    #[must_use]
    pub fn with_shards(shards: usize) -> Self {
        ShardConfig { shards, ..ShardConfig::default() }
    }
}

/// A per-worker trigger-handler factory: called as `factory(shard, block)`
/// inside each worker thread so the (non-`Send`) handler closure is built
/// where it runs. Returning `None` leaves that engine handler-free.
///
/// This is how a driver attaches fallible user callbacks to a sharded
/// monitor — and how tests prove the engine's panic-quarantine behaves
/// identically at every shard count.
pub type HandlerFactory =
    Arc<dyn Fn(usize, usize) -> Option<Box<dyn FnMut(usize, &Binding, Verdict)>> + Send + Sync>;

/// One splitmix64 mixing round — the stable routing hash.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The shard an owner object is routed to.
fn shard_of(owner: ObjId, seed: u64, shards: usize) -> usize {
    (splitmix64(owner.to_bits() ^ seed) % shards as u64) as usize
}

/// The designated owner parameter of a spec: the parameter bound by the
/// most events of the alphabet (ties go to the lowest [`ParamId`]), or
/// `None` for a parameterless spec.
///
/// Any parameter is a *correct* partition key; the one bound most often
/// minimizes broadcast traffic.
#[must_use]
pub fn owner_param(spec: &CompiledSpec) -> Option<ParamId> {
    let mut best: Option<(usize, ParamId)> = None;
    for i in 0..spec.event_def.param_count() {
        let p = ParamId(i as u8);
        let bound = (0..spec.alphabet.len())
            .filter(|&e| spec.event_def.params_of(EventId(e as u16)).contains(p))
            .count();
        if best.is_none_or(|(c, _)| bound > c) {
            best = Some((bound, p));
        }
    }
    best.map(|(_, p)| p)
}

/// A goal report from the sharded engine, keyed for deterministic output
/// and journal compatibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ShardTrigger {
    /// Global 0-based sequence number of the triggering event.
    pub event_seq: u64,
    /// Tie-breaker among reports of the same event, assigned after the
    /// deterministic `(event_seq, block, binding, verdict)` sort.
    pub ordinal: u32,
    /// Property block the report came from.
    pub block: usize,
    /// The parameter instance whose slice reached the goal.
    pub binding: Binding,
    /// The goal verdict reached.
    pub verdict: Verdict,
}

impl ShardTrigger {
    /// The reference-oracle shape of this report (`step` = global event
    /// sequence number).
    #[must_use]
    pub fn as_reference(&self) -> Trigger {
        Trigger { step: self.event_seq as usize, binding: self.binding, verdict: self.verdict }
    }
}

/// A raw pointer to the shared heap, sendable to worker threads.
///
/// Soundness: `Heap: Sync`, and the coordinator guarantees the pointee
/// outlives every in-flight batch — [`ShardSession`] borrows the heap and
/// quiesces all workers before the borrow ends, and [`ShardedMonitor::finish`]
/// holds its heap borrow until every worker has joined.
struct HeapRef(*const Heap);

// SAFETY: see the struct docs — the pointee is a `Sync` heap kept alive
// and unmutated for as long as any worker may dereference the pointer.
unsafe impl Send for HeapRef {}

impl HeapRef {
    /// # Safety
    ///
    /// Callers must only dereference between receiving the message that
    /// carried this ref and sending the acknowledgement for it.
    unsafe fn get(&self) -> &Heap {
        unsafe { &*self.0 }
    }
}

/// One routed event, as delivered to a shard.
struct EventMsg {
    seq: u64,
    event: EventId,
    binding: Binding,
    /// Which property blocks this shard must step for this event.
    block_mask: u64,
}

enum Msg {
    Batch(HeapRef, Vec<EventMsg>),
    Sweep(HeapRef),
    Finish(HeapRef),
}

/// A trigger observed by a worker, before coordinator dedup/ordering.
struct RawTrigger {
    event_seq: u64,
    block: usize,
    binding: Binding,
    verdict: Verdict,
}

/// Per-message acknowledgement: the coordinator counts these to quiesce.
struct Ack {
    triggers: Vec<RawTrigger>,
}

/// What a worker thread returns when joined.
struct WorkerDone<O> {
    /// Per-block final stats.
    stats: Vec<EngineStats>,
    /// Per-block observers, extracted from the engines.
    observers: Vec<O>,
    /// First error any engine's infallible facade swallowed.
    error: Option<EngineError>,
}

struct WorkerHandle<O> {
    tx: Sender<Msg>,
    ack_rx: Receiver<Ack>,
    handle: JoinHandle<WorkerDone<O>>,
}

fn worker_loop<O: EngineObserver + Default>(
    spec: CompiledSpec,
    config: EngineConfig,
    observers: Vec<O>,
    handlers: Option<HandlerFactory>,
    shard: usize,
    rx: Receiver<Msg>,
    ack_tx: Sender<Ack>,
) -> WorkerDone<O> {
    let mut slots: Vec<Option<O>> = observers.into_iter().map(Some).collect();
    let mut monitor: PropertyMonitor<O> =
        PropertyMonitor::with_observers(spec, &config, |i| slots[i].take().expect("one per block"));
    if let Some(factory) = handlers {
        // Handlers are built on this thread — they need not be `Send` —
        // and the engine wraps each call in its own panic boundary.
        for (b, engine) in monitor.engines_mut().iter_mut().enumerate() {
            if let Some(h) = factory(shard, b) {
                engine.set_trigger_handler(h);
            }
        }
    }
    let blocks = monitor.engines().len();
    // Triggers already reported per block, so each event's new reports can
    // be diffed off the engines' recorded-trigger logs.
    let mut seen = vec![0usize; blocks];
    let mut error: Option<EngineError> = None;
    while let Ok(msg) = rx.recv() {
        match msg {
            Msg::Batch(heap, events) => {
                // SAFETY: the coordinator keeps the heap borrowed until it
                // has received the ack sent below.
                let heap = unsafe { heap.get() };
                let mut out = Vec::new();
                for ev in &events {
                    for (b, engine) in monitor.engines_mut().iter_mut().enumerate() {
                        if ev.block_mask & (1 << b) == 0 {
                            continue;
                        }
                        engine.process(heap, ev.event, ev.binding);
                        if let Some(e) = engine.take_last_error() {
                            error.get_or_insert(e);
                        }
                        let triggers = engine.triggers();
                        for t in &triggers[seen[b]..] {
                            out.push(RawTrigger {
                                event_seq: ev.seq,
                                block: b,
                                binding: t.binding,
                                verdict: t.verdict,
                            });
                        }
                        seen[b] = triggers.len();
                    }
                }
                if ack_tx.send(Ack { triggers: out }).is_err() {
                    break;
                }
            }
            Msg::Sweep(heap) => {
                // SAFETY: `sweep` holds its heap borrow until the ack below
                // is received.
                let heap = unsafe { heap.get() };
                for engine in monitor.engines_mut() {
                    engine.full_sweep(heap);
                }
                if ack_tx.send(Ack { triggers: Vec::new() }).is_err() {
                    break;
                }
            }
            Msg::Finish(heap) => {
                // SAFETY: `finish` holds its heap borrow until join.
                monitor.finish(unsafe { heap.get() });
                let _ = ack_tx.send(Ack { triggers: Vec::new() });
                break;
            }
        }
    }
    WorkerDone {
        stats: monitor.engines().iter().map(|e| e.stats()).collect(),
        observers: monitor
            .engines_mut()
            .iter_mut()
            .map(|e| std::mem::replace(e.observer_mut(), O::default()))
            .collect(),
        error,
    }
}

/// The final accounting of a sharded run.
#[derive(Debug)]
pub struct ShardReport<O = NoopObserver> {
    /// All shards' stats aggregated through [`EngineStats::merge_from`]
    /// (additive counters sum, high-water marks max).
    pub stats: EngineStats,
    /// Per-shard stats, each merged across that shard's property blocks.
    pub per_shard: Vec<EngineStats>,
    /// Deduplicated goal reports in deterministic
    /// `(event_seq, ordinal)` order.
    pub triggers: Vec<ShardTrigger>,
    /// Per-shard, per-block observers extracted from the worker engines.
    pub observers: Vec<Vec<O>>,
    /// Events submitted to [`ShardSession::process`].
    pub events: u64,
    /// Events delivered to exactly one shard (instance bound the owner).
    pub routed_events: u64,
    /// Events delivered to more than one shard (partial instances).
    pub broadcast_events: u64,
    /// Total `(shard, block)` deliveries; with a valid trace this equals
    /// the merged `stats.events`.
    pub deliveries: u64,
    /// Coordinator-side routing/broadcast timing: one
    /// [`Phase::ShardRoute`] span per submitted event, recorded only when
    /// the observer type is enabled (`NoopObserver` runs compile it out).
    pub route_profile: PhaseProfiler,
    /// First failure observed anywhere: a worker-side engine error or a
    /// disconnected shard.
    pub error: Option<EngineError>,
}

impl<O> ShardReport<O> {
    /// The reports of one property block, in oracle shape.
    #[must_use]
    pub fn block_triggers(&self, block: usize) -> Vec<Trigger> {
        self.triggers.iter().filter(|t| t.block == block).map(ShardTrigger::as_reference).collect()
    }
}

/// A sharded multi-property monitor: [`PropertyMonitor`] semantics,
/// partitioned across worker threads.
///
/// Feed events through a [`ShardSession`] (see [`ShardedMonitor::session`]);
/// mutate the heap only between sessions; call
/// [`ShardedMonitor::finish`] to quiesce, join and aggregate.
pub struct ShardedMonitor<O: EngineObserver + Send + Default + 'static = NoopObserver> {
    owners: Vec<Option<ParamId>>,
    shard_cfg: ShardConfig,
    workers: Vec<WorkerHandle<O>>,
    /// Per-shard outgoing batch buffers.
    buffers: Vec<Vec<EventMsg>>,
    /// Per-shard count of batches sent but not yet acknowledged.
    outstanding: Vec<usize>,
    /// Scratch per-shard block masks, reused across events.
    masks: Vec<u64>,
    /// Accepted (post-dedup) triggers; ordinals assigned at `finish`.
    triggers: Vec<ShardTrigger>,
    seq: u64,
    routed: u64,
    broadcast: u64,
    deliveries: u64,
    route_profile: PhaseProfiler,
    error: Option<EngineError>,
    alphabet: rv_logic::Alphabet,
}

impl ShardedMonitor<NoopObserver> {
    /// Builds a sharded monitor with no-op observers.
    ///
    /// # Panics
    ///
    /// Panics if `shard_cfg.shards` or `shard_cfg.batch` is zero, or if
    /// the spec has more than 64 property blocks.
    #[must_use]
    pub fn new(spec: CompiledSpec, config: &EngineConfig, shard_cfg: ShardConfig) -> Self {
        ShardedMonitor::with_observers(spec, config, shard_cfg, |_, _| NoopObserver)
    }
}

impl<O: EngineObserver + Send + Default + 'static> ShardedMonitor<O> {
    /// Builds a sharded monitor, attaching `make(shard, block)` as the
    /// observer of each worker engine.
    ///
    /// Worker engines always record triggers (the deduplication rule needs
    /// each report's binding); every other [`EngineConfig`] knob is taken
    /// as given.
    ///
    /// # Panics
    ///
    /// Panics if `shard_cfg.shards` or `shard_cfg.batch` is zero, or if
    /// the spec has more than 64 property blocks.
    #[must_use]
    pub fn with_observers(
        spec: CompiledSpec,
        config: &EngineConfig,
        shard_cfg: ShardConfig,
        make: impl FnMut(usize, usize) -> O,
    ) -> Self {
        Self::with_observers_and_handlers(spec, config, shard_cfg, make, None)
    }

    /// [`ShardedMonitor::with_observers`] plus a [`HandlerFactory`]: each
    /// worker engine gets `handlers(shard, block)` installed as its
    /// trigger handler. Handlers run inside the engine's panic boundary,
    /// so a panicking handler quarantines the offending monitor on its
    /// shard without disturbing any other shard.
    ///
    /// # Panics
    ///
    /// Panics if `shard_cfg.shards` or `shard_cfg.batch` is zero, or if
    /// the spec has more than 64 property blocks.
    #[must_use]
    pub fn with_observers_and_handlers(
        spec: CompiledSpec,
        config: &EngineConfig,
        shard_cfg: ShardConfig,
        mut make: impl FnMut(usize, usize) -> O,
        handlers: Option<HandlerFactory>,
    ) -> Self {
        assert!(shard_cfg.shards >= 1, "at least one shard");
        assert!(shard_cfg.batch >= 1, "batch size must be positive");
        let blocks = spec.properties.len();
        assert!(blocks <= 64, "at most 64 property blocks per sharded spec");
        let owner = owner_param(&spec);
        let mut worker_cfg = config.clone();
        worker_cfg.record_triggers = true;
        let workers = (0..shard_cfg.shards)
            .map(|s| {
                let (tx, rx) = std::sync::mpsc::channel();
                let (ack_tx, ack_rx) = std::sync::mpsc::channel();
                let spec = spec.clone();
                let cfg = worker_cfg.clone();
                let observers: Vec<O> = (0..blocks).map(|b| make(s, b)).collect();
                let factory = handlers.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("rv-shard-{s}"))
                    .spawn(move || worker_loop(spec, cfg, observers, factory, s, rx, ack_tx))
                    .expect("spawn shard worker");
                WorkerHandle { tx, ack_rx, handle }
            })
            .collect();
        ShardedMonitor {
            owners: vec![owner; blocks],
            shard_cfg,
            workers,
            buffers: (0..shard_cfg.shards).map(|_| Vec::new()).collect(),
            outstanding: vec![0; shard_cfg.shards],
            masks: vec![0; shard_cfg.shards],
            triggers: Vec::new(),
            seq: 0,
            routed: 0,
            broadcast: 0,
            deliveries: 0,
            route_profile: PhaseProfiler::new().with_label("shard-coordinator"),
            error: None,
            alphabet: spec.alphabet,
        }
    }

    /// Number of worker shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shard_cfg.shards
    }

    /// Looks up an event id by name.
    #[must_use]
    pub fn event(&self, name: &str) -> Option<EventId> {
        self.alphabet.lookup(name)
    }

    /// Opens an event-feeding session. The session shares `heap` with the
    /// worker threads; dropping it quiesces every worker, after which the
    /// heap may be mutated again.
    pub fn session<'h, 'm>(&'m mut self, heap: &'h Heap) -> ShardSession<'h, 'm, O> {
        ShardSession { mon: self, heap }
    }

    /// The first failure observed so far (worker engine error or shard
    /// disconnect). Sticky; [`ShardedMonitor::finish`] also reports it.
    #[must_use]
    pub fn last_error(&self) -> Option<&EngineError> {
        self.error.as_ref()
    }

    /// Runs a full monitor sweep ([`Engine::full_sweep`](crate::Engine::full_sweep))
    /// on every engine of every shard, quiescing before and after — the
    /// sharded counterpart of sweeping each engine of a
    /// [`PropertyMonitor`].
    pub fn sweep(&mut self, heap: &Heap) {
        self.quiesce(heap);
        for s in 0..self.shard_cfg.shards {
            let heap_ref = HeapRef(std::ptr::from_ref(heap));
            if self.workers[s].tx.send(Msg::Sweep(heap_ref)).is_ok() {
                self.outstanding[s] += 1;
            } else {
                self.error.get_or_insert(EngineError::ShardDisconnected { shard: s });
            }
        }
        self.quiesce(heap);
    }

    /// Drains the triggers accepted so far, deterministically ordered and
    /// with `(event_seq, ordinal)` keys assigned (see
    /// [`ShardedMonitor::finish`]).
    ///
    /// Call only between sessions (or after [`ShardSession::flush`]): at a
    /// quiesce point every trigger of every submitted event has arrived,
    /// so the drained prefix is complete and final. Triggers produced by
    /// later events are *not* re-numbered from zero — ordinals are per
    /// `event_seq`, so drained and finish-returned streams concatenate
    /// into exactly the stream an undrained run would report.
    pub fn drain_triggers(&mut self) -> Vec<ShardTrigger> {
        let mut triggers = std::mem::take(&mut self.triggers);
        order_triggers(&mut triggers);
        triggers
    }

    fn route(&mut self, heap: &Heap, event: EventId, binding: Binding) {
        // Time the routing decision + batch hand-off; compiled out on
        // NoopObserver runs like every other phase span.
        let span =
            if O::ENABLED { Some(self.route_profile.enter(Phase::ShardRoute)) } else { None };
        let seq = self.seq;
        self.seq += 1;
        let shards = self.shard_cfg.shards;
        self.masks.iter_mut().for_each(|m| *m = 0);
        for (b, owner) in self.owners.iter().enumerate() {
            match owner.and_then(|p| binding.get(p)) {
                Some(obj) => {
                    self.masks[shard_of(obj, self.shard_cfg.seed, shards)] |= 1 << b;
                }
                None => {
                    for m in &mut self.masks {
                        *m |= 1 << b;
                    }
                }
            }
        }
        let dests = self.masks.iter().filter(|&&m| m != 0).count();
        if dests > 1 {
            self.broadcast += 1;
        } else {
            self.routed += 1;
        }
        for s in 0..shards {
            let mask = self.masks[s];
            if mask == 0 {
                continue;
            }
            self.deliveries += u64::from(mask.count_ones());
            self.buffers[s].push(EventMsg { seq, event, binding, block_mask: mask });
            if self.buffers[s].len() >= self.shard_cfg.batch {
                self.dispatch(heap, s);
            }
        }
        if let Some(span) = span {
            self.route_profile.exit(span);
        }
    }

    fn dispatch(&mut self, heap: &Heap, s: usize) {
        if self.buffers[s].is_empty() {
            return;
        }
        let events = std::mem::take(&mut self.buffers[s]);
        let heap_ref = HeapRef(std::ptr::from_ref(heap));
        if self.workers[s].tx.send(Msg::Batch(heap_ref, events)).is_ok() {
            self.outstanding[s] += 1;
        } else {
            self.error.get_or_insert(EngineError::ShardDisconnected { shard: s });
        }
    }

    /// Flushes every buffer and waits until no batch is in flight.
    fn quiesce(&mut self, heap: &Heap) {
        for s in 0..self.shard_cfg.shards {
            self.dispatch(heap, s);
        }
        for s in 0..self.shard_cfg.shards {
            while self.outstanding[s] > 0 {
                match self.workers[s].ack_rx.recv() {
                    Ok(ack) => {
                        self.outstanding[s] -= 1;
                        self.absorb(s, ack);
                    }
                    Err(_) => {
                        // The worker is gone; nothing more will arrive.
                        self.outstanding[s] = 0;
                        self.error.get_or_insert(EngineError::ShardDisconnected { shard: s });
                    }
                }
            }
        }
    }

    /// Applies the replica-deduplication rule: a report whose binding
    /// includes the block's owner exists in exactly one shard (accept it
    /// wherever it appears); a report that does not bind the owner comes
    /// from a monitor replicated in every shard, so only shard 0's copy
    /// counts.
    fn absorb(&mut self, shard: usize, ack: Ack) {
        for t in ack.triggers {
            let owner_bound = self.owners[t.block].is_some_and(|p| t.binding.get(p).is_some());
            if owner_bound || shard == 0 {
                self.triggers.push(ShardTrigger {
                    event_seq: t.event_seq,
                    ordinal: 0,
                    block: t.block,
                    binding: t.binding,
                    verdict: t.verdict,
                });
            }
        }
    }

    /// Quiesces, runs each worker's final sweep, joins every thread, and
    /// aggregates stats, observers and deterministically ordered triggers.
    ///
    /// The `heap` borrow is held until every worker has joined, so no
    /// worker can observe a dangling heap.
    #[must_use]
    pub fn finish(mut self, heap: &Heap) -> ShardReport<O> {
        self.quiesce(heap);
        for s in 0..self.shard_cfg.shards {
            let heap_ref = HeapRef(std::ptr::from_ref(heap));
            if self.workers[s].tx.send(Msg::Finish(heap_ref)).is_ok() {
                self.outstanding[s] += 1;
            } else {
                self.error.get_or_insert(EngineError::ShardDisconnected { shard: s });
            }
        }
        self.quiesce(heap);

        let mut per_shard = Vec::new();
        let mut observers = Vec::new();
        let mut stats = EngineStats::default();
        let mut error = self.error.take();
        for w in self.workers.drain(..) {
            drop(w.tx);
            match w.handle.join() {
                Ok(done) => {
                    let mut shard_stats = EngineStats::default();
                    for s in &done.stats {
                        shard_stats.merge_from(s);
                    }
                    stats.merge_from(&shard_stats);
                    per_shard.push(shard_stats);
                    observers.push(done.observers);
                    if error.is_none() {
                        error = done.error;
                    }
                }
                Err(_) => {
                    error.get_or_insert(EngineError::ShardDisconnected { shard: per_shard.len() });
                    per_shard.push(EngineStats::default());
                    observers.push(Vec::new());
                }
            }
        }

        let mut triggers = std::mem::take(&mut self.triggers);
        order_triggers(&mut triggers);

        ShardReport {
            stats,
            per_shard,
            triggers,
            observers,
            events: self.seq,
            routed_events: self.routed,
            broadcast_events: self.broadcast,
            deliveries: self.deliveries,
            route_profile: std::mem::take(&mut self.route_profile),
            error,
        }
    }
}

/// Sorts triggers into the deterministic output order and assigns the
/// per-event ordinals: `(event_seq, block, binding, verdict)` is a total
/// order independent of shard count and thread interleaving.
fn order_triggers(triggers: &mut [ShardTrigger]) {
    triggers.sort_by_key(|t| (t.event_seq, t.block, t.binding, t.verdict));
    let mut prev = None;
    let mut ordinal = 0u32;
    for t in triggers {
        if prev != Some(t.event_seq) {
            prev = Some(t.event_seq);
            ordinal = 0;
        }
        t.ordinal = ordinal;
        ordinal += 1;
    }
}

/// An event-feeding window over a [`ShardedMonitor`]: holds the heap
/// borrow that makes the worker threads' shared reads sound, and quiesces
/// every worker on drop.
pub struct ShardSession<'h, 'm, O: EngineObserver + Send + Default + 'static = NoopObserver> {
    mon: &'m mut ShardedMonitor<O>,
    heap: &'h Heap,
}

impl<O: EngineObserver + Send + Default + 'static> ShardSession<'_, '_, O> {
    /// Routes one parametric event: to the shard owning the binding's
    /// owner object, or to every shard if the instance does not bind the
    /// owner. Batches are sent as they fill.
    ///
    /// Never panics and never blocks on the workers; failures stick to
    /// [`ShardedMonitor::last_error`].
    pub fn process(&mut self, event: EventId, binding: Binding) {
        self.mon.route(self.heap, event, binding);
    }

    /// Dispatches by event name.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a declared event of the spec.
    pub fn process_named(&mut self, name: &str, binding: Binding) {
        let event = self.mon.event(name).unwrap_or_else(|| panic!("spec has no event `{name}`"));
        self.process(event, binding);
    }

    /// Flushes all buffers and waits until every in-flight batch has been
    /// acknowledged (the state [`Drop`] also establishes).
    pub fn flush(&mut self) {
        self.mon.quiesce(self.heap);
    }
}

impl<O: EngineObserver + Send + Default + 'static> Drop for ShardSession<'_, '_, O> {
    fn drop(&mut self) {
        self.mon.quiesce(self.heap);
    }
}

/// Live parameter objects available to the differential event generator.
const POOL: usize = 6;

/// Per-event probability of killing (and replacing) a pool object.
const KILL_PROB: f64 = 0.12;

/// The outcome of one sharded differential run ([`differential_run`]).
#[derive(Debug)]
pub struct ShardDifferential {
    /// Parametric events emitted.
    pub trace_len: usize,
    /// Property blocks compared.
    pub blocks: usize,
    /// Human-readable descriptions of every disagreement; empty on a
    /// passing run.
    pub mismatches: Vec<String>,
    /// The sequential monitor's merged stats.
    pub sequential_stats: EngineStats,
    /// The sharded run's full report.
    pub report: ShardReport,
}

impl ShardDifferential {
    /// Whether the sharded engine agreed with the sequential engine and
    /// the Figure 5 oracle everywhere.
    #[must_use]
    pub fn matches(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Runs every property block of `spec` under `policy` over a
/// seed-reproducible random workload, three ways — sequential
/// [`PropertyMonitor`], [`ShardedMonitor`] with `shard_cfg`, and the
/// Figure 5 reference oracle — and cross-checks them: per-block first
/// reports per binding must agree exactly, merged stats must satisfy the
/// sharding accounting identities, and a 1-shard run must reproduce the
/// sequential stats verbatim.
///
/// The workload interleaves event bursts with object kills
/// (unpin + collect on a plain manual heap); kills only happen between
/// shard sessions, exactly the quiesce discipline real drivers must
/// follow.
///
/// # Errors
///
/// Any [`EngineError`] either engine reports — under correct operation,
/// none.
pub fn differential_run(
    spec: &CompiledSpec,
    policy: GcPolicy,
    shard_cfg: ShardConfig,
    seed: u64,
    events: usize,
) -> Result<ShardDifferential, EngineError> {
    let config = EngineConfig { policy, record_triggers: true, ..EngineConfig::default() };
    differential_impl(spec, &config, shard_cfg, seed, events, true)
}

/// [`differential_run`] with a caller-supplied full [`EngineConfig`] —
/// budgets, degradation ladder and all. The sharded and sequential
/// engines are still required to agree exactly; the Figure 5 oracle
/// comparison is skipped, because the abstract algorithm models no
/// resource budgets (a correctly shedding engine reports *fewer*
/// triggers than the oracle by design).
///
/// # Errors
///
/// Any [`EngineError`] either engine reports.
pub fn differential_run_with(
    spec: &CompiledSpec,
    config: &EngineConfig,
    shard_cfg: ShardConfig,
    seed: u64,
    events: usize,
) -> Result<ShardDifferential, EngineError> {
    let mut config = config.clone();
    config.record_triggers = true;
    differential_impl(spec, &config, shard_cfg, seed, events, false)
}

fn differential_impl(
    spec: &CompiledSpec,
    config: &EngineConfig,
    shard_cfg: ShardConfig,
    seed: u64,
    events: usize,
    check_oracle: bool,
) -> Result<ShardDifferential, EngineError> {
    let mut heap = Heap::new(HeapConfig::manual());
    let class = heap.register_class("Object");
    let frame = heap.enter_frame();
    let mut pool: Vec<ObjId> = (0..POOL).map(|_| heap.alloc(class)).collect();
    for &o in &pool {
        heap.pin(o);
    }
    heap.exit_frame(frame);

    let mut sequential = PropertyMonitor::new(spec.clone(), config);
    let mut sharded = ShardedMonitor::new(spec.clone(), config, shard_cfg);
    let mut rng = SplitMix64::new(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1));
    let mut trace: Vec<(EventId, Binding)> = Vec::new();

    while trace.len() < events {
        if rng.chance(KILL_PROB) {
            // Heap mutation: legal here because no session is open, so
            // every worker is quiesced.
            let slot = rng.gen_range(POOL);
            heap.unpin(pool[slot]);
            let f = heap.enter_frame();
            let fresh = heap.alloc(class);
            heap.pin(fresh);
            heap.exit_frame(f);
            pool[slot] = fresh;
            heap.collect();
            continue;
        }
        let burst = (1 + rng.gen_range(24)).min(events - trace.len());
        let mut session = sharded.session(&heap);
        for _ in 0..burst {
            let e = EventId(rng.gen_range(spec.alphabet.len()) as u16);
            let pairs: Vec<_> = spec.event_params[e.as_usize()]
                .iter()
                .map(|&p| (p, pool[rng.gen_range(POOL)]))
                .collect();
            let binding = Binding::from_pairs(&pairs);
            trace.push((e, binding));
            sequential.try_process(&heap, e, binding)?;
            session.process(e, binding);
        }
        drop(session);
    }
    sequential.finish(&heap);
    sequential.check_invariants(&heap)?;
    let report = sharded.finish(&heap);
    if let Some(e) = report.error {
        return Err(e);
    }

    let mut mismatches = Vec::new();
    for (b, prop) in spec.properties.iter().enumerate() {
        let seq = crate::chaos::dedup(sequential.engines()[b].triggers());
        let shd = crate::chaos::dedup(&report.block_triggers(b));
        if shd != seq {
            mismatches.push(format!("block {b}: sharded {shd:?} != sequential {seq:?}"));
        }
        if check_oracle {
            let oracle =
                crate::chaos::dedup(&monitor_trace(&prop.formalism, prop.goal, &trace).triggers);
            if shd != oracle {
                mismatches.push(format!("block {b}: sharded {shd:?} != oracle {oracle:?}"));
            }
        }
    }
    if report.stats.events != report.deliveries {
        mismatches.push(format!(
            "merged events {} != deliveries {}",
            report.stats.events, report.deliveries
        ));
    }
    if report.events != report.routed_events + report.broadcast_events
        || report.events != trace.len() as u64
    {
        mismatches.push(format!(
            "event accounting: {} submitted, {} routed + {} broadcast, {} traced",
            report.events,
            report.routed_events,
            report.broadcast_events,
            trace.len()
        ));
    }
    let max_peak = report.per_shard.iter().map(|s| s.peak_live_monitors).max().unwrap_or(0);
    if report.stats.peak_live_monitors != max_peak {
        mismatches.push(format!(
            "merged peak {} is not the max of the per-shard peaks {max_peak}",
            report.stats.peak_live_monitors
        ));
    }
    let sequential_stats = sequential.stats();
    if shard_cfg.shards == 1 && report.stats != sequential_stats {
        mismatches.push(format!(
            "1-shard stats {:?} != sequential stats {sequential_stats:?}",
            report.stats
        ));
    }

    Ok(ShardDifferential {
        trace_len: trace.len(),
        blocks: spec.properties.len(),
        mismatches,
        sequential_stats,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unsafe_iter_spec() -> CompiledSpec {
        CompiledSpec::from_source(
            r#"UnsafeIter(Collection c, Iterator i) {
                event create(c, i);
                event update(c);
                event next(i);
                ere: create next* update+ next
                @match { report "unsafe iteration"; }
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn owner_param_picks_the_most_bound_parameter() {
        let spec = unsafe_iter_spec();
        // c appears in create+update, i in create+next: a tie, broken
        // toward the lowest id.
        assert_eq!(owner_param(&spec), Some(ParamId(0)));
    }

    #[test]
    fn routing_hash_is_stable_and_in_range() {
        for shards in [1usize, 2, 4, 7] {
            for raw in 0..64u64 {
                let o = ObjId::from_bits(raw | (1 << 32));
                let s = shard_of(o, 0x5EED, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(o, 0x5EED, shards), "stable");
            }
        }
        // The hash actually spreads consecutive objects for shards > 1.
        let spread: std::collections::HashSet<usize> =
            (0..64u64).map(|r| shard_of(ObjId::from_bits(r | (1 << 32)), 0, 4)).collect();
        assert!(spread.len() > 1, "all 64 objects landed on one shard");
    }

    #[test]
    fn sharded_run_matches_sequential_and_oracle() {
        let spec = unsafe_iter_spec();
        for shards in [1, 2, 4] {
            let out = differential_run(
                &spec,
                GcPolicy::CoenableLazy,
                ShardConfig { shards, batch: 8, seed: 0x5EED },
                7,
                192,
            )
            .unwrap();
            assert!(out.matches(), "shards {shards}: {:?}", out.mismatches);
            assert_eq!(out.trace_len, 192);
        }
    }

    #[test]
    fn broadcast_events_reach_every_shard() {
        let spec = unsafe_iter_spec();
        let config = EngineConfig { record_triggers: true, ..EngineConfig::default() };
        let mut sharded = ShardedMonitor::new(
            spec.clone(),
            &config,
            ShardConfig { shards: 4, batch: 2, seed: 1 },
        );
        let mut heap = Heap::new(HeapConfig::manual());
        let class = heap.register_class("Object");
        let _f = heap.enter_frame();
        let (c, i) = (heap.alloc(class), heap.alloc(class));
        let (pc, pi) = (ParamId(0), ParamId(1));
        let mut session = sharded.session(&heap);
        // create and update bind the owner c; next binds only i.
        session.process_named("create", Binding::from_pairs(&[(pc, c), (pi, i)]));
        session.process_named("update", Binding::from_pairs(&[(pc, c)]));
        session.process_named("next", Binding::from_pairs(&[(pi, i)]));
        drop(session);
        let report = sharded.finish(&heap);
        assert_eq!(report.error, None);
        assert_eq!(report.events, 3);
        assert_eq!(report.routed_events, 2);
        assert_eq!(report.broadcast_events, 1, "partial instance must broadcast");
        assert_eq!(report.deliveries, 2 + 4, "2 routed + 1 broadcast × 4 shards");
        assert_eq!(report.stats.events, report.deliveries);
        // The ⟨c, i⟩ slice saw create update next ⇒ one match, reported
        // exactly once despite the broadcast.
        assert_eq!(report.triggers.len(), 1, "{:?}", report.triggers);
        let t = report.triggers[0];
        assert_eq!((t.event_seq, t.ordinal, t.block), (2, 0, 0));
        assert_eq!(t.verdict, Verdict::Match);
    }

    #[test]
    fn trigger_order_is_deterministic_across_shard_counts() {
        let spec = unsafe_iter_spec();
        let run = |shards| {
            differential_run(
                &spec,
                GcPolicy::AllParamsDead,
                ShardConfig { shards, batch: 5, seed: 9 },
                21,
                160,
            )
            .unwrap()
        };
        let a = run(2);
        let b = run(4);
        assert!(a.matches(), "{:?}", a.mismatches);
        assert!(b.matches(), "{:?}", b.mismatches);
        assert_eq!(
            a.report.triggers, b.report.triggers,
            "(event_seq, ordinal) order must not depend on the shard count"
        );
    }

    #[test]
    fn one_shard_reproduces_sequential_stats_exactly() {
        let spec = unsafe_iter_spec();
        let out = differential_run(
            &spec,
            GcPolicy::CoenableLazy,
            ShardConfig { shards: 1, batch: 16, seed: 3 },
            11,
            128,
        )
        .unwrap();
        assert!(out.matches(), "{:?}", out.mismatches);
        assert_eq!(out.report.stats, out.sequential_stats);
    }

    #[test]
    fn observers_ride_along_per_shard_and_block() {
        use crate::obs::MetricsRegistry;
        let spec = unsafe_iter_spec();
        let config = EngineConfig::default();
        let mut sharded = ShardedMonitor::with_observers(
            spec,
            &config,
            ShardConfig { shards: 2, batch: 4, seed: 0 },
            |_, _| MetricsRegistry::default(),
        );
        let mut heap = Heap::new(HeapConfig::manual());
        let class = heap.register_class("Object");
        let _f = heap.enter_frame();
        let (pc, pi) = (ParamId(0), ParamId(1));
        // All allocation happens before the session opens: the heap may
        // not be mutated while workers share it.
        let pairs: Vec<_> = (0..8).map(|_| (heap.alloc(class), heap.alloc(class))).collect();
        let mut session = sharded.session(&heap);
        for &(c, i) in &pairs {
            session.process_named("create", Binding::from_pairs(&[(pc, c), (pi, i)]));
            session.process_named("update", Binding::from_pairs(&[(pc, c)]));
        }
        drop(session);
        let report = sharded.finish(&heap);
        assert_eq!(report.error, None);
        assert_eq!(report.observers.len(), 2);
        assert_eq!(report.observers[0].len(), 1, "one block per shard");
        // Merged per-shard registries account for every delivery.
        let mut merged = MetricsRegistry::default();
        for per_block in &report.observers {
            for m in per_block {
                merged.merge_from(m);
            }
        }
        let json = merged.snapshot_json();
        assert!(
            json.contains(&format!("\"events\":{}", report.deliveries)),
            "metrics events must equal deliveries: {json}"
        );
    }
}
