//! A direct transliteration of the paper's Figure 5 monitoring algorithm,
//! used as the *oracle* for the indexing-tree engine.
//!
//! `MONITOR(M)` maintains the table `Δ` of monitor states indexed by
//! parameter instances and the set `Θ` of known instances, joining every
//! incoming event instance with all compatible known instances. It is
//! O(|Θ|) per event and keeps everything forever — exactly what the real
//! engine must *not* do — but it defines the ground truth: every verdict
//! the optimized engine reports must match this table, and every goal
//! verdict this table reaches must be reported by the engine (GC
//! soundness, Theorem 1).

use std::collections::HashMap;

use rv_logic::{EventId, Formalism, GoalSet, Verdict};

use crate::binding::Binding;

/// One goal-verdict occurrence: the engine and the oracle must agree on
/// these exactly.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, PartialOrd, Ord)]
pub struct Trigger {
    /// Zero-based index of the event in the parametric trace.
    pub step: usize,
    /// The parameter instance whose slice reached the goal.
    pub binding: Binding,
    /// The goal verdict reached.
    pub verdict: Verdict,
}

/// The result of running the reference algorithm.
#[derive(Clone, Debug)]
pub struct ReferenceRun {
    /// Final verdict per known parameter instance (the `Γ` table).
    pub verdicts: HashMap<Binding, Verdict>,
    /// Every goal verdict, in trace order.
    pub triggers: Vec<Trigger>,
    /// `|Θ|` at the end (including `⊥`).
    pub instances: usize,
}

/// Runs Figure 5's `MONITOR(M)` over a parametric trace, under the
/// *termination* refinement every practical system applies: a monitor that
/// reports a goal verdict it can never produce again is retired, and
/// instances whose state is inherited from a retired (terminal) monitor
/// never report — they could only restate an already-reported verdict.
/// Without this refinement absorbing verdicts would re-fire on every
/// event, which no real handler semantics wants.
///
/// Each trace element is `(e, θ)`; callers are responsible for `θ` being
/// `D`-consistent (`dom(θ) = D(e)`), as Definition 4 requires.
#[must_use]
pub fn monitor_trace<F: Formalism>(
    formalism: &F,
    goal: GoalSet,
    trace: &[(EventId, Binding)],
) -> ReferenceRun {
    // Δ and Θ; Θ is join-closed at all times (line 7 adds all joins), which
    // makes `max {θ'' ∈ Θ | θ'' ⊑ θ'}` well-defined: the candidates are
    // closed under ⊔, hence directed, hence have a unique maximum.
    let mut delta: HashMap<Binding, F::State> = HashMap::new();
    delta.insert(Binding::BOTTOM, formalism.initial_state());
    let mut theta: Vec<Binding> = vec![Binding::BOTTOM];
    let mut verdicts: HashMap<Binding, Verdict> = HashMap::new();
    // Instances whose state was terminal at creation: their slices are
    // continuations of an already-settled verdict.
    let mut born_dead: HashMap<Binding, bool> = HashMap::new();
    born_dead.insert(Binding::BOTTOM, false);
    let mut triggers = Vec::new();

    for (step, &(event, ref inst)) in trace.iter().enumerate() {
        // {θ} ⊔ Θ — all joins of the event instance with known instances.
        let mut joins: Vec<Binding> = Vec::new();
        for &known in &theta {
            if let Some(j) = inst.lub(known) {
                if !joins.contains(&j) {
                    joins.push(j);
                }
            }
        }
        // Line 4 reads the *pre-event* Δ; stage updates and apply at once.
        let mut staged: Vec<(Binding, F::State, bool)> = Vec::with_capacity(joins.len());
        for &join in &joins {
            let max = theta
                .iter()
                .copied()
                .filter(|t| t.less_informative(join))
                .max_by_key(|t| t.domain().len())
                .expect("⊥ is always a candidate");
            let fresh = !delta.contains_key(&join);
            let dead = born_dead[&max]
                || (fresh && formalism.is_terminal(&delta[&max], goal))
                || (!fresh && born_dead[&join]);
            let mut state = delta[&max].clone();
            let verdict = formalism.step(&mut state, event);
            staged.push((join, state, dead));
            verdicts.insert(join, verdict);
            if goal.contains(verdict) && !dead {
                triggers.push(Trigger { step, binding: join, verdict });
            }
        }
        for (join, state, dead) in staged {
            if !theta.contains(&join) {
                theta.push(join);
            }
            delta.insert(join, state);
            born_dead.insert(join, dead);
        }
    }

    ReferenceRun { verdicts, triggers, instances: theta.len() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_heap::{Heap, HeapConfig, ObjId};
    use rv_logic::ere::unsafe_iter_ere;
    use rv_logic::{Alphabet, ParamId};

    struct Fixture {
        #[allow(dead_code)]
        heap: Heap,
        dfa: rv_logic::dfa::Dfa,
        alphabet: Alphabet,
        objs: Vec<ObjId>,
    }

    fn fixture() -> Fixture {
        let alphabet = Alphabet::from_names(&["create", "update", "next"]);
        let dfa = unsafe_iter_ere(&alphabet).compile(&alphabet, 1_000).unwrap();
        let mut heap = Heap::new(HeapConfig::manual());
        let cls = heap.register_class("Obj");
        let frame = heap.enter_frame();
        let objs = (0..4).map(|_| heap.alloc(cls)).collect();
        let _keep_rooted = frame; // never exited: objects stay rooted
        Fixture { heap, dfa, alphabet, objs }
    }

    const C: ParamId = ParamId(0);
    const I: ParamId = ParamId(1);

    #[test]
    fn reproduces_the_papers_slicing_example() {
        // Trace: update⟨c1⟩ update⟨c2⟩ create⟨c1,i1⟩ next⟨i1⟩ (§2).
        let f = fixture();
        let ev = |n: &str| f.alphabet.lookup(n).unwrap();
        let c1 = f.objs[0];
        let c2 = f.objs[1];
        let i1 = f.objs[2];
        let trace = vec![
            (ev("update"), Binding::from_pairs(&[(C, c1)])),
            (ev("update"), Binding::from_pairs(&[(C, c2)])),
            (ev("create"), Binding::from_pairs(&[(C, c1), (I, i1)])),
            (ev("next"), Binding::from_pairs(&[(I, i1)])),
        ];
        let run = monitor_trace(&f.dfa, GoalSet::MATCH, &trace);
        // Slices: ⟨c1⟩ = "update", ⟨c2⟩ = "update", ⟨c1,i1⟩ = "update
        // create next", ⟨i1⟩ = "next".
        let b_c1 = Binding::from_pairs(&[(C, c1)]);
        let b_c2 = Binding::from_pairs(&[(C, c2)]);
        let b_c1i1 = Binding::from_pairs(&[(C, c1), (I, i1)]);
        let b_i1 = Binding::from_pairs(&[(I, i1)]);
        assert_eq!(run.verdicts[&b_c1], Verdict::Unknown);
        assert_eq!(run.verdicts[&b_c2], Verdict::Unknown);
        assert_eq!(run.verdicts[&b_c1i1], Verdict::Unknown, "no update after create yet");
        assert_eq!(run.verdicts[&b_i1], Verdict::Fail, "bare next can never match");
        assert!(run.triggers.is_empty());
        // Θ: ⊥, c1, c2, (c1,i1), i1, and the join (c2,i1).
        assert_eq!(run.instances, 6);
    }

    #[test]
    fn detects_the_unsafe_iteration() {
        let f = fixture();
        let ev = |n: &str| f.alphabet.lookup(n).unwrap();
        let c1 = f.objs[0];
        let i1 = f.objs[2];
        let trace = vec![
            (ev("create"), Binding::from_pairs(&[(C, c1), (I, i1)])),
            (ev("next"), Binding::from_pairs(&[(I, i1)])),
            (ev("update"), Binding::from_pairs(&[(C, c1)])),
            (ev("next"), Binding::from_pairs(&[(I, i1)])),
        ];
        let run = monitor_trace(&f.dfa, GoalSet::MATCH, &trace);
        assert_eq!(run.triggers.len(), 1);
        let t = run.triggers[0];
        assert_eq!(t.step, 3);
        assert_eq!(t.binding, Binding::from_pairs(&[(C, c1), (I, i1)]));
        assert_eq!(t.verdict, Verdict::Match);
    }

    #[test]
    fn events_on_other_objects_do_not_leak_across_slices() {
        let f = fixture();
        let ev = |n: &str| f.alphabet.lookup(n).unwrap();
        let (c1, c2, i1, i2) = (f.objs[0], f.objs[1], f.objs[2], f.objs[3]);
        // c2 is updated, but i1 iterates c1: no match anywhere.
        let trace = vec![
            (ev("create"), Binding::from_pairs(&[(C, c1), (I, i1)])),
            (ev("create"), Binding::from_pairs(&[(C, c2), (I, i2)])),
            (ev("update"), Binding::from_pairs(&[(C, c2)])),
            (ev("next"), Binding::from_pairs(&[(I, i1)])),
        ];
        let run = monitor_trace(&f.dfa, GoalSet::MATCH, &trace);
        assert!(run.triggers.is_empty());
        // But updating c1 then using i1 matches.
        let trace2 = vec![
            (ev("create"), Binding::from_pairs(&[(C, c1), (I, i1)])),
            (ev("update"), Binding::from_pairs(&[(C, c1)])),
            (ev("next"), Binding::from_pairs(&[(I, i1)])),
        ];
        let run2 = monitor_trace(&f.dfa, GoalSet::MATCH, &trace2);
        assert_eq!(run2.triggers.len(), 1);
    }

    #[test]
    fn update_before_create_is_remembered_through_the_less_informative_instance() {
        // update⟨c1⟩ create⟨c1,i1⟩ next⟨i1⟩ — the ⟨c1,i1⟩ slice is
        // "update create next": an ? trace (update* create next*).
        let f = fixture();
        let ev = |n: &str| f.alphabet.lookup(n).unwrap();
        let (c1, i1) = (f.objs[0], f.objs[2]);
        let trace = vec![
            (ev("update"), Binding::from_pairs(&[(C, c1)])),
            (ev("create"), Binding::from_pairs(&[(C, c1), (I, i1)])),
            (ev("next"), Binding::from_pairs(&[(I, i1)])),
            // A second update and next: now it matches.
            (ev("update"), Binding::from_pairs(&[(C, c1)])),
            (ev("next"), Binding::from_pairs(&[(I, i1)])),
        ];
        let run = monitor_trace(&f.dfa, GoalSet::MATCH, &trace);
        assert_eq!(run.triggers.len(), 1);
        assert_eq!(run.triggers[0].step, 4);
    }
}
