//! Engine statistics — the columns of the paper's Figure 10, plus the
//! auxiliary counters the evaluation discusses.

use std::fmt;

/// Counters accumulated by an [`Engine`](crate::Engine).
///
/// The Figure 10 mapping: `events` is E, `monitors_created` is M,
/// `monitors_flagged` is FM, `monitors_collected` is CM.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Parametric events processed (E).
    pub events: u64,
    /// Monitor instances created (M).
    pub monitors_created: u64,
    /// Monitor instances flagged unnecessary by the GC policy (FM).
    pub monitors_flagged: u64,
    /// Monitor instances fully reclaimed (CM).
    pub monitors_collected: u64,
    /// Peak simultaneously-live monitor instances.
    pub peak_live_monitors: usize,
    /// Currently live monitor instances.
    pub live_monitors: usize,
    /// Goal verdicts reported (handler executions).
    pub triggers: u64,
    /// Dead weak keys discovered by indexing structures (Figure 7 events).
    pub dead_keys: u64,
    /// Monitor creations skipped by the enable-set / disable-table
    /// discipline.
    pub creations_skipped: u64,
    /// Dispatches served by the monomorphic lookup cache.
    pub cache_hits: u64,
    /// Monitor creations refused under resource pressure
    /// ([`DegradationPolicy::ShedNewMonitors`](crate::DegradationPolicy)).
    pub shed: u64,
    /// Monitors quarantined after their handler panicked.
    pub quarantined: u64,
    /// Resource-budget violations observed (each also reaches the observer
    /// via `budget_tripped`).
    pub budget_trips: u64,
    /// Degradation-ladder escalations (`degradation_entered` callbacks).
    pub degradations: u64,
}

impl EngineStats {
    /// Accumulates another engine's counters into this one.
    ///
    /// Additive counters sum. `live_monitors` also sums, because merged
    /// engines hold disjoint monitor populations (one engine per property
    /// block, or one per shard). `peak_live_monitors` is a *high-water
    /// mark*, not a flow: the per-engine peaks were almost certainly not
    /// simultaneous, so summing them fabricates a combined peak that never
    /// existed (it would overstate Fig. 9B-style peak-memory numbers). The
    /// honest merge is `max` — a lower bound on the true combined peak that
    /// is exact whenever one engine dominates.
    pub fn merge_from(&mut self, other: &EngineStats) {
        self.events += other.events;
        self.monitors_created += other.monitors_created;
        self.monitors_flagged += other.monitors_flagged;
        self.monitors_collected += other.monitors_collected;
        self.peak_live_monitors = self.peak_live_monitors.max(other.peak_live_monitors);
        self.live_monitors += other.live_monitors;
        self.triggers += other.triggers;
        self.dead_keys += other.dead_keys;
        self.creations_skipped += other.creations_skipped;
        self.cache_hits += other.cache_hits;
        self.shed += other.shed;
        self.quarantined += other.quarantined;
        self.budget_trips += other.budget_trips;
        self.degradations += other.degradations;
    }

    /// Renders every counter as a flat JSON object (hand-rolled: the
    /// workspace is serde-free).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"events\":{},\"monitors_created\":{},\"monitors_flagged\":{},\
             \"monitors_collected\":{},\"peak_live_monitors\":{},\"live_monitors\":{},\
             \"triggers\":{},\"dead_keys\":{},\"creations_skipped\":{},\"cache_hits\":{},\
             \"shed\":{},\"quarantined\":{},\"budget_trips\":{},\"degradations\":{}}}",
            self.events,
            self.monitors_created,
            self.monitors_flagged,
            self.monitors_collected,
            self.peak_live_monitors,
            self.live_monitors,
            self.triggers,
            self.dead_keys,
            self.creations_skipped,
            self.cache_hits,
            self.shed,
            self.quarantined,
            self.budget_trips,
            self.degradations
        )
    }
}

impl fmt::Display for EngineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "E={} M={} FM={} CM={} peak={} live={} triggers={}",
            self.events,
            self.monitors_created,
            self.monitors_flagged,
            self.monitors_collected,
            self.peak_live_monitors,
            self.live_monitors,
            self.triggers
        )?;
        if self.shed != 0 || self.quarantined != 0 || self.budget_trips != 0 {
            write!(
                f,
                " shed={} quarantined={} trips={} degradations={}",
                self.shed, self.quarantined, self.budget_trips, self.degradations
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shows_fig10_columns() {
        let s = EngineStats { events: 10, monitors_created: 3, ..EngineStats::default() };
        let out = s.to_string();
        assert!(out.contains("E=10"));
        assert!(out.contains("M=3"));
        assert!(out.contains("FM=0"));
        assert!(!out.contains("shed="), "robustness columns only shown when active");
    }

    #[test]
    fn merge_from_sums_every_additive_counter() {
        let mut a = EngineStats {
            events: 1,
            monitors_created: 2,
            monitors_flagged: 3,
            monitors_collected: 4,
            live_monitors: 2,
            triggers: 5,
            dead_keys: 6,
            creations_skipped: 7,
            cache_hits: 8,
            shed: 3,
            quarantined: 9,
            budget_trips: 10,
            degradations: 11,
            ..EngineStats::default()
        };
        let b = EngineStats {
            events: 10,
            monitors_created: 20,
            monitors_flagged: 30,
            monitors_collected: 40,
            live_monitors: 20,
            triggers: 50,
            dead_keys: 60,
            creations_skipped: 70,
            cache_hits: 80,
            shed: 30,
            quarantined: 90,
            budget_trips: 100,
            degradations: 1,
            ..EngineStats::default()
        };
        a.merge_from(&b);
        assert_eq!(a.events, 11);
        assert_eq!(a.monitors_created, 22);
        assert_eq!(a.monitors_flagged, 33);
        assert_eq!(a.monitors_collected, 44);
        assert_eq!(a.live_monitors, 22, "disjoint populations: live instances add up");
        assert_eq!(a.triggers, 55);
        assert_eq!(a.dead_keys, 66);
        assert_eq!(a.creations_skipped, 77);
        assert_eq!(a.cache_hits, 88);
        assert_eq!(a.shed, 33);
        assert_eq!(a.quarantined, 99);
        assert_eq!(a.budget_trips, 110);
        assert_eq!(a.degradations, 12);
    }

    /// Regression test for the peak-aggregation bug: `peak_live_monitors`
    /// is a high-water mark and must merge with `max`, never `+`. The two
    /// peaks here are both nonzero, so the pre-fix summing code reported
    /// 12 — a combined peak that never existed.
    #[test]
    fn merge_from_takes_max_of_high_water_marks() {
        let mut a = EngineStats { peak_live_monitors: 7, ..EngineStats::default() };
        let b = EngineStats { peak_live_monitors: 5, ..EngineStats::default() };
        a.merge_from(&b);
        assert_eq!(a.peak_live_monitors, 7, "peaks do not add: max(7, 5) = 7");
        // Merging in the other direction must raise the mark.
        let mut c = EngineStats { peak_live_monitors: 5, ..EngineStats::default() };
        c.merge_from(&EngineStats { peak_live_monitors: 7, ..EngineStats::default() });
        assert_eq!(c.peak_live_monitors, 7);
        // Merging an idle engine leaves the mark alone.
        c.merge_from(&EngineStats::default());
        assert_eq!(c.peak_live_monitors, 7);
    }

    #[test]
    fn display_and_json_surface_robustness_counters() {
        let s = EngineStats { shed: 2, quarantined: 1, budget_trips: 4, ..EngineStats::default() };
        let out = s.to_string();
        assert!(out.contains("shed=2"));
        assert!(out.contains("quarantined=1"));
        let json = s.to_json();
        for key in ["\"shed\":2", "\"quarantined\":1", "\"budget_trips\":4", "\"degradations\":0"] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
