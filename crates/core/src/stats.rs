//! Engine statistics — the columns of the paper's Figure 10, plus the
//! auxiliary counters the evaluation discusses.

use std::fmt;

/// Counters accumulated by an [`Engine`](crate::Engine).
///
/// The Figure 10 mapping: `events` is E, `monitors_created` is M,
/// `monitors_flagged` is FM, `monitors_collected` is CM.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Parametric events processed (E).
    pub events: u64,
    /// Monitor instances created (M).
    pub monitors_created: u64,
    /// Monitor instances flagged unnecessary by the GC policy (FM).
    pub monitors_flagged: u64,
    /// Monitor instances fully reclaimed (CM).
    pub monitors_collected: u64,
    /// Peak simultaneously-live monitor instances.
    pub peak_live_monitors: usize,
    /// Currently live monitor instances.
    pub live_monitors: usize,
    /// Goal verdicts reported (handler executions).
    pub triggers: u64,
    /// Dead weak keys discovered by indexing structures (Figure 7 events).
    pub dead_keys: u64,
    /// Monitor creations skipped by the enable-set / disable-table
    /// discipline.
    pub creations_skipped: u64,
    /// Dispatches served by the monomorphic lookup cache.
    pub cache_hits: u64,
    /// Monitor creations refused under resource pressure
    /// ([`DegradationPolicy::ShedNewMonitors`](crate::DegradationPolicy)).
    pub shed: u64,
    /// Monitors quarantined after their handler panicked.
    pub quarantined: u64,
    /// Resource-budget violations observed (each also reaches the observer
    /// via `budget_tripped`).
    pub budget_trips: u64,
    /// Degradation-ladder escalations (`degradation_entered` callbacks).
    pub degradations: u64,
}

impl EngineStats {
    /// Accumulates another engine's counters into this one.
    ///
    /// Additive counters sum; `peak_live_monitors` and `live_monitors` also
    /// sum, because merged engines hold disjoint monitor populations (one
    /// engine per property block).
    pub fn merge_from(&mut self, other: &EngineStats) {
        self.events += other.events;
        self.monitors_created += other.monitors_created;
        self.monitors_flagged += other.monitors_flagged;
        self.monitors_collected += other.monitors_collected;
        self.peak_live_monitors += other.peak_live_monitors;
        self.live_monitors += other.live_monitors;
        self.triggers += other.triggers;
        self.dead_keys += other.dead_keys;
        self.creations_skipped += other.creations_skipped;
        self.cache_hits += other.cache_hits;
        self.shed += other.shed;
        self.quarantined += other.quarantined;
        self.budget_trips += other.budget_trips;
        self.degradations += other.degradations;
    }

    /// Renders every counter as a flat JSON object (hand-rolled: the
    /// workspace is serde-free).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"events\":{},\"monitors_created\":{},\"monitors_flagged\":{},\
             \"monitors_collected\":{},\"peak_live_monitors\":{},\"live_monitors\":{},\
             \"triggers\":{},\"dead_keys\":{},\"creations_skipped\":{},\"cache_hits\":{},\
             \"shed\":{},\"quarantined\":{},\"budget_trips\":{},\"degradations\":{}}}",
            self.events,
            self.monitors_created,
            self.monitors_flagged,
            self.monitors_collected,
            self.peak_live_monitors,
            self.live_monitors,
            self.triggers,
            self.dead_keys,
            self.creations_skipped,
            self.cache_hits,
            self.shed,
            self.quarantined,
            self.budget_trips,
            self.degradations
        )
    }
}

impl fmt::Display for EngineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "E={} M={} FM={} CM={} peak={} live={} triggers={}",
            self.events,
            self.monitors_created,
            self.monitors_flagged,
            self.monitors_collected,
            self.peak_live_monitors,
            self.live_monitors,
            self.triggers
        )?;
        if self.shed != 0 || self.quarantined != 0 || self.budget_trips != 0 {
            write!(
                f,
                " shed={} quarantined={} trips={} degradations={}",
                self.shed, self.quarantined, self.budget_trips, self.degradations
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shows_fig10_columns() {
        let s = EngineStats { events: 10, monitors_created: 3, ..EngineStats::default() };
        let out = s.to_string();
        assert!(out.contains("E=10"));
        assert!(out.contains("M=3"));
        assert!(out.contains("FM=0"));
        assert!(!out.contains("shed="), "robustness columns only shown when active");
    }

    #[test]
    fn merge_from_sums_every_counter() {
        let mut a = EngineStats { events: 1, live_monitors: 2, shed: 3, ..EngineStats::default() };
        let b = EngineStats {
            events: 10,
            live_monitors: 20,
            shed: 30,
            peak_live_monitors: 5,
            degradations: 1,
            ..EngineStats::default()
        };
        a.merge_from(&b);
        assert_eq!(a.events, 11);
        assert_eq!(a.live_monitors, 22);
        assert_eq!(a.shed, 33);
        assert_eq!(a.peak_live_monitors, 5);
        assert_eq!(a.degradations, 1);
    }

    #[test]
    fn display_and_json_surface_robustness_counters() {
        let s = EngineStats { shed: 2, quarantined: 1, budget_trips: 4, ..EngineStats::default() };
        let out = s.to_string();
        assert!(out.contains("shed=2"));
        assert!(out.contains("quarantined=1"));
        let json = s.to_json();
        for key in ["\"shed\":2", "\"quarantined\":1", "\"budget_trips\":4", "\"degradations\":0"] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
