//! The write-ahead event journal: crash-durable, replayable history of
//! everything the monitoring pipeline did.
//!
//! A journal is a directory of segment files (`journal-00000000`,
//! `journal-00000001`, …), each starting with a 5-byte header (magic
//! `RVJL` + format version) followed by length-prefixed records:
//!
//! ```text
//! [len: u32 LE] [seq: u64 LE] [kind: u8] [payload: len-9 bytes] [crc32: u32 LE]
//! ```
//!
//! `len` covers `seq + kind + payload`; the CRC (IEEE 802.3) covers the
//! same bytes. Sequence numbers are monotone across segments, so replay
//! and recovery have a single total order to work with. The writer
//! rotates to a new segment once the current one exceeds a byte limit.
//!
//! The recovery reader ([`read_journal`]) is deliberately forgiving about
//! *tails* and strict about *heads*: a torn or bit-flipped record ends
//! the scan at the last durable prefix (a crash mid-write is normal
//! operation, not an error), while a missing magic or a stale version
//! byte is a typed [`EngineError::CorruptJournal`] — that artifact was
//! never a journal this code wrote, or needs a migration we don't have.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, ErrorKind, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

use rv_heap::ObjId;
use rv_logic::{EventId, ParamId, Verdict};

use crate::binding::Binding;
use crate::error::EngineError;

/// Segment file magic: the first four header bytes.
pub const SEGMENT_MAGIC: [u8; 4] = *b"RVJL";

/// On-disk format version (the fifth header byte).
pub const JOURNAL_VERSION: u8 = 1;

/// Header length: magic + version byte.
pub const SEGMENT_HEADER_LEN: u64 = 5;

/// Default segment rotation threshold.
pub const DEFAULT_SEGMENT_BYTES: u64 = 1 << 20;

/// Upper bound on a single record body; length claims beyond this are
/// treated as corruption without allocating.
const MAX_RECORD_LEN: u32 = 1 << 24;

/// Minimum record body length (`seq` + `kind`, empty payload).
const MIN_RECORD_LEN: u32 = 9;

// --- CRC32 (IEEE 802.3, reflected, polynomial 0xEDB88320) ----------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC32_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC32 of `bytes` — the checksum every journal record and
/// checkpoint payload carries.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// --- Record model --------------------------------------------------------

/// Auxiliary record tag: the spec source header (`rvmon run` writes it at
/// sequence 0 so `rvmon recover DIR` is self-contained).
pub const AUX_SPEC: u8 = 0;
/// Auxiliary record tag: a trace `!free` directive (payload: object bits).
pub const AUX_FREE: u8 = 1;
/// Auxiliary record tag: a trace `!gc` directive (empty payload).
pub const AUX_GC: u8 = 2;
/// Auxiliary record tag: a trace `!sweep` directive (empty payload).
pub const AUX_SWEEP: u8 = 3;
/// Auxiliary record tag: one completed GC cycle, payload a
/// `GcCycleRecord::to_bytes` body. Written *in addition to* the
/// `AUX_GC`/`AUX_SWEEP` replay directives: those drive re-execution,
/// this one carries the telemetry (`rvmon gc-log` reads it; replay
/// skips it).
pub const AUX_GC_CYCLE: u8 = 4;
/// Auxiliary record tag: a first-mention object allocation in a tenant
/// session (payload: object bits as `u64` LE, then the client-visible
/// object name in UTF-8). The service layer journals one per allocation
/// so recovery can rebuild the name → `ObjId` map its clients keep
/// using; `rvmon replay` ignores the tag (allocation order is already
/// implied by the event records).
pub const AUX_OBJ: u8 = 5;
/// Auxiliary record tag: one session-scoped trace line from a
/// `rvmond` client (payload: `session: u64 LE`, `cseq: u64 LE`, then
/// the raw line in UTF-8). The session/cseq pair is the exactly-once
/// key: recovery rebuilds the per-session high-water mark from these
/// records, so a reconnecting client that resends its unacknowledged
/// window can never double-apply a line. Carrying the cseq *inside*
/// the line record (rather than as a sibling record) makes the
/// dedup-state update atomic with the line itself under any crash.
pub const AUX_SLINE: u8 = 6;
/// Auxiliary record tag: an injected worker-fatal chaos directive
/// (payload: `session: u64 LE`, `cseq: u64 LE`). Journaled — and
/// fsynced — *before* the worker dies, so recovery advances the
/// session high-water mark past it without re-dying: the fault fires
/// exactly once even when the client's resend window still holds it.
pub const AUX_FATAL: u8 = 7;
/// Auxiliary record tag: a hot spec reload cutover (payload:
/// `token: u64 LE`, then the new spec source in UTF-8). The old
/// engine is checkpointed at its exact journal tail immediately before
/// this record; replay swaps in a fresh engine compiled from the new
/// source when it crosses the record. The token makes reloads
/// idempotent: a client retrying a reload whose acknowledgement was
/// lost in transit cannot cut over twice.
pub const AUX_RELOAD: u8 = 8;
/// Auxiliary record tag: crash-harness pool initialisation (payload:
/// pool size as `u32`).
pub const AUX_CT_INIT: u8 = 16;
/// Auxiliary record tag: crash-harness kill-and-replace of a pool slot
/// (payload: slot as `u32`).
pub const AUX_CT_KILL: u8 = 17;
/// Auxiliary record tag: crash-harness forced heap collection (empty
/// payload).
pub const AUX_CT_COLLECT: u8 = 18;

/// One journal record. The variants mirror what the pipeline must be able
/// to reconstruct after a crash: the parametric event stream, the goal
/// reports already delivered (for duplicate suppression), degradation
/// transitions, checkpoint placement, and free-form auxiliary entries the
/// drivers use to make heap history replayable.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Record {
    /// A parametric event dispatched to the engine.
    Event {
        /// The event id within the property alphabet.
        event: EventId,
        /// The event's parameter instance.
        binding: Binding,
    },
    /// A goal report the trigger path delivered. `(event_seq, ordinal)`
    /// is the duplicate-suppression key: the journal sequence number of
    /// the event that fired it, and the report's index within that event.
    Trigger {
        /// Journal sequence number of the [`Record::Event`] that fired
        /// this report.
        event_seq: u64,
        /// Zero-based index of this report among the event's reports.
        ordinal: u32,
        /// Property block that fired (0 for single-engine drivers).
        block: u16,
        /// The engine's event counter at fire time.
        step: u64,
        /// The reported verdict.
        verdict: Verdict,
        /// The reported binding.
        binding: Binding,
    },
    /// A graceful-degradation transition.
    Degradation {
        /// Property block whose engine transitioned.
        block: u16,
        /// The degradation level after the transition.
        level: u8,
        /// `true` when entering (escalating to) `level`, `false` when
        /// exiting back down.
        entered: bool,
    },
    /// Marks that checkpoint `generation` was durably written covering
    /// everything up to journal sequence `seq`. Informational: recovery
    /// scans checkpoint files directly, but the mark makes `replay`
    /// output and audits self-explanatory.
    CheckpointMark {
        /// The checkpoint generation number.
        generation: u64,
        /// The journal sequence the checkpoint covers (exclusive).
        seq: u64,
    },
    /// A driver-defined auxiliary entry (see the `AUX_*` tags).
    Aux {
        /// The driver-defined tag.
        tag: u8,
        /// Opaque payload bytes.
        bytes: Vec<u8>,
    },
}

/// Encodes a binding as a domain byte followed by one `u64` of object
/// bits per bound parameter, in parameter order. Shared with the snapshot
/// encoder (engine.rs).
pub(crate) fn encode_binding(b: Binding, out: &mut Vec<u8>) {
    debug_assert!(b.domain().0 <= 0xFF, "MAX_PARAMS is 8; domains fit a byte");
    out.push(b.domain().0 as u8);
    for (_, obj) in b.iter() {
        out.extend_from_slice(&obj.to_bits().to_le_bytes());
    }
}

/// Decodes [`encode_binding`]; `None` on truncated bytes.
pub(crate) fn decode_binding(bytes: &[u8], pos: &mut usize) -> Option<Binding> {
    let domain = *bytes.get(*pos)?;
    *pos += 1;
    let mut pairs = Vec::new();
    for p in 0..8u8 {
        if domain & (1u8 << p) != 0 {
            let raw: [u8; 8] = bytes.get(*pos..*pos + 8)?.try_into().ok()?;
            *pos += 8;
            pairs.push((ParamId(p), ObjId::from_bits(u64::from_le_bytes(raw))));
        }
    }
    Some(Binding::from_pairs(&pairs))
}

fn u16_at(bytes: &[u8], pos: &mut usize) -> Option<u16> {
    let raw: [u8; 2] = bytes.get(*pos..*pos + 2)?.try_into().ok()?;
    *pos += 2;
    Some(u16::from_le_bytes(raw))
}

fn u32_at(bytes: &[u8], pos: &mut usize) -> Option<u32> {
    let raw: [u8; 4] = bytes.get(*pos..*pos + 4)?.try_into().ok()?;
    *pos += 4;
    Some(u32::from_le_bytes(raw))
}

fn u64_at(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let raw: [u8; 8] = bytes.get(*pos..*pos + 8)?.try_into().ok()?;
    *pos += 8;
    Some(u64::from_le_bytes(raw))
}

impl Record {
    /// The on-disk kind byte.
    #[must_use]
    pub fn kind(&self) -> u8 {
        match self {
            Record::Event { .. } => 1,
            Record::Trigger { .. } => 2,
            Record::Degradation { .. } => 3,
            Record::CheckpointMark { .. } => 4,
            Record::Aux { .. } => 5,
        }
    }

    /// A short human label for audit output.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Record::Event { .. } => "event",
            Record::Trigger { .. } => "trigger",
            Record::Degradation { .. } => "degradation",
            Record::CheckpointMark { .. } => "checkpoint",
            Record::Aux { .. } => "aux",
        }
    }

    /// Serializes the payload (everything after the kind byte).
    pub fn encode_payload(&self, out: &mut Vec<u8>) {
        match self {
            Record::Event { event, binding } => {
                out.extend_from_slice(&(event.as_usize() as u16).to_le_bytes());
                encode_binding(*binding, out);
            }
            Record::Trigger { event_seq, ordinal, block, step, verdict, binding } => {
                out.extend_from_slice(&event_seq.to_le_bytes());
                out.extend_from_slice(&ordinal.to_le_bytes());
                out.extend_from_slice(&block.to_le_bytes());
                out.extend_from_slice(&step.to_le_bytes());
                out.push(verdict.to_byte());
                encode_binding(*binding, out);
            }
            Record::Degradation { block, level, entered } => {
                out.extend_from_slice(&block.to_le_bytes());
                out.push(*level);
                out.push(u8::from(*entered));
            }
            Record::CheckpointMark { generation, seq } => {
                out.extend_from_slice(&generation.to_le_bytes());
                out.extend_from_slice(&seq.to_le_bytes());
            }
            Record::Aux { tag, bytes } => {
                out.push(*tag);
                out.extend_from_slice(bytes);
            }
        }
    }

    /// Decodes a payload for `kind`; `None` on malformed bytes.
    #[must_use]
    pub fn decode(kind: u8, payload: &[u8]) -> Option<Record> {
        let mut pos = 0usize;
        let rec = match kind {
            1 => {
                let event = EventId(u16_at(payload, &mut pos)?);
                let binding = decode_binding(payload, &mut pos)?;
                Record::Event { event, binding }
            }
            2 => {
                let event_seq = u64_at(payload, &mut pos)?;
                let ordinal = u32_at(payload, &mut pos)?;
                let block = u16_at(payload, &mut pos)?;
                let step = u64_at(payload, &mut pos)?;
                let verdict = Verdict::from_byte(*payload.get(pos)?)?;
                pos += 1;
                let binding = decode_binding(payload, &mut pos)?;
                Record::Trigger { event_seq, ordinal, block, step, verdict, binding }
            }
            3 => {
                let block = u16_at(payload, &mut pos)?;
                let level = *payload.get(pos)?;
                pos += 1;
                let entered = match *payload.get(pos)? {
                    0 => false,
                    1 => true,
                    _ => return None,
                };
                pos += 1;
                Record::Degradation { block, level, entered }
            }
            4 => {
                let generation = u64_at(payload, &mut pos)?;
                let seq = u64_at(payload, &mut pos)?;
                Record::CheckpointMark { generation, seq }
            }
            5 => {
                let tag = *payload.first()?;
                let rec = Record::Aux { tag, bytes: payload[1..].to_vec() };
                pos = payload.len();
                rec
            }
            _ => return None,
        };
        (pos == payload.len()).then_some(rec)
    }
}

// --- Writer --------------------------------------------------------------

/// Counters the journal writer maintains — the journal-overhead numbers
/// the bench harness folds into `--stats-json`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct JournalStats {
    /// Records appended.
    pub records: u64,
    /// Payload + framing bytes appended (headers excluded).
    pub bytes: u64,
    /// Segment rotations performed.
    pub rotations: u64,
    /// Explicit `sync` calls that reached the OS.
    pub syncs: u64,
    /// Append attempts that failed transiently and were retried by
    /// [`JournalWriter::append_retry`].
    pub retries: u64,
}

impl JournalStats {
    /// Renders the counters as a JSON object (hand-rolled, like the rest
    /// of the observability layer).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"records\":{},\"bytes\":{},\"rotations\":{},\"syncs\":{},\"retries\":{}}}",
            self.records, self.bytes, self.rotations, self.syncs, self.retries
        )
    }
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("journal-{index:08}"))
}

// --- Fault injection (chaos harness) -------------------------------------

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic, seeded append-fault injector — the journal's chaos
/// harness. Installed with [`JournalWriter::set_fault`], it makes a
/// configurable fraction of append attempts fail with transient IO error
/// kinds, optionally writing a torn frame prefix first (so the writer's
/// tail-repair path is exercised, not just the error return), and can
/// switch to failing *every* attempt after a scheduled point to simulate
/// a persistently dead disk.
#[derive(Clone, Debug)]
pub struct FailingWriter {
    state: u64,
    fail_permille: u32,
    partial_max: usize,
    hard_fail_after: Option<u64>,
    attempts: u64,
    injected: u64,
}

impl FailingWriter {
    /// A fault plan seeded with `seed` where roughly
    /// `fail_permille`/1000 of append attempts fail transiently.
    #[must_use]
    pub fn new(seed: u64, fail_permille: u32) -> FailingWriter {
        FailingWriter {
            state: seed ^ 0xD6E8_FEB8_6659_FD93,
            fail_permille: fail_permille.min(1000),
            partial_max: 0,
            hard_fail_after: None,
            attempts: 0,
            injected: 0,
        }
    }

    /// On each injected failure, also write up to `max` bytes of the
    /// frame into the sink first — a torn append the writer must repair.
    #[must_use]
    pub fn with_partial(mut self, max: usize) -> FailingWriter {
        self.partial_max = max;
        self
    }

    /// From append attempt `n` (0-based) onward, every attempt fails
    /// with a non-transient error — a persistently failing device.
    #[must_use]
    pub fn with_hard_fail_after(mut self, n: u64) -> FailingWriter {
        self.hard_fail_after = Some(n);
        self
    }

    /// Number of faults injected so far.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Decides the fate of the next append attempt: `None` to let it
    /// through, or `Some((error, torn_bytes))` to fail it after writing
    /// `torn_bytes` of the frame.
    fn next_fault(&mut self) -> Option<(std::io::Error, usize)> {
        let attempt = self.attempts;
        self.attempts += 1;
        if self.hard_fail_after.is_some_and(|n| attempt >= n) {
            self.injected += 1;
            return Some((
                std::io::Error::other("injected permanent device failure"),
                self.partial_max.min(1),
            ));
        }
        let roll = splitmix64(&mut self.state);
        if self.fail_permille > 0 && roll % 1000 < u64::from(self.fail_permille) {
            self.injected += 1;
            let kind = match roll >> 32 & 3 {
                0 => ErrorKind::Interrupted,
                1 => ErrorKind::WouldBlock,
                _ => ErrorKind::TimedOut,
            };
            let torn = if self.partial_max == 0 {
                0
            } else {
                (roll >> 40) as usize % (self.partial_max + 1)
            };
            return Some((std::io::Error::new(kind, "injected transient write fault"), torn));
        }
        None
    }
}

// --- Retry policy ---------------------------------------------------------

/// Bounded retry-with-backoff for [`JournalWriter::append_retry`].
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total append attempts (first try included) before giving up.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per retry.
    pub backoff: Duration,
    /// Ceiling on the doubled backoff.
    pub backoff_cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 5,
            backoff: Duration::from_micros(200),
            backoff_cap: Duration::from_millis(5),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries — the pre-retry behavior, for callers
    /// that want a typed error on the very first failure.
    #[must_use]
    pub fn none() -> RetryPolicy {
        RetryPolicy { max_attempts: 1, ..RetryPolicy::default() }
    }
}

/// Whether an IO error kind is worth retrying: the kinds the OS hands
/// back for contention and interruption, not for broken artifacts.
#[must_use]
pub fn is_transient(kind: ErrorKind) -> bool {
    matches!(kind, ErrorKind::Interrupted | ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// An append-only writer over a journal directory.
pub struct JournalWriter {
    dir: PathBuf,
    file: BufWriter<File>,
    segment_index: u64,
    segment_bytes: u64,
    segment_limit: u64,
    next_seq: u64,
    stats: JournalStats,
    fault: Option<FailingWriter>,
    poisoned: bool,
}

impl fmt::Debug for JournalWriter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JournalWriter")
            .field("dir", &self.dir)
            .field("segment_index", &self.segment_index)
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

impl JournalWriter {
    /// Creates a fresh journal in `dir` (creating the directory if
    /// needed) with the default segment size.
    ///
    /// # Errors
    ///
    /// Any IO error creating the directory or the first segment.
    pub fn create(dir: &Path) -> std::io::Result<JournalWriter> {
        JournalWriter::create_with(dir, DEFAULT_SEGMENT_BYTES)
    }

    /// Creates a fresh journal with an explicit segment rotation limit
    /// (tests use small limits to exercise rotation).
    ///
    /// # Errors
    ///
    /// Any IO error creating the directory or the first segment.
    pub fn create_with(dir: &Path, segment_limit: u64) -> std::io::Result<JournalWriter> {
        std::fs::create_dir_all(dir)?;
        let mut w = JournalWriter {
            dir: dir.to_path_buf(),
            file: BufWriter::new(File::create(segment_path(dir, 0))?),
            segment_index: 0,
            segment_bytes: 0,
            segment_limit: segment_limit.max(SEGMENT_HEADER_LEN + 64),
            next_seq: 0,
            stats: JournalStats::default(),
            fault: None,
            poisoned: false,
        };
        w.write_header()?;
        Ok(w)
    }

    /// Reopens a scanned journal for appending: physically truncates the
    /// torn tail the scan identified, deletes any segments past it, and
    /// positions the writer at the scan's `next_seq`.
    ///
    /// # Errors
    ///
    /// Any IO error truncating or reopening segment files.
    pub fn resume(dir: &Path, scan: &JournalScan) -> std::io::Result<JournalWriter> {
        let Some(last) = scan.last_segment else {
            // Nothing durable at all (empty dir, or a 0-byte first
            // segment): clear leftovers and start from scratch.
            for index in 0.. {
                let p = segment_path(dir, index);
                if p.exists() {
                    std::fs::remove_file(p)?;
                } else {
                    break;
                }
            }
            return JournalWriter::create(dir);
        };
        for index in last.index + 1.. {
            let p = segment_path(dir, index);
            if p.exists() {
                std::fs::remove_file(p)?;
            } else {
                break;
            }
        }
        let path = segment_path(dir, last.index);
        let file = OpenOptions::new().write(true).open(&path)?;
        file.set_len(last.valid_bytes)?;
        let mut file = file;
        file.seek(SeekFrom::End(0))?;
        Ok(JournalWriter {
            dir: dir.to_path_buf(),
            file: BufWriter::new(file),
            segment_index: last.index,
            segment_bytes: last.valid_bytes,
            segment_limit: DEFAULT_SEGMENT_BYTES,
            next_seq: scan.next_seq,
            stats: JournalStats::default(),
            fault: None,
            poisoned: false,
        })
    }

    /// Installs a seeded [`FailingWriter`] fault plan — every subsequent
    /// append consults it. Chaos-test hook; production writers carry no
    /// plan and pay only an `Option` check.
    pub fn set_fault(&mut self, fault: FailingWriter) {
        self.fault = Some(fault);
    }

    /// The installed fault plan, if any (tests read its injection count).
    #[must_use]
    pub fn fault(&self) -> Option<&FailingWriter> {
        self.fault.as_ref()
    }

    fn write_header(&mut self) -> std::io::Result<()> {
        self.file.write_all(&SEGMENT_MAGIC)?;
        self.file.write_all(&[JOURNAL_VERSION])?;
        self.segment_bytes = SEGMENT_HEADER_LEN;
        Ok(())
    }

    /// Appends one record, returning its sequence number.
    ///
    /// A failed append is *atomic*: the writer flushes what it can,
    /// physically truncates the segment back to the last durable record
    /// boundary (discarding any torn frame prefix), and leaves itself
    /// ready for a retry of the same record at the same sequence number.
    /// If even that repair fails the writer poisons itself — further
    /// appends error immediately rather than risk a sequence gap.
    ///
    /// # Errors
    ///
    /// Any IO error writing to the active segment, or an injected fault
    /// from a [`FailingWriter`] plan.
    pub fn append(&mut self, record: &Record) -> std::io::Result<u64> {
        if self.poisoned {
            return Err(std::io::Error::other("journal writer poisoned by an unrepaired tail"));
        }
        if self.segment_bytes >= self.segment_limit {
            self.rotate()?;
        }
        let seq = self.next_seq;
        let mut frame = Vec::with_capacity(40);
        frame.extend_from_slice(&[0u8; 4]);
        frame.extend_from_slice(&seq.to_le_bytes());
        frame.push(record.kind());
        record.encode_payload(&mut frame);
        let body_len = u32::try_from(frame.len() - 4).expect("record fits u32");
        frame[..4].copy_from_slice(&body_len.to_le_bytes());
        let crc = crc32(&frame[4..]);
        frame.extend_from_slice(&crc.to_le_bytes());

        if let Some(fault) = self.fault.as_mut() {
            if let Some((err, torn)) = fault.next_fault() {
                // Simulate a torn write, then repair as for a real one.
                let torn = torn.min(frame.len());
                let _ = self.file.write_all(&frame[..torn]);
                self.repair_tail();
                return Err(err);
            }
        }
        if let Err(e) = self.file.write_all(&frame) {
            self.repair_tail();
            return Err(e);
        }
        let framed = frame.len() as u64;
        self.segment_bytes += framed;
        self.stats.records += 1;
        self.stats.bytes += framed;
        self.next_seq = seq + 1;
        Ok(seq)
    }

    /// Appends one record with bounded retry-with-backoff on transient
    /// IO errors ([`is_transient`]). Non-transient failures and exhausted
    /// retries surface as a typed [`EngineError::Journal`]; transient
    /// retries are counted in [`JournalStats::retries`].
    ///
    /// # Errors
    ///
    /// [`EngineError::Journal`] when the append could not be made
    /// durable within `policy.max_attempts` attempts.
    pub fn append_retry(
        &mut self,
        record: &Record,
        policy: &RetryPolicy,
    ) -> Result<u64, EngineError> {
        let max = policy.max_attempts.max(1);
        let mut backoff = policy.backoff;
        for attempt in 1..=max {
            match self.append(record) {
                Ok(seq) => return Ok(seq),
                Err(e) if attempt < max && is_transient(e.kind()) => {
                    self.stats.retries += 1;
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff.min(policy.backoff_cap));
                    }
                    backoff = (backoff * 2).min(policy.backoff_cap);
                }
                Err(e) => {
                    return Err(EngineError::Journal {
                        file: segment_path(&self.dir, self.segment_index).display().to_string(),
                        attempts: attempt,
                        detail: e.to_string(),
                    });
                }
            }
        }
        unreachable!("loop returns on the last attempt")
    }

    /// Restores the append invariant after a failed write: every byte of
    /// the torn frame is gone from both the buffer and the file, and the
    /// cursor sits at the last durable record boundary.
    fn repair_tail(&mut self) {
        // Push whatever the buffer holds (completed records and the torn
        // frame prefix alike) down to the file, so truncation below sees
        // all of it. A transient flush failure gets a few tries; if the
        // sink stays broken the writer is poisoned — appending past an
        // unknown tail would tear the sequence order.
        let mut flushed = false;
        for _ in 0..3 {
            if self.file.flush().is_ok() {
                flushed = true;
                break;
            }
        }
        let repaired = flushed
            && self.file.get_ref().set_len(self.segment_bytes).is_ok()
            && self.file.seek(SeekFrom::Start(self.segment_bytes)).is_ok();
        if !repaired {
            self.poisoned = true;
        }
    }

    fn rotate(&mut self) -> std::io::Result<()> {
        self.file.flush()?;
        self.file.get_ref().sync_all()?;
        let next = self.segment_index + 1;
        self.file = BufWriter::new(File::create(segment_path(&self.dir, next))?);
        self.segment_index = next;
        self.write_header()?;
        self.stats.rotations += 1;
        Ok(())
    }

    /// Flushes buffered records and fsyncs the active segment — the
    /// durability point callers establish before writing a checkpoint
    /// and at end of run.
    ///
    /// # Errors
    ///
    /// Any IO error flushing or syncing.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.file.flush()?;
        self.file.get_ref().sync_all()?;
        self.stats.syncs += 1;
        Ok(())
    }

    /// The sequence number the next appended record will get.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Writer-side counters.
    #[must_use]
    pub fn stats(&self) -> JournalStats {
        self.stats
    }
}

// --- Recovery reader -----------------------------------------------------

/// Where and why the recovery reader stopped early.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Truncation {
    /// The segment file containing the tear.
    pub file: String,
    /// Byte offset of the first unusable byte.
    pub offset: u64,
    /// Bytes past the tear that were discarded (including any later
    /// segments).
    pub lost_bytes: u64,
    /// Human-readable reason (torn record, CRC mismatch, …).
    pub reason: String,
}

/// One decoded record with its sequence number.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SeqRecord {
    /// The record's journal sequence number.
    pub seq: u64,
    /// The decoded record.
    pub record: Record,
}

/// Identifies the last segment holding durable data, for tail
/// truncation on resume.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SegmentPos {
    /// Segment index.
    pub index: u64,
    /// Valid byte length of that segment.
    pub valid_bytes: u64,
}

/// The result of scanning a journal directory: the durable record
/// prefix, plus where (if anywhere) the scan had to stop.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct JournalScan {
    /// All durable records in sequence order.
    pub records: Vec<SeqRecord>,
    /// Present when a torn/corrupt tail was discarded.
    pub truncation: Option<Truncation>,
    /// The sequence number a resumed writer continues from.
    pub next_seq: u64,
    /// The last segment with durable data (`None` for an empty journal).
    pub last_segment: Option<SegmentPos>,
    /// Number of segment files examined.
    pub segments: u64,
}

impl JournalScan {
    /// The duplicate-suppression high-water mark: the lexicographically
    /// greatest `(event_seq, ordinal)` over all durable trigger records.
    #[must_use]
    pub fn trigger_high_water_mark(&self) -> Option<(u64, u32)> {
        self.records
            .iter()
            .filter_map(|r| match r.record {
                Record::Trigger { event_seq, ordinal, .. } => Some((event_seq, ordinal)),
                _ => None,
            })
            .max()
    }

    /// The latest `CheckpointMark` in the durable prefix, if any.
    #[must_use]
    pub fn last_checkpoint_mark(&self) -> Option<(u64, u64)> {
        self.records.iter().rev().find_map(|r| match r.record {
            Record::CheckpointMark { generation, seq } => Some((generation, seq)),
            _ => None,
        })
    }
}

fn corrupt(path: &Path, offset: u64, detail: impl Into<String>) -> EngineError {
    EngineError::CorruptJournal { file: path.display().to_string(), offset, detail: detail.into() }
}

/// Scans the journal in `dir`, returning the durable record prefix.
///
/// Torn or bit-flipped tails are truncated (reported in
/// [`JournalScan::truncation`]), including everything in later segments.
/// A header that is present but wrong — bad magic or a stale version
/// byte — is a typed error: that file was never a journal this format
/// version wrote.
///
/// # Errors
///
/// [`EngineError::CorruptJournal`] on a bad header, or an IO failure
/// reading segment files (also mapped to `CorruptJournal`).
pub fn read_journal(dir: &Path) -> Result<JournalScan, EngineError> {
    let mut scan = JournalScan::default();
    let mut expected_seq = 0u64;
    for index in 0u64.. {
        let path = segment_path(dir, index);
        if !path.exists() {
            break;
        }
        scan.segments += 1;
        let bytes = std::fs::read(&path)
            .map_err(|e| corrupt(&path, 0, format!("unreadable segment: {e}")))?;
        // Header validation: a *prefix* of a valid header is a torn
        // creation (normal crash artifact); anything else is foreign.
        let mut expected_header = SEGMENT_MAGIC.to_vec();
        expected_header.push(JOURNAL_VERSION);
        if bytes.len() < expected_header.len() {
            if bytes == expected_header[..bytes.len()] {
                scan.truncation = Some(Truncation {
                    file: path.display().to_string(),
                    offset: 0,
                    lost_bytes: remaining_bytes(dir, index, bytes.len() as u64, 0),
                    reason: "segment header never completed".into(),
                });
                if index > 0 {
                    // An earlier segment already holds durable data; this
                    // empty successor is the torn tail.
                    return Ok(scan);
                }
                scan.last_segment = None;
                return Ok(scan);
            }
            return Err(corrupt(&path, 0, "bad magic (not a journal segment)"));
        }
        if bytes[..4] != SEGMENT_MAGIC {
            return Err(corrupt(&path, 0, "bad magic (not a journal segment)"));
        }
        if bytes[4] != JOURNAL_VERSION {
            return Err(corrupt(
                &path,
                4,
                format!("unsupported journal version {} (expected {JOURNAL_VERSION})", bytes[4]),
            ));
        }
        let mut pos = SEGMENT_HEADER_LEN as usize;
        scan.last_segment = Some(SegmentPos { index, valid_bytes: pos as u64 });
        loop {
            if pos == bytes.len() {
                break;
            }
            let tear = |reason: &str| Truncation {
                file: path.display().to_string(),
                offset: pos as u64,
                lost_bytes: remaining_bytes(dir, index, bytes.len() as u64, pos as u64),
                reason: reason.into(),
            };
            let Some(len_raw) = bytes.get(pos..pos + 4) else {
                scan.truncation = Some(tear("torn length prefix"));
                return Ok(scan);
            };
            let len = u32::from_le_bytes(len_raw.try_into().expect("4 bytes"));
            if !(MIN_RECORD_LEN..=MAX_RECORD_LEN).contains(&len) {
                scan.truncation = Some(tear("implausible record length"));
                return Ok(scan);
            }
            let body_start = pos + 4;
            let body_end = body_start + len as usize;
            let Some(body) = bytes.get(body_start..body_end) else {
                scan.truncation = Some(tear("torn record body"));
                return Ok(scan);
            };
            let Some(crc_raw) = bytes.get(body_end..body_end + 4) else {
                scan.truncation = Some(tear("torn record checksum"));
                return Ok(scan);
            };
            let stored = u32::from_le_bytes(crc_raw.try_into().expect("4 bytes"));
            if stored != crc32(body) {
                scan.truncation = Some(tear("CRC mismatch"));
                return Ok(scan);
            }
            let seq = u64::from_le_bytes(body[..8].try_into().expect("8 bytes"));
            if seq != expected_seq {
                scan.truncation = Some(tear("sequence discontinuity"));
                return Ok(scan);
            }
            let Some(record) = Record::decode(body[8], &body[9..]) else {
                scan.truncation = Some(tear("undecodable record"));
                return Ok(scan);
            };
            scan.records.push(SeqRecord { seq, record });
            expected_seq += 1;
            pos = body_end + 4;
            scan.next_seq = expected_seq;
            scan.last_segment = Some(SegmentPos { index, valid_bytes: pos as u64 });
        }
    }
    Ok(scan)
}

/// Bytes at and past a tear, including whole later segments — the
/// `lost_bytes` figure of a [`Truncation`].
fn remaining_bytes(dir: &Path, index: u64, segment_len: u64, offset: u64) -> u64 {
    let mut lost = segment_len - offset;
    for later in index + 1.. {
        let p = segment_path(dir, later);
        match std::fs::metadata(&p) {
            Ok(m) => lost += m.len(),
            Err(_) => break,
        }
    }
    lost
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_heap::{Heap, HeapConfig};

    fn temp_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("rv-journal-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_binding() -> Binding {
        let mut heap = Heap::new(HeapConfig::manual());
        let c = heap.register_class("Obj");
        let _f = heap.enter_frame();
        let a = heap.alloc(c);
        let b = heap.alloc(c);
        Binding::from_pairs(&[(ParamId(0), a), (ParamId(2), b)])
    }

    fn sample_records() -> Vec<Record> {
        let b = sample_binding();
        vec![
            Record::Aux { tag: AUX_SPEC, bytes: b"spec text".to_vec() },
            Record::Event { event: EventId(3), binding: b },
            Record::Trigger {
                event_seq: 1,
                ordinal: 0,
                block: 0,
                step: 7,
                verdict: Verdict::Match,
                binding: b,
            },
            Record::Degradation { block: 0, level: 2, entered: true },
            Record::CheckpointMark { generation: 1, seq: 4 },
        ]
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn records_round_trip_through_payload_codec() {
        for rec in sample_records() {
            let mut payload = Vec::new();
            rec.encode_payload(&mut payload);
            let back = Record::decode(rec.kind(), &payload).expect("decodes");
            assert_eq!(back, rec);
        }
        assert!(Record::decode(99, &[]).is_none(), "unknown kind");
        assert!(Record::decode(4, &[1, 2]).is_none(), "short checkpoint mark");
        let mut payload = Vec::new();
        sample_records()[1].encode_payload(&mut payload);
        payload.push(0);
        assert!(Record::decode(1, &payload).is_none(), "trailing garbage");
    }

    #[test]
    fn write_scan_round_trip_preserves_order_and_seq() {
        let dir = temp_dir("roundtrip");
        let mut w = JournalWriter::create(&dir).unwrap();
        let recs = sample_records();
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(w.append(r).unwrap(), i as u64);
        }
        w.sync().unwrap();
        assert_eq!(w.stats().records, recs.len() as u64);
        let scan = read_journal(&dir).unwrap();
        assert!(scan.truncation.is_none());
        assert_eq!(scan.next_seq, recs.len() as u64);
        let got: Vec<Record> = scan.records.iter().map(|r| r.record.clone()).collect();
        assert_eq!(got, recs);
        assert_eq!(scan.trigger_high_water_mark(), Some((1, 0)));
        assert_eq!(scan.last_checkpoint_mark(), Some((1, 4)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_spreads_records_across_segments() {
        let dir = temp_dir("rotate");
        let mut w = JournalWriter::create_with(&dir, 96).unwrap();
        for _ in 0..32 {
            w.append(&Record::Aux { tag: AUX_GC, bytes: vec![0; 16] }).unwrap();
        }
        w.sync().unwrap();
        assert!(w.stats().rotations > 0, "segment limit must force rotation");
        assert!(segment_path(&dir, 1).exists());
        let scan = read_journal(&dir).unwrap();
        assert_eq!(scan.records.len(), 32);
        assert!(scan.segments > 1);
        assert!(scan.truncation.is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_tail_is_cut_at_the_last_durable_record() {
        let dir = temp_dir("torn");
        let mut w = JournalWriter::create(&dir).unwrap();
        for r in sample_records() {
            w.append(&r).unwrap();
        }
        w.sync().unwrap();
        let path = segment_path(&dir, 0);
        let full = std::fs::read(&path).unwrap();
        // Cut at every byte boundary: the scan must never fail, and must
        // recover a monotone prefix of the records.
        let mut last_count = 0usize;
        for cut in (SEGMENT_HEADER_LEN as usize..full.len()).rev() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let scan = read_journal(&dir).unwrap();
            assert!(scan.records.len() <= 5);
            last_count = last_count.max(scan.records.len());
            // A cut exactly on a record boundary is indistinguishable from
            // a clean shutdown; everywhere else the torn tail must be
            // reported.
            let on_boundary =
                scan.last_segment.as_ref().is_some_and(|s| s.valid_bytes == cut as u64);
            assert!(
                scan.truncation.is_some() || on_boundary,
                "cut at {cut} must report truncation"
            );
            for (i, r) in scan.records.iter().enumerate() {
                assert_eq!(r.seq, i as u64);
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flips_are_caught_by_the_crc() {
        let dir = temp_dir("flip");
        let mut w = JournalWriter::create(&dir).unwrap();
        for r in sample_records() {
            w.append(&r).unwrap();
        }
        w.sync().unwrap();
        let path = segment_path(&dir, 0);
        let full = std::fs::read(&path).unwrap();
        for target in [SEGMENT_HEADER_LEN as usize + 6, full.len() - 3, full.len() / 2] {
            let mut flipped = full.clone();
            flipped[target] ^= 0x40;
            std::fs::write(&path, &flipped).unwrap();
            let scan = read_journal(&dir).unwrap();
            assert!(
                scan.records.len() < 5 || scan.truncation.is_some(),
                "a flipped byte at {target} must not survive"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_magic_and_stale_version_are_typed_errors() {
        let dir = temp_dir("header");
        std::fs::create_dir_all(&dir).unwrap();
        let path = segment_path(&dir, 0);
        std::fs::write(&path, b"NOPE\x01data").unwrap();
        match read_journal(&dir) {
            Err(EngineError::CorruptJournal { detail, .. }) => {
                assert!(detail.contains("magic"), "{detail}");
            }
            other => panic!("expected CorruptJournal, got {other:?}"),
        }
        std::fs::write(&path, b"RVJL\x00").unwrap();
        match read_journal(&dir) {
            Err(EngineError::CorruptJournal { offset, detail, .. }) => {
                assert_eq!(offset, 4);
                assert!(detail.contains("version"), "{detail}");
            }
            other => panic!("expected CorruptJournal, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_and_headerless_journals_scan_as_empty() {
        let dir = temp_dir("empty");
        std::fs::create_dir_all(&dir).unwrap();
        let scan = read_journal(&dir).unwrap();
        assert!(scan.records.is_empty() && scan.segments == 0);
        // A 0-byte segment is a crash before the header flushed.
        std::fs::write(segment_path(&dir, 0), b"").unwrap();
        let scan = read_journal(&dir).unwrap();
        assert!(scan.records.is_empty());
        assert!(scan.truncation.is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A zero-sleep policy so chaos tests don't spend wall-clock backing
    /// off between injected faults.
    fn fast_retry(max_attempts: u32) -> RetryPolicy {
        RetryPolicy { max_attempts, backoff: Duration::ZERO, backoff_cap: Duration::ZERO }
    }

    #[test]
    fn transient_faults_with_torn_frames_leave_the_journal_byte_identical() {
        let clean_dir = temp_dir("chaos-clean");
        let fault_dir = temp_dir("chaos-fault");
        let recs: Vec<Record> = (0..64).flat_map(|_| sample_records()).collect();

        let mut clean = JournalWriter::create(&clean_dir).unwrap();
        for r in &recs {
            clean.append(r).unwrap();
        }
        clean.sync().unwrap();

        let mut faulty = JournalWriter::create(&fault_dir).unwrap();
        // ~30% of attempts fail, each tearing up to 64 frame bytes into
        // the sink first — repair + retry must erase every trace.
        faulty.set_fault(FailingWriter::new(0xC0FFEE, 300).with_partial(64));
        for (i, r) in recs.iter().enumerate() {
            let seq = faulty.append_retry(r, &fast_retry(50)).unwrap();
            assert_eq!(seq, i as u64, "retries must not burn sequence numbers");
        }
        faulty.sync().unwrap();
        assert!(faulty.fault().unwrap().injected() > 0, "chaos plan never fired");
        assert!(faulty.stats().retries > 0, "retries must be counted");

        let clean_bytes = std::fs::read(segment_path(&clean_dir, 0)).unwrap();
        let fault_bytes = std::fs::read(segment_path(&fault_dir, 0)).unwrap();
        assert_eq!(clean_bytes, fault_bytes, "fault-free and repaired journals must match");
        let scan = read_journal(&fault_dir).unwrap();
        assert!(scan.truncation.is_none());
        assert_eq!(scan.records.len(), recs.len());
        std::fs::remove_dir_all(&clean_dir).unwrap();
        std::fs::remove_dir_all(&fault_dir).unwrap();
    }

    #[test]
    fn persistent_faults_surface_a_typed_journal_error() {
        let dir = temp_dir("chaos-hard");
        let mut w = JournalWriter::create(&dir).unwrap();
        for r in sample_records() {
            w.append(&r).unwrap();
        }
        // Every attempt from here on fails with a non-transient kind:
        // the first failure must be terminal (no useless retries).
        w.set_fault(FailingWriter::new(7, 0).with_hard_fail_after(0).with_partial(8));
        let rec = Record::Aux { tag: AUX_GC, bytes: vec![] };
        match w.append_retry(&rec, &fast_retry(5)) {
            Err(EngineError::Journal { file, attempts, detail }) => {
                assert_eq!(attempts, 1, "non-transient failures must not retry");
                assert!(file.contains("journal-00000000"), "{file}");
                assert!(detail.contains("injected"), "{detail}");
            }
            other => panic!("expected EngineError::Journal, got {other:?}"),
        }
        w.sync().unwrap();
        // The durable prefix survives intact despite the torn attempt.
        let scan = read_journal(&dir).unwrap();
        assert!(scan.truncation.is_none(), "{:?}", scan.truncation);
        assert_eq!(scan.records.len(), sample_records().len());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn exhausted_transient_retries_report_the_attempt_count() {
        let dir = temp_dir("chaos-exhaust");
        let mut w = JournalWriter::create(&dir).unwrap();
        // 100% transient failure rate: every attempt fails, so a
        // 4-attempt policy must give up with attempts == 4.
        w.set_fault(FailingWriter::new(11, 1000));
        let rec = Record::Aux { tag: AUX_SWEEP, bytes: vec![] };
        match w.append_retry(&rec, &fast_retry(4)) {
            Err(EngineError::Journal { attempts, .. }) => assert_eq!(attempts, 4),
            other => panic!("expected EngineError::Journal, got {other:?}"),
        }
        assert_eq!(w.stats().retries, 3, "three of the four attempts were retries");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_truncates_the_tail_and_continues_the_sequence() {
        let dir = temp_dir("resume");
        let mut w = JournalWriter::create(&dir).unwrap();
        for r in sample_records() {
            w.append(&r).unwrap();
        }
        w.sync().unwrap();
        let path = segment_path(&dir, 0);
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let scan = read_journal(&dir).unwrap();
        assert_eq!(scan.records.len(), 4, "last record torn");
        let mut w = JournalWriter::resume(&dir, &scan).unwrap();
        assert_eq!(w.next_seq(), 4);
        w.append(&Record::Aux { tag: AUX_GC, bytes: vec![] }).unwrap();
        w.sync().unwrap();
        let rescan = read_journal(&dir).unwrap();
        assert!(rescan.truncation.is_none(), "tail was repaired");
        assert_eq!(rescan.records.len(), 5);
        assert_eq!(rescan.records[4].seq, 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
