//! Wire-to-trigger request tracing and the post-mortem flight recorder
//! for `rvmond`.
//!
//! Every line a tenant ingests carries a daemon-assigned trace context
//! (tenant, session, client sequence) and flows through the timed
//! [`Stage`] pipeline: wire read → admission → queue wait → engine →
//! journal append → journal fsync → trigger delivery. The per-stage
//! durations land in two per-tenant sinks, both bounded:
//!
//! * [`StageStats`] — one power-of-two [`Histogram`] per stage, the
//!   source of the `rvmond_stage_*` Prometheus series and the
//!   `"stages"` object in STATS replies (what `loadgen --json` and
//!   `rvmonctl slo` read);
//! * [`RequestTraceRing`] — the most recent full [`RequestTrace`]s plus
//!   *exemplar capture*: the k slowest requests keep their complete
//!   per-stage breakdowns, so a post-mortem can show exactly where the
//!   worst request's microseconds went.
//!
//! The [`FlightRecorder`] is the daemon's always-on black box: a
//! bounded ring of notable moments (GC cycles, REJECTs, supervised
//! restarts, reload cutovers, tenant state changes). On tenant failure,
//! circuit-break, or SIGQUIT the daemon serializes the recorder plus
//! the affected tenants' trace rings into a versioned `RVFR 1` dump
//! file — line-oriented text, written with [`render_dump`], read back
//! by [`FlightDump::parse`], rendered for humans by
//! [`FlightDump::render_text`] and for Perfetto by
//! [`FlightDump::chrome_trace`] (lanes = tenants, stage spans as B/E
//! pairs, GC cycles and restarts as X events).

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::time::Instant;

use crate::obs::{json_escape, json_f64, Histogram};
use crate::profile::{chrome_trace_json, SpanLog};

// ---------------------------------------------------------------------------
// Stages
// ---------------------------------------------------------------------------

/// One timed hop of a request's life, in pipeline order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Blocking read + CRC check of the frame off the socket.
    WireRead,
    /// Tenant/connection caps, dedup bookkeeping, queue handoff.
    Admission,
    /// Sitting in the tenant's bounded ingest queue.
    QueueWait,
    /// The parametric engine's slice-and-dispatch work.
    Engine,
    /// Appending event/aux records to the tenant journal.
    JournalAppend,
    /// fsync at a durability barrier (attributed to the SYNC that paid
    /// it; per-event traces read 0 here between barriers).
    JournalFsync,
    /// Journaling fired triggers and publishing them to the poll log.
    TriggerDelivery,
}

/// Number of [`Stage`]s.
pub const STAGE_COUNT: usize = 7;

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::WireRead,
        Stage::Admission,
        Stage::QueueWait,
        Stage::Engine,
        Stage::JournalAppend,
        Stage::JournalFsync,
        Stage::TriggerDelivery,
    ];

    /// Stable snake_case name (metric label, dump token, JSON key).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Stage::WireRead => "wire_read",
            Stage::Admission => "admission",
            Stage::QueueWait => "queue_wait",
            Stage::Engine => "engine",
            Stage::JournalAppend => "journal_append",
            Stage::JournalFsync => "journal_fsync",
            Stage::TriggerDelivery => "trigger_delivery",
        }
    }

    /// Index into `[T; STAGE_COUNT]` stage arrays.
    #[must_use]
    pub fn idx(self) -> usize {
        self as usize
    }

    /// Inverse of [`Stage::label`].
    #[must_use]
    pub fn from_label(s: &str) -> Option<Stage> {
        Stage::ALL.into_iter().find(|st| st.label() == s)
    }
}

// ---------------------------------------------------------------------------
// RequestTrace + ring
// ---------------------------------------------------------------------------

/// One request's full per-stage breakdown.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RequestTrace {
    /// Client session id (0 for legacy un-sequenced EVENT frames).
    pub session: u64,
    /// Client sequence within the session (0 for legacy frames).
    pub cseq: u64,
    /// Daemon-assigned tenant event sequence.
    pub seq: u64,
    /// Completion time, nanoseconds since the recorder epoch.
    pub at_ns: u64,
    /// Nanoseconds spent per stage, indexed by [`Stage::idx`].
    pub stages: [u64; STAGE_COUNT],
}

impl RequestTrace {
    /// Sum of all stage durations.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.stages.iter().fold(0u64, |a, &d| a.saturating_add(d))
    }
}

/// Bounded per-tenant trace sink: a ring of the most recent traces plus
/// the k slowest ever seen (exemplars), each with full stage
/// breakdowns. `cap == 0` disables capture entirely (pushes become
/// no-ops beyond a counter), which is the daemon's stance when tracing
/// is turned off.
#[derive(Clone, Debug)]
pub struct RequestTraceRing {
    cap: usize,
    k: usize,
    recent: VecDeque<RequestTrace>,
    /// Sorted by `total_ns` descending; at most `k` entries.
    slowest: Vec<RequestTrace>,
    recorded: u64,
}

impl RequestTraceRing {
    /// A ring keeping `cap` recent traces and `k` slowest exemplars.
    #[must_use]
    pub fn new(cap: usize, k: usize) -> RequestTraceRing {
        RequestTraceRing { cap, k, recent: VecDeque::new(), slowest: Vec::new(), recorded: 0 }
    }

    /// Whether pushes retain anything.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.cap > 0
    }

    /// Records one completed trace.
    pub fn push(&mut self, t: RequestTrace) {
        self.recorded += 1;
        if self.cap == 0 {
            return;
        }
        if self.recent.len() == self.cap {
            self.recent.pop_front();
        }
        self.recent.push_back(t);
        if self.k == 0 {
            return;
        }
        if self.slowest.len() < self.k {
            self.slowest.push(t);
            self.slowest.sort_by_key(|s| std::cmp::Reverse(s.total_ns()));
        } else if let Some(last) = self.slowest.last() {
            if t.total_ns() > last.total_ns() {
                self.slowest.pop();
                let at = self.slowest.partition_point(|s| s.total_ns() >= t.total_ns());
                self.slowest.insert(at, t);
            }
        }
    }

    /// The most recent traces, oldest first.
    pub fn recent(&self) -> impl Iterator<Item = &RequestTrace> {
        self.recent.iter()
    }

    /// The k slowest traces, slowest first.
    #[must_use]
    pub fn slowest(&self) -> &[RequestTrace] {
        &self.slowest
    }

    /// Lifetime count of traces pushed (including while disabled).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.recorded
    }
}

// ---------------------------------------------------------------------------
// StageStats
// ---------------------------------------------------------------------------

/// Per-stage latency histograms for one tenant (nanosecond samples).
#[derive(Clone, Debug, Default)]
pub struct StageStats {
    hists: [Histogram; STAGE_COUNT],
}

impl StageStats {
    /// All-empty histograms.
    #[must_use]
    pub fn new() -> StageStats {
        StageStats::default()
    }

    /// Records `ns` into `stage`'s histogram.
    pub fn record(&mut self, stage: Stage, ns: u64) {
        self.hists[stage.idx()].record(ns);
    }

    /// Records every non-zero stage of a completed trace.
    pub fn record_trace(&mut self, t: &RequestTrace) {
        for s in Stage::ALL {
            let ns = t.stages[s.idx()];
            if ns > 0 || matches!(s, Stage::Engine) {
                // Engine is recorded even at 0 so sample counts track
                // processed lines; the other stages only record real
                // spans (fsync happens at barriers, not per event).
                self.hists[s.idx()].record(ns);
            }
        }
    }

    /// The histogram for one stage.
    #[must_use]
    pub fn stage(&self, stage: Stage) -> &Histogram {
        &self.hists[stage.idx()]
    }

    /// Adds `other`'s samples into `self` (restart-surviving merges).
    pub fn merge_from(&mut self, other: &StageStats) {
        for i in 0..STAGE_COUNT {
            self.hists[i].merge_from(&other.hists[i]);
        }
    }

    /// Total samples across all stages.
    #[must_use]
    pub fn samples(&self) -> u64 {
        self.hists.iter().map(Histogram::count).sum()
    }

    /// Renders flat per-stage percentiles in microseconds:
    /// `<stage>_count`, `<stage>_p50_us`, `<stage>_p90_us`,
    /// `<stage>_p99_us`, `<stage>_max_us`, `<stage>_sum_us`. Flat keys
    /// keep shallow consumers parser-free.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, s) in Stage::ALL.into_iter().enumerate() {
            let h = &self.hists[s.idx()];
            let l = s.label();
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{l}_count\":{},\"{l}_p50_us\":{},\"{l}_p90_us\":{},\"{l}_p99_us\":{},\
                 \"{l}_max_us\":{},\"{l}_sum_us\":{}",
                h.count(),
                json_f64(h.quantile(0.50) / 1000.0),
                json_f64(h.quantile(0.90) / 1000.0),
                json_f64(h.quantile(0.99) / 1000.0),
                json_f64(to_us(h.max())),
                json_f64(to_us(h.sum())),
            );
        }
        out.push('}');
        out
    }
}

#[allow(clippy::cast_precision_loss)]
fn to_us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

// ---------------------------------------------------------------------------
// FlightRecorder
// ---------------------------------------------------------------------------

/// What kind of notable moment a [`FlightEvent`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlightKind {
    /// A heap/monitor GC cycle (duration = pause).
    GcCycle,
    /// An admission or protocol REJECT (detail leads with the code).
    Reject,
    /// A supervised tenant restart.
    Restart,
    /// A hot spec reload cutover.
    Reload,
    /// A tenant state change (running → failed, circuit-break, drain).
    State,
}

impl FlightKind {
    /// Stable dump token.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FlightKind::GcCycle => "gc_cycle",
            FlightKind::Reject => "reject",
            FlightKind::Restart => "restart",
            FlightKind::Reload => "reload",
            FlightKind::State => "state",
        }
    }

    /// Inverse of [`FlightKind::label`].
    #[must_use]
    pub fn from_label(s: &str) -> Option<FlightKind> {
        [
            FlightKind::GcCycle,
            FlightKind::Reject,
            FlightKind::Restart,
            FlightKind::Reload,
            FlightKind::State,
        ]
        .into_iter()
        .find(|k| k.label() == s)
    }
}

/// One black-box entry.
#[derive(Clone, Debug)]
pub struct FlightEvent {
    /// Nanoseconds since the recorder's epoch.
    pub at_ns: u64,
    /// Owning tenant (whitespace-sanitized on dump).
    pub tenant: String,
    /// Event class.
    pub kind: FlightKind,
    /// Duration where meaningful (GC pause, restart downtime), else 0.
    pub dur_ns: u64,
    /// Free-form detail (REJECT code + message, state labels, …).
    pub detail: String,
}

/// Default bound on retained flight events.
pub const FLIGHT_CAP: usize = 4096;

/// The daemon-wide always-on black box. All methods are O(1); callers
/// wrap it in a `Mutex` and touch it only on cold paths (GC cycles,
/// rejects, restarts — never per event).
#[derive(Debug)]
pub struct FlightRecorder {
    epoch: Instant,
    cap: usize,
    events: VecDeque<FlightEvent>,
    dropped: u64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(FLIGHT_CAP)
    }
}

impl FlightRecorder {
    /// An empty recorder retaining at most `cap` events (oldest evicted
    /// first — a black box keeps the *recent* past).
    #[must_use]
    pub fn new(cap: usize) -> FlightRecorder {
        FlightRecorder::with_epoch(cap, Instant::now())
    }

    /// Like [`FlightRecorder::new`] with an explicit time origin, so the
    /// daemon can put its black box and every tenant's trace ring on one
    /// shared timeline.
    #[must_use]
    pub fn with_epoch(cap: usize, epoch: Instant) -> FlightRecorder {
        FlightRecorder { epoch, cap: cap.max(1), events: VecDeque::new(), dropped: 0 }
    }

    /// Nanoseconds since the recorder's epoch (the dump time origin).
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Records one event stamped now.
    pub fn note(&mut self, tenant: &str, kind: FlightKind, dur_ns: u64, detail: impl Into<String>) {
        let detail = detail.into();
        let at_ns = self.now_ns();
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(FlightEvent {
            at_ns,
            tenant: tenant.to_owned(),
            kind,
            dur_ns,
            detail,
        });
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &FlightEvent> {
        self.events.iter()
    }

    /// Events evicted past the cap.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

// ---------------------------------------------------------------------------
// Dump format (RVFR 1)
// ---------------------------------------------------------------------------

fn sanitize(s: &str) -> String {
    s.chars().map(|c| if c.is_whitespace() { '_' } else { c }).collect()
}

/// Serializes a dump: the `RVFR 1` magic line, one `meta` line of
/// `key=value` pairs (`reason` first), one `ev` line per flight event,
/// and one `trace` line per `(tenant, trace)` pair — recent traces plus
/// slowest exemplars, as the caller collected them.
#[must_use]
pub fn render_dump(
    reason: &str,
    meta: &[(String, String)],
    events: &[FlightEvent],
    traces: &[(String, RequestTrace)],
) -> String {
    let mut out = String::from("RVFR 1\n");
    let _ = write!(out, "meta reason={}", sanitize(reason));
    for (k, v) in meta {
        let _ = write!(out, " {}={}", sanitize(k), sanitize(v));
    }
    out.push('\n');
    for e in events {
        let _ = writeln!(
            out,
            "ev {} {} {} {} {}",
            e.at_ns,
            sanitize(&e.tenant),
            e.kind.label(),
            e.dur_ns,
            e.detail
        );
    }
    for (tenant, t) in traces {
        let _ = write!(
            out,
            "trace {} {} {} {} {}",
            sanitize(tenant),
            t.session,
            t.cseq,
            t.seq,
            t.at_ns
        );
        for s in Stage::ALL {
            let _ = write!(out, " {}={}", s.label(), t.stages[s.idx()]);
        }
        out.push('\n');
    }
    out
}

/// A parsed `RVFR 1` dump.
#[derive(Clone, Debug, Default)]
pub struct FlightDump {
    /// Why the dump was written (`failed`, `circuit_break`, `sigquit`).
    pub reason: String,
    /// Remaining `meta` pairs (version, commit, uptime, tenant count).
    pub meta: Vec<(String, String)>,
    /// Black-box events, oldest first.
    pub events: Vec<FlightEvent>,
    /// `(tenant, trace)` pairs, in dump order.
    pub traces: Vec<(String, RequestTrace)>,
}

impl FlightDump {
    /// Parses the output of [`render_dump`].
    ///
    /// # Errors
    ///
    /// A missing/foreign magic line, or any malformed record line.
    pub fn parse(text: &str) -> Result<FlightDump, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some("RVFR 1") => {}
            Some(other) => return Err(format!("not an RVFR 1 dump (got {other:?})")),
            None => return Err("empty dump".to_owned()),
        }
        let mut dump = FlightDump::default();
        for (no, line) in lines.enumerate() {
            let lineno = no + 2;
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            let (tag, rest) =
                line.split_once(' ').ok_or_else(|| format!("line {lineno}: bare tag"))?;
            match tag {
                "meta" => {
                    for pair in rest.split(' ').filter(|p| !p.is_empty()) {
                        let (k, v) = pair
                            .split_once('=')
                            .ok_or_else(|| format!("line {lineno}: meta pair {pair:?}"))?;
                        if k == "reason" {
                            dump.reason = v.to_owned();
                        } else {
                            dump.meta.push((k.to_owned(), v.to_owned()));
                        }
                    }
                }
                "ev" => {
                    let mut it = rest.splitn(5, ' ');
                    let at_ns = parse_field(it.next(), lineno, "at_ns")?;
                    let tenant = it
                        .next()
                        .ok_or_else(|| format!("line {lineno}: ev missing tenant"))?
                        .to_owned();
                    let kind = it
                        .next()
                        .and_then(FlightKind::from_label)
                        .ok_or_else(|| format!("line {lineno}: ev bad kind"))?;
                    let dur_ns = parse_field(it.next(), lineno, "dur_ns")?;
                    let detail = it.next().unwrap_or("").to_owned();
                    dump.events.push(FlightEvent { at_ns, tenant, kind, dur_ns, detail });
                }
                "trace" => {
                    let mut it = rest.split(' ').filter(|p| !p.is_empty());
                    let tenant = it
                        .next()
                        .ok_or_else(|| format!("line {lineno}: trace missing tenant"))?
                        .to_owned();
                    let mut t = RequestTrace {
                        session: parse_field(it.next(), lineno, "session")?,
                        cseq: parse_field(it.next(), lineno, "cseq")?,
                        seq: parse_field(it.next(), lineno, "seq")?,
                        at_ns: parse_field(it.next(), lineno, "at_ns")?,
                        stages: [0; STAGE_COUNT],
                    };
                    for pair in it {
                        let (k, v) = pair
                            .split_once('=')
                            .ok_or_else(|| format!("line {lineno}: stage pair {pair:?}"))?;
                        let stage = Stage::from_label(k)
                            .ok_or_else(|| format!("line {lineno}: unknown stage {k:?}"))?;
                        t.stages[stage.idx()] =
                            v.parse().map_err(|e| format!("line {lineno}: {k}: {e}"))?;
                    }
                    dump.traces.push((tenant, t));
                }
                other => return Err(format!("line {lineno}: unknown tag {other:?}")),
            }
        }
        Ok(dump)
    }

    /// Looks up a meta value.
    #[must_use]
    pub fn meta_value(&self, key: &str) -> Option<&str> {
        self.meta.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Human rendering for `rvmon flight`: the header, the black-box
    /// events, then every trace with its full stage breakdown (slowest
    /// traces are tagged by the dumper's ordering, which puts exemplars
    /// after the recent window).
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "flight dump: reason={}", self.reason);
        for (k, v) in &self.meta {
            let _ = writeln!(out, "  {k}={v}");
        }
        let _ = writeln!(out, "events: {}", self.events.len());
        for e in &self.events {
            let _ = writeln!(
                out,
                "  [{:>12.3} ms] {:<12} {:<8} dur={:.1}us {}",
                to_ms(e.at_ns),
                e.tenant,
                e.kind.label(),
                to_us(e.dur_ns),
                e.detail
            );
        }
        let _ = writeln!(out, "traces: {}", self.traces.len());
        for (tenant, t) in &self.traces {
            let _ = writeln!(
                out,
                "  tenant={} session={} cseq={} seq={} total={:.1}us",
                tenant,
                t.session,
                t.cseq,
                t.seq,
                to_us(t.total_ns())
            );
            let mut parts = Vec::with_capacity(STAGE_COUNT);
            for s in Stage::ALL {
                parts.push(format!("{}={}ns", s.label(), t.stages[s.idx()]));
            }
            let _ = writeln!(out, "    {}", parts.join(" | "));
        }
        out
    }

    /// Chrome trace-event JSON for `rvmon timeline --daemon`: one lane
    /// per tenant; each trace's stages laid back-to-back ending at its
    /// completion time as balanced B/E pairs, GC cycles and
    /// restarts/reloads/state-changes as X complete events.
    #[must_use]
    pub fn chrome_trace(&self) -> String {
        let mut names: Vec<&str> = self
            .traces
            .iter()
            .map(|(t, _)| t.as_str())
            .chain(self.events.iter().map(|e| e.tenant.as_str()))
            .collect();
        names.sort_unstable();
        names.dedup();
        let mut logs: Vec<(String, SpanLog)> =
            names.iter().map(|n| ((*n).to_owned(), SpanLog::new())).collect();
        let lane_of = |logs: &mut Vec<(String, SpanLog)>, name: &str| -> usize {
            logs.iter().position(|(n, _)| n == name).unwrap_or(0)
        };
        for e in &self.events {
            let i = lane_of(&mut logs, &e.tenant);
            let cat = if e.kind == FlightKind::GcCycle { "gc" } else { "mark" };
            let name = if e.detail.is_empty() {
                e.kind.label().to_owned()
            } else {
                format!("{}: {}", e.kind.label(), e.detail)
            };
            logs[i].1.record_at(name, cat, e.at_ns, e.dur_ns);
        }
        for (tenant, t) in &self.traces {
            let i = lane_of(&mut logs, tenant);
            let mut end = t.at_ns;
            for s in Stage::ALL.into_iter().rev() {
                let dur = t.stages[s.idx()];
                if dur == 0 {
                    continue;
                }
                let start = end.saturating_sub(dur);
                logs[i].1.record_at(s.label().to_owned(), "phase", start, dur);
                end = start;
            }
        }
        let lanes: Vec<(String, &SpanLog)> = logs.iter().map(|(n, l)| (n.clone(), l)).collect();
        chrome_trace_json(&lanes)
    }

    /// Summary JSON (used by tests and tooling sanity checks).
    #[must_use]
    pub fn to_json_summary(&self) -> String {
        format!(
            "{{\"reason\":\"{}\",\"events\":{},\"traces\":{}}}",
            json_escape(&self.reason),
            self.events.len(),
            self.traces.len()
        )
    }
}

#[allow(clippy::cast_precision_loss)]
fn to_ms(ns: u64) -> f64 {
    ns as f64 / 1_000_000.0
}

fn parse_field<T: std::str::FromStr>(
    field: Option<&str>,
    lineno: usize,
    name: &str,
) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    field
        .ok_or_else(|| format!("line {lineno}: missing {name}"))?
        .parse()
        .map_err(|e| format!("line {lineno}: {name}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(seq: u64, engine_ns: u64) -> RequestTrace {
        let mut t = RequestTrace {
            session: 1,
            cseq: seq,
            seq,
            at_ns: seq * 1000,
            ..RequestTrace::default()
        };
        t.stages[Stage::Engine.idx()] = engine_ns;
        t.stages[Stage::JournalAppend.idx()] = 10;
        t
    }

    #[test]
    fn stage_labels_round_trip() {
        for s in Stage::ALL {
            assert_eq!(Stage::from_label(s.label()), Some(s));
        }
        assert_eq!(Stage::from_label("nope"), None);
        assert_eq!(Stage::ALL.len(), STAGE_COUNT);
    }

    #[test]
    fn ring_keeps_recent_window_and_slowest_exemplars() {
        let mut r = RequestTraceRing::new(4, 2);
        for i in 0..10 {
            // seq 3 and 7 are the slow ones.
            let slow = if i == 3 || i == 7 { 1_000_000 + i } else { 100 };
            r.push(trace(i, slow));
        }
        assert_eq!(r.recorded(), 10);
        let recent: Vec<u64> = r.recent().map(|t| t.seq).collect();
        assert_eq!(recent, vec![6, 7, 8, 9], "ring holds the last 4");
        let slow: Vec<u64> = r.slowest().iter().map(|t| t.seq).collect();
        assert_eq!(slow, vec![7, 3], "exemplars survive eviction, slowest first");
    }

    #[test]
    fn disabled_ring_counts_but_keeps_nothing() {
        let mut r = RequestTraceRing::new(0, 4);
        assert!(!r.enabled());
        r.push(trace(1, 5));
        assert_eq!(r.recorded(), 1);
        assert_eq!(r.recent().count(), 0);
        assert!(r.slowest().is_empty());
    }

    #[test]
    fn stage_stats_records_and_renders_flat_json() {
        let mut s = StageStats::new();
        s.record(Stage::QueueWait, 2_000);
        s.record_trace(&trace(1, 3_000));
        assert_eq!(s.stage(Stage::QueueWait).count(), 1);
        assert_eq!(s.stage(Stage::Engine).count(), 1);
        assert_eq!(s.stage(Stage::JournalFsync).count(), 0, "zero stages skip recording");
        let j = s.to_json();
        for stage in Stage::ALL {
            for suffix in ["count", "p50_us", "p90_us", "p99_us", "max_us", "sum_us"] {
                let key = format!("\"{}_{suffix}\":", stage.label());
                assert!(j.contains(&key), "missing {key} in {j}");
            }
        }
        let mut merged = StageStats::new();
        merged.merge_from(&s);
        assert_eq!(merged.samples(), s.samples());
    }

    #[test]
    fn recorder_is_bounded_and_monotonic() {
        let mut f = FlightRecorder::new(3);
        for i in 0..5 {
            f.note("t", FlightKind::Reject, 0, format!("429 {i}"));
        }
        assert_eq!(f.dropped(), 2);
        let details: Vec<&str> = f.events().map(|e| e.detail.as_str()).collect();
        assert_eq!(details, vec!["429 2", "429 3", "429 4"]);
        let times: Vec<u64> = f.events().map(|e| e.at_ns).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn dump_round_trips_through_parse() {
        let mut f = FlightRecorder::new(16);
        f.note("good", FlightKind::GcCycle, 4_500, "minor live=12".to_owned());
        f.note("bad tenant", FlightKind::State, 0, "running -> failed: panic".to_owned());
        let events: Vec<FlightEvent> = f.events().cloned().collect();
        let traces = vec![("bad tenant".to_owned(), trace(42, 9_000))];
        let meta = vec![
            ("version".to_owned(), "0.1.0".to_owned()),
            ("uptime_s".to_owned(), "12".to_owned()),
        ];
        let text = render_dump("circuit break", &meta, &events, &traces);
        assert!(text.starts_with("RVFR 1\n"));
        let dump = FlightDump::parse(&text).unwrap();
        assert_eq!(dump.reason, "circuit_break", "reason whitespace is sanitized");
        assert_eq!(dump.meta_value("version"), Some("0.1.0"));
        assert_eq!(dump.meta_value("uptime_s"), Some("12"));
        assert_eq!(dump.events.len(), 2);
        assert_eq!(dump.events[0].kind, FlightKind::GcCycle);
        assert_eq!(dump.events[0].dur_ns, 4_500);
        assert_eq!(dump.events[1].detail, "running -> failed: panic");
        assert_eq!(dump.events[1].tenant, "bad_tenant");
        assert_eq!(dump.traces.len(), 1);
        let (tenant, t) = &dump.traces[0];
        assert_eq!(tenant, "bad_tenant");
        assert_eq!(t.cseq, 42);
        assert_eq!(t.stages[Stage::Engine.idx()], 9_000);
        assert_eq!(t.stages[Stage::JournalAppend.idx()], 10);
    }

    #[test]
    fn parse_rejects_malformed_dumps() {
        assert!(FlightDump::parse("").is_err());
        assert!(FlightDump::parse("RVJL 1\n").is_err());
        assert!(FlightDump::parse("RVFR 1\nbogus line here\n").is_err());
        assert!(FlightDump::parse("RVFR 1\nev notanumber t reject 0 x\n").is_err());
        assert!(FlightDump::parse("RVFR 1\ntrace t 1 2 3 4 nostage=5\n").is_err());
        assert!(FlightDump::parse("RVFR 1\nev 5 t badkind 0 x\n").is_err());
    }

    #[test]
    fn render_text_contains_full_stage_breakdown() {
        let traces = vec![("bad".to_owned(), trace(7, 5_000))];
        let text = render_dump("failed", &[], &[], &traces);
        let rendered = FlightDump::parse(&text).unwrap().render_text();
        assert!(rendered.contains("reason=failed"));
        assert!(rendered.contains("tenant=bad session=1 cseq=7 seq=7"));
        for s in Stage::ALL {
            assert!(rendered.contains(s.label()), "missing stage {} in {rendered}", s.label());
        }
        assert!(rendered.contains("engine=5000ns"));
    }

    #[test]
    fn chrome_trace_is_valid_balanced_json() {
        let mut f = FlightRecorder::new(16);
        f.note("a", FlightKind::GcCycle, 300, "minor".to_owned());
        f.note("b", FlightKind::Restart, 1_000, "attempt 1".to_owned());
        let events: Vec<FlightEvent> = f.events().cloned().collect();
        let traces = vec![("a".to_owned(), trace(1, 2_000)), ("b".to_owned(), trace(2, 4_000))];
        let text = render_dump("sigquit", &[], &events, &traces);
        let json = FlightDump::parse(&text).unwrap().chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""), "GC/restart marks become X events");
        assert!(json.contains("\"ph\":\"B\"") && json.contains("\"ph\":\"E\""));
        let b = json.matches("\"ph\":\"B\"").count();
        let e = json.matches("\"ph\":\"E\"").count();
        assert_eq!(b, e, "B/E pairs balance");
        assert!(json.contains("\"name\":\"a\"") && json.contains("\"name\":\"b\""));
    }
}
