//! Per-tenant SLO engine: declarative latency/availability objectives
//! with windowed error-budget accounting and burn-rate computation.
//!
//! An SLO here is a pair of objectives over a count-based sliding
//! window of recent requests:
//!
//! * **latency** — a fraction `latency_goal` of requests must complete
//!   end-to-end (wire read through trigger delivery) within
//!   `latency_target_us` microseconds;
//! * **availability** — a fraction `availability_goal` of requests must
//!   succeed (a shed line, gap-discarded frame, REJECT, or tenant
//!   failure counts against it).
//!
//! The **error budget** of an objective over a window of `n` requests
//! with goal `g` is the `n·(1−g)` violations the objective tolerates;
//! [`Objective::budget_remaining`] reports the unspent fraction of that
//! allowance and [`Objective::burn_rate`] the current spend rate (1.0 =
//! exactly on budget, >1 = burning toward exhaustion). Count-based
//! windows were chosen over wall-clock windows so the math is exact,
//! deterministic under test, and independent of event arrival rate —
//! a idle tenant neither burns nor repairs its budget.
//!
//! Objectives arrive from the daemon-wide `--slo` flag (`rvmond
//! --slo latency_target_us=5000,availability=0.999,window=512`) parsed
//! by [`SloConfig::parse`]; the HELLO wire format is deliberately left
//! untouched so old clients keep working — per-tenant overrides can
//! ride a future HELLO flag without changing this module.
//!
//! Surfaced as `rvmond_slo_*` Prometheus series, `slo` lines on
//! `/healthz`, the `"slo"` object in STATS replies (see
//! `rvmonctl slo`), and the flight recorder's post-mortem dumps.

use std::collections::VecDeque;

use crate::obs::json_f64;

/// Ceiling on the sliding-window length accepted from configuration;
/// keeps per-tenant memory bounded (one bit per request would be nicer
/// but a `VecDeque<bool>` at 64 KiB worst-case is plenty cheap).
pub const MAX_SLO_WINDOW: usize = 65_536;

/// Declarative SLO targets for one tenant (or the daemon default).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SloConfig {
    /// Per-request end-to-end latency target, microseconds.
    pub latency_target_us: u64,
    /// Fraction of windowed requests that must meet the latency target.
    pub latency_goal: f64,
    /// Fraction of windowed requests that must succeed.
    pub availability_goal: f64,
    /// Sliding-window length, in requests.
    pub window: usize,
}

impl Default for SloConfig {
    /// Lenient defaults: 50 ms p99-style latency target and three-nines
    /// availability over the last 1024 requests — a clean local run
    /// should never burn budget out of the box.
    fn default() -> Self {
        SloConfig {
            latency_target_us: 50_000,
            latency_goal: 0.99,
            availability_goal: 0.999,
            window: 1024,
        }
    }
}

impl SloConfig {
    /// Parses a `key=value,key=value` objective list. Keys:
    /// `latency_target_us`, `latency_goal`, `availability` (or
    /// `availability_goal`), `window`. Unset keys keep their defaults.
    ///
    /// # Errors
    ///
    /// Unknown keys, unparsable numbers, goals outside `(0, 1)`, a zero
    /// latency target, or a window outside `[1, MAX_SLO_WINDOW]`.
    pub fn parse(s: &str) -> Result<SloConfig, String> {
        let mut cfg = SloConfig::default();
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("slo: expected key=value, got {part:?}"))?;
            match key.trim() {
                "latency_target_us" => {
                    cfg.latency_target_us = value
                        .trim()
                        .parse::<u64>()
                        .map_err(|e| format!("slo: latency_target_us: {e}"))?;
                    if cfg.latency_target_us == 0 {
                        return Err("slo: latency_target_us must be positive".to_owned());
                    }
                }
                "latency_goal" => cfg.latency_goal = parse_goal(value, "latency_goal")?,
                "availability" | "availability_goal" => {
                    cfg.availability_goal = parse_goal(value, "availability")?;
                }
                "window" => {
                    let w =
                        value.trim().parse::<usize>().map_err(|e| format!("slo: window: {e}"))?;
                    if w == 0 || w > MAX_SLO_WINDOW {
                        return Err(format!("slo: window must be in 1..={MAX_SLO_WINDOW}"));
                    }
                    cfg.window = w;
                }
                other => return Err(format!("slo: unknown key {other:?}")),
            }
        }
        Ok(cfg)
    }

    /// Renders the configuration as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"latency_target_us\":{},\"latency_goal\":{},\"availability_goal\":{},\
             \"window\":{}}}",
            self.latency_target_us,
            json_f64(self.latency_goal),
            json_f64(self.availability_goal),
            self.window,
        )
    }
}

fn parse_goal(value: &str, key: &str) -> Result<f64, String> {
    let g = value.trim().parse::<f64>().map_err(|e| format!("slo: {key}: {e}"))?;
    if !(g > 0.0 && g < 1.0) {
        return Err(format!("slo: {key} must be strictly between 0 and 1"));
    }
    Ok(g)
}

/// One objective's sliding window plus monotonic lifetime totals.
#[derive(Clone, Debug)]
pub struct Objective {
    goal: f64,
    cap: usize,
    /// `true` per windowed request that *violated* the objective.
    window: VecDeque<bool>,
    window_bad: u64,
    good_total: u64,
    bad_total: u64,
}

impl Objective {
    /// An empty objective; `goal` must lie in `(0, 1)` (enforced at
    /// [`SloConfig::parse`]) and `cap` bounds the window length.
    #[must_use]
    pub fn new(goal: f64, cap: usize) -> Objective {
        Objective {
            goal,
            cap: cap.max(1),
            window: VecDeque::new(),
            window_bad: 0,
            good_total: 0,
            bad_total: 0,
        }
    }

    /// Records one request outcome, evicting the oldest once the window
    /// is full.
    pub fn record(&mut self, ok: bool) {
        if self.window.len() == self.cap && self.window.pop_front() == Some(true) {
            self.window_bad = self.window_bad.saturating_sub(1);
        }
        self.window.push_back(!ok);
        if ok {
            self.good_total += 1;
        } else {
            self.window_bad += 1;
            self.bad_total += 1;
        }
    }

    /// The objective's target fraction.
    #[must_use]
    pub fn goal(&self) -> f64 {
        self.goal
    }

    /// Requests currently in the window.
    #[must_use]
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// Violations currently in the window.
    #[must_use]
    pub fn window_bad(&self) -> u64 {
        self.window_bad
    }

    /// Lifetime conforming requests.
    #[must_use]
    pub fn good_total(&self) -> u64 {
        self.good_total
    }

    /// Lifetime violations.
    #[must_use]
    pub fn bad_total(&self) -> u64 {
        self.bad_total
    }

    /// Fraction of the window's error budget still unspent, in `[0, 1]`.
    /// An empty window has a full budget. The allowance is
    /// `window_len · (1 − goal)`; when the window is still so short that
    /// the allowance rounds below one request, any violation zeroes the
    /// budget (strictest consistent reading).
    #[must_use]
    pub fn budget_remaining(&self) -> f64 {
        if self.window.is_empty() {
            return 1.0;
        }
        #[allow(clippy::cast_precision_loss)]
        let allowed = self.window.len() as f64 * (1.0 - self.goal);
        #[allow(clippy::cast_precision_loss)]
        let bad = self.window_bad as f64;
        if allowed <= 0.0 {
            return if self.window_bad == 0 { 1.0 } else { 0.0 };
        }
        (1.0 - bad / allowed).clamp(0.0, 1.0)
    }

    /// Current burn rate: observed violation fraction over the allowed
    /// violation fraction. 0 = pristine, 1 = spending exactly on
    /// budget, >1 = burning toward exhaustion. Empty window burns 0.
    #[must_use]
    pub fn burn_rate(&self) -> f64 {
        if self.window.is_empty() {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        let frac = self.window_bad as f64 / self.window.len() as f64;
        frac / (1.0 - self.goal)
    }
}

/// Point-in-time reading of one objective, cheap to copy out of a lock.
#[derive(Clone, Copy, Debug, Default)]
pub struct ObjectiveSnapshot {
    /// Target fraction.
    pub goal: f64,
    /// Requests in the window.
    pub window_len: u64,
    /// Violations in the window.
    pub window_bad: u64,
    /// Lifetime conforming requests.
    pub good_total: u64,
    /// Lifetime violations.
    pub bad_total: u64,
    /// Unspent budget fraction, `[0, 1]`.
    pub budget_remaining: f64,
    /// Current burn rate.
    pub burn_rate: f64,
}

impl ObjectiveSnapshot {
    fn of(o: &Objective) -> ObjectiveSnapshot {
        ObjectiveSnapshot {
            goal: o.goal(),
            window_len: o.window_len() as u64,
            window_bad: o.window_bad(),
            good_total: o.good_total(),
            bad_total: o.bad_total(),
            budget_remaining: o.budget_remaining(),
            burn_rate: o.burn_rate(),
        }
    }
}

/// Both objectives for one tenant. The worker records a latency sample
/// (which doubles as an availability success) per processed line;
/// admission rejects, sheds, gap-discards, and tenant failures record
/// availability errors from the service side.
#[derive(Clone, Debug)]
pub struct SloTracker {
    config: SloConfig,
    latency: Objective,
    availability: Objective,
}

impl SloTracker {
    /// A tracker with empty windows for `config`'s objectives.
    #[must_use]
    pub fn new(config: SloConfig) -> SloTracker {
        SloTracker {
            config,
            latency: Objective::new(config.latency_goal, config.window),
            availability: Objective::new(config.availability_goal, config.window),
        }
    }

    /// The configured targets.
    #[must_use]
    pub fn config(&self) -> &SloConfig {
        &self.config
    }

    /// Records one successfully processed request with its end-to-end
    /// latency in microseconds.
    pub fn record_request(&mut self, latency_us: u64) {
        self.latency.record(latency_us <= self.config.latency_target_us);
        self.availability.record(true);
    }

    /// Records one failed request (shed, gap-discarded, rejected, or
    /// lost to a tenant failure). Errors have no meaningful latency, so
    /// only the availability objective is charged.
    pub fn record_error(&mut self) {
        self.availability.record(false);
    }

    /// A copyable point-in-time reading of both objectives.
    #[must_use]
    pub fn snapshot(&self) -> SloSnapshot {
        SloSnapshot {
            latency_target_us: self.config.latency_target_us,
            latency: ObjectiveSnapshot::of(&self.latency),
            availability: ObjectiveSnapshot::of(&self.availability),
        }
    }
}

/// Point-in-time reading of a tenant's SLO state.
#[derive(Clone, Copy, Debug, Default)]
pub struct SloSnapshot {
    /// The latency objective's per-request target, microseconds.
    pub latency_target_us: u64,
    /// The latency objective.
    pub latency: ObjectiveSnapshot,
    /// The availability objective.
    pub availability: ObjectiveSnapshot,
}

impl SloSnapshot {
    /// Renders the snapshot as a flat JSON object (flat keys so shallow
    /// consumers — `loadgen`, `rvmonctl slo` — can extract fields
    /// without a JSON parser).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"latency_target_us\":{},\"latency_goal\":{},\"latency_window\":{},\
             \"latency_breaches\":{},\"latency_budget_remaining\":{},\"latency_burn_rate\":{},\
             \"availability_goal\":{},\"availability_window\":{},\"availability_errors\":{},\
             \"availability_budget_remaining\":{},\"availability_burn_rate\":{},\
             \"good_total\":{},\"bad_total\":{}}}",
            self.latency_target_us,
            json_f64(self.latency.goal),
            self.latency.window_len,
            self.latency.window_bad,
            json_f64(self.latency.budget_remaining),
            json_f64(self.latency.burn_rate),
            json_f64(self.availability.goal),
            self.availability.window_len,
            self.availability.window_bad,
            json_f64(self.availability.budget_remaining),
            json_f64(self.availability.burn_rate),
            self.availability.good_total,
            self.availability.bad_total,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_lenient_and_parse_overrides_them() {
        let d = SloConfig::default();
        assert_eq!(d.latency_target_us, 50_000);
        assert_eq!(d.window, 1024);
        let c = SloConfig::parse("latency_target_us=5000,availability=0.99,window=64").unwrap();
        assert_eq!(c.latency_target_us, 5000);
        assert_eq!(c.availability_goal, 0.99);
        assert_eq!(c.window, 64);
        assert_eq!(c.latency_goal, d.latency_goal, "unset keys keep defaults");
        assert_eq!(SloConfig::parse("").unwrap(), d);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(SloConfig::parse("bogus=1").is_err());
        assert!(SloConfig::parse("latency_goal=1.5").is_err());
        assert!(SloConfig::parse("availability=0").is_err());
        assert!(SloConfig::parse("window=0").is_err());
        assert!(SloConfig::parse(&format!("window={}", MAX_SLO_WINDOW + 1)).is_err());
        assert!(SloConfig::parse("latency_target_us=0").is_err());
        assert!(SloConfig::parse("latency_target_us").is_err());
    }

    #[test]
    fn empty_window_has_full_budget_and_zero_burn() {
        let o = Objective::new(0.999, 16);
        assert_eq!(o.budget_remaining(), 1.0);
        assert_eq!(o.burn_rate(), 0.0);
    }

    #[test]
    fn budget_burns_linearly_with_violations() {
        // goal 0.9 over a window of 100 → budget allows 10 violations.
        let mut o = Objective::new(0.9, 100);
        for _ in 0..95 {
            o.record(true);
        }
        for _ in 0..5 {
            o.record(false);
        }
        assert_eq!(o.window_len(), 100);
        assert!((o.budget_remaining() - 0.5).abs() < 1e-9, "5 of 10 allowed spent");
        assert!((o.burn_rate() - 0.5).abs() < 1e-9);
        for _ in 0..5 {
            o.record(false);
        }
        // The 5 evicted requests were all good, so all 10 bad remain.
        assert!(o.budget_remaining().abs() < 1e-9, "budget exhausted");
        assert!((o.burn_rate() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn window_eviction_repairs_the_budget() {
        let mut o = Objective::new(0.5, 4);
        for _ in 0..4 {
            o.record(false);
        }
        assert_eq!(o.budget_remaining(), 0.0);
        for _ in 0..4 {
            o.record(true);
        }
        assert_eq!(o.window_bad(), 0);
        assert_eq!(o.budget_remaining(), 1.0);
        assert_eq!(o.bad_total(), 4, "lifetime totals never shrink");
        assert_eq!(o.good_total(), 4);
    }

    #[test]
    fn short_window_with_sub_request_allowance_is_strict() {
        // 1 request at goal 0.999: allowance is 0.001 requests.
        let mut o = Objective::new(0.999, 64);
        o.record(false);
        assert!(o.budget_remaining() < 1e-9);
        o.record(true);
        assert!(o.budget_remaining() < 1.0, "the violation still dominates the tiny allowance");
    }

    #[test]
    fn tracker_routes_latency_and_availability() {
        let cfg = SloConfig::parse("latency_target_us=100,latency_goal=0.5,window=8").unwrap();
        let mut t = SloTracker::new(cfg);
        t.record_request(50); // fast: both objectives happy
        t.record_request(500); // slow: latency breach, availability ok
        t.record_error(); // availability breach only
        let s = t.snapshot();
        assert_eq!(s.latency.window_len, 2);
        assert_eq!(s.latency.window_bad, 1);
        assert_eq!(s.availability.window_len, 3);
        assert_eq!(s.availability.window_bad, 1);
        assert_eq!(s.availability.good_total, 2);
        assert_eq!(s.availability.bad_total, 1);
    }

    #[test]
    fn snapshot_json_is_flat_and_complete() {
        let t = SloTracker::new(SloConfig::default());
        let j = t.snapshot().to_json();
        for key in [
            "latency_target_us",
            "latency_goal",
            "latency_window",
            "latency_breaches",
            "latency_budget_remaining",
            "latency_burn_rate",
            "availability_goal",
            "availability_window",
            "availability_errors",
            "availability_budget_remaining",
            "availability_burn_rate",
            "good_total",
            "bad_total",
        ] {
            assert!(j.contains(&format!("\"{key}\":")), "missing {key} in {j}");
        }
        assert!(!j.contains('\n'));
    }

    #[test]
    fn config_json_round_trips_the_fields() {
        let c = SloConfig::parse("latency_target_us=7,latency_goal=0.25,window=9").unwrap();
        let j = c.to_json();
        assert!(j.contains("\"latency_target_us\":7"));
        assert!(j.contains("\"latency_goal\":0.25"));
        assert!(j.contains("\"window\":9"));
    }
}
