//! The parametric runtime monitoring engine — the core of the PLDI'11 RV
//! reproduction.
//!
//! This crate implements, on top of the [`rv_heap`] managed-heap substrate
//! and the [`rv_logic`] formalism plugins:
//!
//! * parameter instances and their lattice ([`Binding`], Definitions 3–5);
//! * the paper's Figure 5 abstract algorithm as a reference oracle
//!   ([`reference::monitor_trace`]);
//! * the production engine ([`Engine`]) with the §4 machinery — weak-keyed
//!   indexing trees ([`trees::RvMap`], Figure 6), lazy dead-key expunging
//!   with monitor notification (Figure 7), set compaction (Figure 8),
//!   enable-set monitor creation, and the three monitor-GC policies the
//!   evaluation compares ([`GcPolicy`]);
//! * per-property statistics matching Figure 10 ([`EngineStats`]);
//! * a multi-property dispatcher ([`multi::PropertyMonitor`]) used for the
//!   spec-driven path and the "ALL" experiment.
//!
//! # Example
//!
//! ```
//! use rv_core::{Binding, Engine, EngineConfig, GcPolicy};
//! use rv_heap::{Heap, HeapConfig};
//! use rv_logic::ere::unsafe_iter_ere;
//! use rv_logic::{Alphabet, EventDef, GoalSet, ParamId, ParamSet};
//!
//! // Compile UnsafeIter and monitor one collection/iterator pair.
//! let alphabet = Alphabet::from_names(&["create", "update", "next"]);
//! let dfa = unsafe_iter_ere(&alphabet).compile(&alphabet, 1_000)?;
//! let (c, i) = (ParamId(0), ParamId(1));
//! let def = EventDef::new(
//!     &alphabet,
//!     &["c", "i"],
//!     vec![ParamSet::singleton(c).with(i), ParamSet::singleton(c), ParamSet::singleton(i)],
//! );
//! let mut engine = Engine::new(dfa, def, GoalSet::MATCH, EngineConfig {
//!     record_triggers: true,
//!     ..EngineConfig::default()
//! });
//!
//! let mut heap = Heap::new(HeapConfig::manual());
//! let cls = heap.register_class("Obj");
//! let frame = heap.enter_frame();
//! let coll = heap.alloc(cls);
//! let iter = heap.alloc(cls);
//! let ev = |n: &str| alphabet.lookup(n).unwrap();
//! engine.process(&heap, ev("create"), Binding::from_pairs(&[(c, coll), (i, iter)]));
//! engine.process(&heap, ev("update"), Binding::from_pairs(&[(c, coll)]));
//! engine.process(&heap, ev("next"), Binding::from_pairs(&[(i, iter)]));
//! assert_eq!(engine.stats().triggers, 1, "unsafe iteration detected");
//! heap.exit_frame(frame);
//! # Ok::<(), rv_logic::ere::EreError>(())
//! ```

pub mod binding;
pub mod chaos;
pub mod client;
pub mod crashtest;
pub mod engine;
pub mod error;
pub mod flight;
pub mod journal;
pub mod multi;
pub mod netchaos;
pub mod obs;
pub mod profile;
pub mod reference;
pub mod service;
pub mod shard;
pub mod slo;
pub mod snapshot;
pub mod stats;
pub mod store;
pub mod trees;

pub use crate::binding::{Binding, MAX_PARAMS};
pub use crate::chaos::{run_block, ChaosOutcome};
pub use crate::client::{ClientStats, ReconnectPolicy, ResilientClient};
pub use crate::crashtest::{crash_and_recover, CrashOutcome, KillClass};
pub use crate::engine::{BudgetKind, DegradationPolicy, Engine, EngineConfig, GcPolicy};
pub use crate::error::EngineError;
pub use crate::flight::{
    render_dump, FlightDump, FlightEvent, FlightKind, FlightRecorder, RequestTrace,
    RequestTraceRing, Stage, StageStats, STAGE_COUNT,
};
pub use crate::journal::{
    is_transient, read_journal, FailingWriter, JournalScan, JournalStats, JournalWriter, Record,
    RetryPolicy, SeqRecord, Truncation,
};
pub use crate::multi::PropertyMonitor;
pub use crate::netchaos::{ChaosProfile, ChaosProxy, ChaosStats};
pub use crate::obs::{
    mmu, mmu_curve, EngineObserver, FlagCause, GcCycleRecord, GcKind, GcReason, Histogram,
    MetricsRegistry, NoopObserver, Phase, TraceKind, TraceRecord, TraceRecorder,
};
pub use crate::profile::{
    chrome_trace_json, prometheus_text, InstanceRecord, PhaseProfiler, ProvenanceLedger,
    ProvenanceSummary, SpanLog, TimelineSpan,
};
pub use crate::reference::{monitor_trace, ReferenceRun, Trigger};
pub use crate::service::{
    encode_frame, read_frame, read_frame_timed, serve_connection, write_frame, Backpressure,
    ConnPermit, Service, ServiceConfig, ServiceStats, SupervisorConfig, TenantOptions,
    TenantSnapshot, TenantState, TriggerLog, TriggerRecord,
};
pub use crate::shard::{
    differential_run, differential_run_with, owner_param, HandlerFactory, ShardConfig,
    ShardDifferential, ShardReport, ShardSession, ShardTrigger, ShardedMonitor,
};
pub use crate::slo::{Objective, ObjectiveSnapshot, SloConfig, SloSnapshot, SloTracker};
pub use crate::snapshot::{
    load_latest_checkpoint, plan_recovery, write_checkpoint, Checkpoint, Recovery,
};
pub use crate::stats::EngineStats;
pub use crate::store::{MonitorId, MonitorStore};
