//! Each DaCapo-like profile must exhibit the monitoring signature that
//! its benchmark shows in the paper's Figure 10 — these are the knobs the
//! whole evaluation stands on, so they are pinned by tests.

use rv_heap::Heap;
use rv_workloads::{run, EventSink, Profile, SimEvent};

#[derive(Default)]
struct Histogram {
    hasnext: u64,
    next: u64,
    create_iter: u64,
    update_coll: u64,
    create_map_coll: u64,
    update_map: u64,
    sync: u64,
    lock_ops: u64,
    total: u64,
}

impl EventSink for Histogram {
    fn emit(&mut self, _heap: &Heap, event: &SimEvent) {
        self.total += 1;
        match event {
            SimEvent::HasNextTrue { .. } | SimEvent::HasNextFalse { .. } => self.hasnext += 1,
            SimEvent::Next { .. } => self.next += 1,
            SimEvent::CreateIter { .. } => self.create_iter += 1,
            SimEvent::UpdateColl { .. } => self.update_coll += 1,
            SimEvent::CreateMapColl { .. } => self.create_map_coll += 1,
            SimEvent::UpdateMap { .. } => self.update_map += 1,
            SimEvent::SyncColl { .. } | SimEvent::SyncMap { .. } => self.sync += 1,
            SimEvent::Acquire { .. } | SimEvent::Release { .. } => self.lock_ops += 1,
            _ => {}
        }
    }
}

fn histogram(name: &str) -> Histogram {
    let mut h = Histogram::default();
    let profile = Profile::by_name(name).unwrap_or_else(|| panic!("unknown profile {name}"));
    let _ = run(&profile, 1.0, &mut h);
    h
}

#[test]
fn bloat_is_iterator_heavy_with_long_iterations() {
    // Paper: 78M hasNext / 941K iterators ≈ 83 per iterator; iterator
    // traffic dominates everything else.
    let h = histogram("bloat");
    assert!(h.next / h.create_iter.max(1) > 30, "long iterations: {} / {}", h.next, h.create_iter);
    assert!(h.hasnext + h.next > h.total / 2, "iterator traffic dominates");
}

#[test]
fn avrora_has_many_short_iterations() {
    // Paper: 1.16M hasNext and 353K next over ~909K iterators — far more
    // iterators than elements.
    let h = histogram("avrora");
    let nexts_per_iter = h.next as f64 / h.create_iter.max(1) as f64;
    assert!(nexts_per_iter < 2.0, "avrora iterations are short: {nexts_per_iter}");
    assert!(h.create_iter > 100, "plenty of iterators: {}", h.create_iter);
}

#[test]
fn xalan_is_map_churn_without_iteration() {
    // Paper: UNSAFEMAPITER E = 119K while HASNEXT E = 11.
    let h = histogram("xalan");
    assert!(h.hasnext + h.next < 20, "almost no iteration: {}", h.hasnext + h.next);
    assert!(
        h.update_map + h.create_map_coll > 100,
        "map traffic dominates: {} + {}",
        h.update_map,
        h.create_map_coll
    );
}

#[test]
fn sunflow_iterates_without_observed_creations() {
    // Paper: UNSAFEITER E = 1.3M, M = 2 — next events without creates.
    let h = histogram("sunflow");
    assert!(h.next > 100);
    assert!(h.create_iter < h.next / 20, "creates {} vs nexts {}", h.create_iter, h.next);
}

#[test]
fn h2_has_high_volume_and_short_lifetimes() {
    // Paper: 27M events, 6.5M monitors — roughly one iterator per few
    // events, everything dying quickly (linger = 0).
    let h = histogram("h2");
    assert!(h.total > 10_000, "h2 is the volume benchmark: {}", h.total);
    assert_eq!(Profile::by_name("h2").unwrap().coll_linger_rounds, 0);
}

#[test]
fn idle_benchmarks_stay_idle() {
    for name in ["tomcat", "tradebeans", "tradesoap"] {
        let h = histogram(name);
        assert!(
            h.hasnext + h.next + h.create_iter < 60,
            "{name} should be nearly idle: {}",
            h.hasnext + h.next + h.create_iter
        );
    }
}

#[test]
fn jython_is_map_view_dominated() {
    // Paper: UNSAFEMAPITER M = 101K while HASNEXT E = 106.
    let h = histogram("jython");
    assert!(h.create_map_coll + h.update_map > h.hasnext + h.next);
}

#[test]
fn every_profile_emits_lock_traffic_for_safelock() {
    for p in Profile::dacapo() {
        let mut h = Histogram::default();
        let _ = run(&p, 1.0, &mut h);
        assert!(h.lock_ops > 0, "{} has no SAFELOCK traffic", p.name);
    }
}

#[test]
fn synchronized_fraction_shows_up_where_configured() {
    let h = histogram("fop"); // sync_fraction = 0.2
    assert!(h.sync > 0, "fop wraps some collections");
    let h2 = histogram("sunflow"); // sync_fraction = 0.0
    assert_eq!(h2.sync, 0, "sunflow never synchronizes");
}

#[test]
fn scaled_runs_preserve_the_signature_shape() {
    // The scale knob must not distort ratios (it multiplies rounds).
    let p = Profile::by_name("pmd").unwrap();
    let mut small = Histogram::default();
    let mut large = Histogram::default();
    let _ = run(&p, 0.5, &mut small);
    let _ = run(&p, 2.0, &mut large);
    let ratio_small = small.next as f64 / small.create_iter.max(1) as f64;
    let ratio_large = large.next as f64 / large.create_iter.max(1) as f64;
    assert!(
        (ratio_small - ratio_large).abs() < ratio_large.max(1.0) * 0.5,
        "nexts-per-iterator drifted: {ratio_small} vs {ratio_large}"
    );
}
