//! Simulated-program events and their projections onto the monitored
//! properties.
//!
//! A workload run produces one stream of [`SimEvent`]s — the union of
//! everything the paper's AspectJ instrumentation would observe. Each
//! property sees only its own slice of that stream: [`project`] plays the
//! role of the pointcut definitions, mapping a program event to the
//! property's event name and the bound objects *in the property's declared
//! parameter order*.

use rv_heap::ObjId;
use rv_props::Property;

/// A bounded list of bound objects (no property binds more than three).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObjList {
    objs: [ObjId; 3],
    len: u8,
}

impl ObjList {
    fn new(objs: &[ObjId]) -> ObjList {
        assert!(objs.len() <= 3, "at most 3 objects per event");
        let mut arr = [ObjId::from_bits(0); 3];
        arr[..objs.len()].copy_from_slice(objs);
        ObjList { objs: arr, len: objs.len() as u8 }
    }

    /// The bound objects.
    #[must_use]
    pub fn as_slice(&self) -> &[ObjId] {
        &self.objs[..usize::from(self.len)]
    }
}

/// One observable action of a simulated program.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimEvent {
    /// `it.hasNext()` returned true.
    HasNextTrue {
        /// The iterator.
        iter: ObjId,
    },
    /// `it.hasNext()` returned false.
    HasNextFalse {
        /// The iterator.
        iter: ObjId,
    },
    /// `it.next()`.
    Next {
        /// The iterator.
        iter: ObjId,
    },
    /// `coll.iterator()`.
    CreateIter {
        /// The collection.
        coll: ObjId,
        /// The new iterator.
        iter: ObjId,
    },
    /// A structural update of a collection (`add`/`remove`/`clear`).
    UpdateColl {
        /// The collection.
        coll: ObjId,
    },
    /// `map.keySet()` / `map.values()` — a view collection of a map.
    CreateMapColl {
        /// The map.
        map: ObjId,
        /// The view collection.
        coll: ObjId,
    },
    /// A structural update of a map.
    UpdateMap {
        /// The map.
        map: ObjId,
    },
    /// `Collections.synchronizedCollection(..)` returned this collection.
    SyncColl {
        /// The collection.
        coll: ObjId,
    },
    /// `Collections.synchronizedMap(..)` returned this map.
    SyncMap {
        /// The map.
        map: ObjId,
    },
    /// An iterator created *while holding* the collection's lock.
    SyncCreateIter {
        /// The collection.
        coll: ObjId,
        /// The iterator.
        iter: ObjId,
    },
    /// An iterator created *without* holding the collection's lock.
    AsyncCreateIter {
        /// The collection.
        coll: ObjId,
        /// The iterator.
        iter: ObjId,
    },
    /// An iterator accessed without synchronization.
    AccessIter {
        /// The iterator.
        iter: ObjId,
    },
    /// `lock.acquire()` on a thread.
    Acquire {
        /// The lock.
        lock: ObjId,
        /// The thread.
        thread: ObjId,
    },
    /// `lock.release()` on a thread.
    Release {
        /// The lock.
        lock: ObjId,
        /// The thread.
        thread: ObjId,
    },
    /// A method body begins on a thread.
    Begin {
        /// The thread.
        thread: ObjId,
    },
    /// A method body ends on a thread.
    End {
        /// The thread.
        thread: ObjId,
    },
    /// `set.add(o)`.
    Add {
        /// The hash container.
        set: ObjId,
        /// The element.
        obj: ObjId,
    },
    /// A mutation of `o` that changes its hash code.
    Mutate {
        /// The element.
        obj: ObjId,
    },
    /// `set.contains(o)` / lookup.
    Find {
        /// The hash container.
        set: ObjId,
        /// The element.
        obj: ObjId,
    },
    /// `file.open()`.
    Open {
        /// The file.
        file: ObjId,
    },
    /// A write to an open file.
    WriteFile {
        /// The file.
        file: ObjId,
    },
    /// `file.close()`.
    Close {
        /// The file.
        file: ObjId,
    },
    /// `vector.elements()`.
    CreateEnum {
        /// The vector.
        vec: ObjId,
        /// The enumeration.
        en: ObjId,
    },
    /// A structural modification of a vector.
    ModifyVec {
        /// The vector.
        vec: ObjId,
    },
    /// `enumeration.nextElement()`.
    NextElem {
        /// The enumeration.
        en: ObjId,
    },
    /// `writer.open()`.
    OpenWriter {
        /// The writer.
        w: ObjId,
    },
    /// `writer.write(c)`.
    WriteChar {
        /// The writer.
        w: ObjId,
    },
    /// `writer.close()`.
    CloseWriter {
        /// The writer.
        w: ObjId,
    },
}

/// Projects a program event onto `property`'s alphabet: the property's
/// event name plus the bound objects in declared parameter order, or
/// `None` when the property does not observe this event.
#[must_use]
pub fn project(event: &SimEvent, property: Property) -> Option<(&'static str, ObjList)> {
    use Property as P;
    use SimEvent as E;
    let (name, objs): (&'static str, ObjList) = match (property, *event) {
        (P::HasNext, E::HasNextTrue { iter }) => ("hasnexttrue", ObjList::new(&[iter])),
        (P::HasNext, E::HasNextFalse { iter }) => ("hasnextfalse", ObjList::new(&[iter])),
        (P::HasNext, E::Next { iter }) => ("next", ObjList::new(&[iter])),

        (P::UnsafeIter, E::CreateIter { coll, iter }) => ("create", ObjList::new(&[coll, iter])),
        (P::UnsafeIter, E::UpdateColl { coll }) => ("update", ObjList::new(&[coll])),
        (P::UnsafeIter, E::Next { iter }) => ("next", ObjList::new(&[iter])),

        (P::UnsafeMapIter, E::CreateMapColl { map, coll }) => {
            ("createcoll", ObjList::new(&[map, coll]))
        }
        (P::UnsafeMapIter, E::CreateIter { coll, iter }) => {
            ("createiter", ObjList::new(&[coll, iter]))
        }
        (P::UnsafeMapIter, E::Next { iter }) => ("useiter", ObjList::new(&[iter])),
        (P::UnsafeMapIter, E::UpdateMap { map }) => ("updatemap", ObjList::new(&[map])),

        (P::UnsafeSyncColl, E::SyncColl { coll }) => ("sync", ObjList::new(&[coll])),
        (P::UnsafeSyncColl, E::AsyncCreateIter { coll, iter }) => {
            ("asynccreateiter", ObjList::new(&[coll, iter]))
        }
        (P::UnsafeSyncColl, E::SyncCreateIter { coll, iter }) => {
            ("synccreateiter", ObjList::new(&[coll, iter]))
        }
        (P::UnsafeSyncColl, E::AccessIter { iter }) => ("accessiter", ObjList::new(&[iter])),

        (P::UnsafeSyncMap, E::SyncMap { map }) => ("sync", ObjList::new(&[map])),
        (P::UnsafeSyncMap, E::CreateMapColl { map, coll }) => {
            ("createset", ObjList::new(&[map, coll]))
        }
        (P::UnsafeSyncMap, E::AsyncCreateIter { coll, iter }) => {
            ("asynccreateiter", ObjList::new(&[coll, iter]))
        }
        (P::UnsafeSyncMap, E::SyncCreateIter { coll, iter }) => {
            ("synccreateiter", ObjList::new(&[coll, iter]))
        }
        (P::UnsafeSyncMap, E::AccessIter { iter }) => ("accessiter", ObjList::new(&[iter])),

        (P::SafeLock, E::Acquire { lock, thread }) => ("acquire", ObjList::new(&[lock, thread])),
        (P::SafeLock, E::Release { lock, thread }) => ("release", ObjList::new(&[lock, thread])),
        (P::SafeLock, E::Begin { thread }) => ("begin", ObjList::new(&[thread])),
        (P::SafeLock, E::End { thread }) => ("end", ObjList::new(&[thread])),

        (P::HashSet, E::Add { set, obj }) => ("add", ObjList::new(&[set, obj])),
        (P::HashSet, E::Mutate { obj }) => ("mutate", ObjList::new(&[obj])),
        (P::HashSet, E::Find { set, obj }) => ("find", ObjList::new(&[set, obj])),

        (P::SafeEnum, E::CreateEnum { vec, en }) => ("createenum", ObjList::new(&[vec, en])),
        (P::SafeEnum, E::ModifyVec { vec }) => ("modify", ObjList::new(&[vec])),
        (P::SafeEnum, E::NextElem { en }) => ("nextelem", ObjList::new(&[en])),

        (P::SafeFile, E::Open { file }) => ("open", ObjList::new(&[file])),
        (P::SafeFile, E::WriteFile { file }) => ("write", ObjList::new(&[file])),
        (P::SafeFile, E::Close { file }) => ("close", ObjList::new(&[file])),

        (P::SafeFileWriter, E::OpenWriter { w }) => ("openwriter", ObjList::new(&[w])),
        (P::SafeFileWriter, E::WriteChar { w }) => ("writechar", ObjList::new(&[w])),
        (P::SafeFileWriter, E::CloseWriter { w }) => ("closewriter", ObjList::new(&[w])),

        _ => return None,
    };
    Some((name, objs))
}

/// Consumers of workload event streams.
pub trait EventSink {
    /// Observes one program event. `heap` is the program's heap at the
    /// moment of the event (objects in the event are alive).
    fn emit(&mut self, heap: &rv_heap::Heap, event: &SimEvent);

    /// Called once when the simulated program exits (after its final
    /// collection). Monitors typically snapshot their statistics here; no
    /// further events will arrive.
    fn at_exit(&mut self, heap: &rv_heap::Heap) {
        let _ = heap;
    }
}

/// A sink that ignores everything — the *unmonitored* run used as the
/// overhead baseline.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&mut self, _heap: &rv_heap::Heap, _event: &SimEvent) {}
}

/// A sink that counts events (sanity checks and Fig. 10's E column when no
/// monitor is attached).
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingSink {
    /// Total events observed.
    pub events: u64,
}

impl EventSink for CountingSink {
    fn emit(&mut self, _heap: &rv_heap::Heap, _event: &SimEvent) {
        self.events += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(i: u32) -> ObjId {
        ObjId::from_bits((u64::from(i) << 32) | 1)
    }

    #[test]
    fn projections_cover_every_property() {
        let iter = obj(1);
        let coll = obj(2);
        let e = SimEvent::CreateIter { coll, iter };
        let (name, objs) = project(&e, Property::UnsafeIter).unwrap();
        assert_eq!(name, "create");
        assert_eq!(objs.as_slice(), &[coll, iter]);
        // UnsafeMapIter sees the same event as createiter.
        let (name, _) = project(&e, Property::UnsafeMapIter).unwrap();
        assert_eq!(name, "createiter");
        // HasNext does not observe iterator creation.
        assert!(project(&e, Property::HasNext).is_none());
    }

    #[test]
    fn projected_names_exist_in_the_specs() {
        // Every projected name must be a declared event of its property,
        // with a matching parameter count.
        let all_events = |iter: ObjId, coll: ObjId, map: ObjId| {
            vec![
                SimEvent::HasNextTrue { iter },
                SimEvent::HasNextFalse { iter },
                SimEvent::Next { iter },
                SimEvent::CreateIter { coll, iter },
                SimEvent::UpdateColl { coll },
                SimEvent::CreateMapColl { map, coll },
                SimEvent::UpdateMap { map },
                SimEvent::SyncColl { coll },
                SimEvent::SyncMap { map },
                SimEvent::SyncCreateIter { coll, iter },
                SimEvent::AsyncCreateIter { coll, iter },
                SimEvent::AccessIter { iter },
                SimEvent::Acquire { lock: coll, thread: iter },
                SimEvent::Release { lock: coll, thread: iter },
                SimEvent::Begin { thread: iter },
                SimEvent::End { thread: iter },
                SimEvent::Add { set: coll, obj: iter },
                SimEvent::Mutate { obj: iter },
                SimEvent::Find { set: coll, obj: iter },
                SimEvent::Open { file: coll },
                SimEvent::WriteFile { file: coll },
                SimEvent::Close { file: coll },
                SimEvent::CreateEnum { vec: coll, en: iter },
                SimEvent::ModifyVec { vec: coll },
                SimEvent::NextElem { en: iter },
                SimEvent::OpenWriter { w: coll },
                SimEvent::WriteChar { w: coll },
                SimEvent::CloseWriter { w: coll },
            ]
        };
        for p in Property::ALL {
            let spec = rv_props::compiled(p).unwrap();
            let mut observed = 0;
            for ev in all_events(obj(1), obj(2), obj(3)) {
                if let Some((name, objs)) = project(&ev, p) {
                    observed += 1;
                    let id = spec
                        .alphabet
                        .lookup(name)
                        .unwrap_or_else(|| panic!("{p:?}: unknown event `{name}`"));
                    assert_eq!(
                        spec.event_params[id.as_usize()].len(),
                        objs.as_slice().len(),
                        "{p:?}/{name}: parameter count mismatch"
                    );
                }
            }
            assert!(observed >= 3, "{p:?} observes only {observed} events");
        }
    }

    #[test]
    fn counting_sink_counts() {
        let heap = rv_heap::Heap::new(rv_heap::HeapConfig::manual());
        let mut sink = CountingSink::default();
        sink.emit(&heap, &SimEvent::Mutate { obj: obj(1) });
        sink.emit(&heap, &SimEvent::Mutate { obj: obj(1) });
        assert_eq!(sink.events, 2);
    }
}
