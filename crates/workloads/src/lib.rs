//! Simulated DaCapo-like workloads for the PLDI'11 RV reproduction.
//!
//! The paper evaluates on DaCapo 9.12 — real Java programs instrumented
//! with AspectJ. This crate provides the closest synthetic equivalent: a
//! simulated collections framework ([`framework`]) over the [`rv_heap`]
//! managed heap, and fifteen workload generators ([`profile::Profile`]),
//! one per DaCapo benchmark, each tuned to that benchmark's published
//! monitoring statistics (paper Figure 10): event volumes, monitor
//! counts, collection/iterator lifetime skew, and out-of-scope iterator
//! traffic.
//!
//! Workloads emit [`events::SimEvent`]s into an [`events::EventSink`];
//! [`events::project`] maps each program event onto a property's alphabet
//! (the role AspectJ pointcuts play in the paper). Running with
//! [`events::NullSink`] gives the *unmonitored* baseline for overhead
//! measurements.
//!
//! # Example
//!
//! ```
//! use rv_workloads::events::CountingSink;
//! use rv_workloads::profile::Profile;
//! use rv_workloads::runner::run;
//!
//! let mut sink = CountingSink::default();
//! let report = run(&Profile::avrora(), 0.1, &mut sink);
//! assert!(sink.events > 0);
//! assert_eq!(report.heap.live, 0);
//! ```

pub mod events;
pub mod framework;
pub mod profile;
pub mod rng;
pub mod runner;

pub use crate::events::{project, CountingSink, EventSink, NullSink, ObjList, SimEvent};
pub use crate::profile::Profile;
pub use crate::rng::SmallRng;
pub use crate::runner::{run, WorkloadReport};
