//! Workload profiles: one per DaCapo benchmark, tuned to the monitoring
//! statistics the paper reports in Figure 10.
//!
//! The goal is not to re-implement bloat or pmd, but to reproduce the
//! *monitoring-relevant* behaviour each benchmark exhibits: how many
//! collections and iterators exist, how long collections outlive their
//! iterators, how often collections are updated between and during
//! iterations, and how much iterator traffic happens outside the
//! instrumentation's view. Each field cites the Fig. 10 signal it models.
//! Counts are stated at unit scale ≈ (paper count / 1000) and multiplied
//! by the runner's `scale`.

/// A synthetic benchmark profile.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Profile {
    /// Benchmark name (DaCapo's).
    pub name: &'static str,
    /// Deterministic RNG seed.
    pub seed: u64,
    /// Outer rounds (program phases).
    pub rounds: u32,
    /// Collections created per round.
    pub colls_per_round: u32,
    /// Fraction of collections that are map key/value views
    /// (drives UNSAFEMAPITER / UNSAFESYNCMAP traffic).
    pub map_fraction: f64,
    /// Fraction of collections/maps wrapped as synchronized.
    pub sync_fraction: f64,
    /// Average iterators created per collection.
    pub iters_per_coll: f64,
    /// Average `next()` calls per iterator.
    pub nexts_per_iter: f64,
    /// Probability an iteration runs without `hasNext()` guards.
    pub skip_hasnext_prob: f64,
    /// Probability of a structural update *during* an iteration that then
    /// continues — the UNSAFEITER violation shape.
    pub concurrent_update_prob: f64,
    /// Probability of an update between iterator creations.
    pub update_between_prob: f64,
    /// Probability a synchronized iterator is created/accessed without
    /// the lock (UNSAFESYNCCOLL/-MAP violation shapes).
    pub async_access_prob: f64,
    /// Rounds a collection stays strongly reachable after its creating
    /// round — the "collections outlive iterators" skew (bloat keeps
    /// 19 605 collections coexisting at peak).
    pub coll_linger_rounds: u32,
    /// Iterations performed each round on *lingering* collections: hot
    /// long-lived collections are re-iterated again and again, so every
    /// dispatch walks their per-collection monitor sets — where retained
    /// dead-iterator monitors hurt JavaMOP and coenable GC pays off.
    pub reiterations_per_round: u32,
    /// Fraction of iterators allocated outside the instrumentation scope:
    /// their `next`/`hasNext` are observed but their creation is not
    /// (sunflow: 1.3M UNSAFEITER events but 2 monitors).
    pub unobserved_iter_fraction: f64,
    /// Lock acquire/release pairs per round (SAFELOCK traffic).
    pub lock_ops_per_round: u32,
    /// File/hash-set/enumeration operations per round (the low-overhead
    /// properties).
    pub misc_ops_per_round: u32,
    /// Automatic heap-GC period, in allocations.
    pub gc_period: usize,
    /// Units of real computation the program performs per collection
    /// operation (iteration step, update, lock/misc op). This is the
    /// denominator of the overhead measurements: benchmarks the paper
    /// reports as low-overhead do much work per monitored event.
    pub work_per_op: u32,
}

impl Profile {
    /// All fifteen DaCapo-like profiles, in the paper's table order.
    #[must_use]
    pub fn dacapo() -> Vec<Profile> {
        vec![
            Self::bloat(),
            Self::jython(),
            Self::avrora(),
            Self::batik(),
            Self::eclipse(),
            Self::fop(),
            Self::h2(),
            Self::luindex(),
            Self::lusearch(),
            Self::pmd(),
            Self::sunflow(),
            Self::tomcat(),
            Self::tradebeans(),
            Self::tradesoap(),
            Self::xalan(),
        ]
    }

    /// Looks up a profile by benchmark name.
    #[must_use]
    pub fn by_name(name: &str) -> Option<Profile> {
        Self::dacapo().into_iter().find(|p| p.name == name)
    }

    /// bloat (DaCapo 2006-10): the paper's worst case — 1.6M collections,
    /// 941K iterators, 78M `hasNext()`, collections long-lived (19 605
    /// coexisting at peak) while iterators die immediately. Fig. 10:
    /// HASNEXT E=156M M=1.9M; UNSAFEITER E=81M M=1.9M FM=1.8M.
    #[must_use]
    pub fn bloat() -> Profile {
        Profile {
            name: "bloat",
            seed: 0xb10a7,
            rounds: 40,
            colls_per_round: 40,
            map_fraction: 0.1,
            sync_fraction: 0.05,
            iters_per_coll: 0.6,
            nexts_per_iter: 80.0,
            skip_hasnext_prob: 0.02,
            concurrent_update_prob: 0.002,
            update_between_prob: 0.6,
            async_access_prob: 0.02,
            coll_linger_rounds: 20,
            reiterations_per_round: 48,
            unobserved_iter_fraction: 0.0,
            lock_ops_per_round: 4,
            misc_ops_per_round: 4,
            gc_period: 512,
            work_per_op: 48,
        }
    }

    /// jython (DaCapo 2006-10): almost no iterator traffic reaches the
    /// monitors (Fig. 10: HASNEXT E=106), but UNSAFEMAPITER sees 179K
    /// events and 101K monitors — dictionary views dominate.
    #[must_use]
    pub fn jython() -> Profile {
        Profile {
            name: "jython",
            seed: 0x1702,
            rounds: 10,
            colls_per_round: 10,
            map_fraction: 0.95,
            sync_fraction: 0.0,
            iters_per_coll: 0.02,
            nexts_per_iter: 1.0,
            skip_hasnext_prob: 0.0,
            concurrent_update_prob: 0.0,
            update_between_prob: 0.9,
            async_access_prob: 0.0,
            coll_linger_rounds: 2,
            reiterations_per_round: 0,
            unobserved_iter_fraction: 0.0,
            lock_ops_per_round: 2,
            misc_ops_per_round: 2,
            gc_period: 2048,
            work_per_op: 160,
        }
    }

    /// avrora: very many short iterations — 909K monitors from 1.5M
    /// events, ≈ 1.3 `hasNext()` and 0.4 `next()` per iterator.
    #[must_use]
    pub fn avrora() -> Profile {
        Profile {
            name: "avrora",
            seed: 0xa7a,
            rounds: 30,
            colls_per_round: 10,
            map_fraction: 0.3,
            sync_fraction: 0.1,
            iters_per_coll: 3.0,
            nexts_per_iter: 0.4,
            skip_hasnext_prob: 0.02,
            concurrent_update_prob: 0.001,
            update_between_prob: 0.4,
            async_access_prob: 0.05,
            coll_linger_rounds: 8,
            reiterations_per_round: 12,
            unobserved_iter_fraction: 0.0,
            lock_ops_per_round: 6,
            misc_ops_per_round: 4,
            gc_period: 1024,
            work_per_op: 64,
        }
    }

    /// batik: modest traffic (HASNEXT E=49K, M=24K), short-lived.
    #[must_use]
    pub fn batik() -> Profile {
        Profile {
            name: "batik",
            seed: 0xba7,
            rounds: 8,
            colls_per_round: 8,
            map_fraction: 0.3,
            sync_fraction: 0.2,
            iters_per_coll: 0.4,
            nexts_per_iter: 1.0,
            skip_hasnext_prob: 0.01,
            concurrent_update_prob: 0.0,
            update_between_prob: 0.3,
            async_access_prob: 0.05,
            coll_linger_rounds: 2,
            reiterations_per_round: 2,
            unobserved_iter_fraction: 0.0,
            lock_ops_per_round: 2,
            misc_ops_per_round: 3,
            gc_period: 2048,
            work_per_op: 200,
        }
    }

    /// eclipse: few monitors (7.6K) but each iterator is walked far
    /// (226K events), mostly harmless.
    #[must_use]
    pub fn eclipse() -> Profile {
        Profile {
            name: "eclipse",
            seed: 0xec11,
            rounds: 10,
            colls_per_round: 8,
            map_fraction: 0.4,
            sync_fraction: 0.1,
            iters_per_coll: 0.1,
            nexts_per_iter: 28.0,
            skip_hasnext_prob: 0.0,
            concurrent_update_prob: 0.0,
            update_between_prob: 0.2,
            async_access_prob: 0.02,
            coll_linger_rounds: 4,
            reiterations_per_round: 2,
            unobserved_iter_fraction: 0.0,
            lock_ops_per_round: 4,
            misc_ops_per_round: 4,
            gc_period: 2048,
            work_per_op: 400,
        }
    }

    /// fop: 1.0M events over 184K monitors; DaCapo 9.12 instruments the
    /// supplementary libraries, so traffic is heavier than 2006-10.
    #[must_use]
    pub fn fop() -> Profile {
        Profile {
            name: "fop",
            seed: 0xf0b,
            rounds: 20,
            colls_per_round: 10,
            map_fraction: 0.3,
            sync_fraction: 0.2,
            iters_per_coll: 0.9,
            nexts_per_iter: 4.5,
            skip_hasnext_prob: 0.02,
            concurrent_update_prob: 0.0,
            update_between_prob: 0.5,
            async_access_prob: 0.1,
            coll_linger_rounds: 6,
            reiterations_per_round: 8,
            unobserved_iter_fraction: 0.0,
            lock_ops_per_round: 4,
            misc_ops_per_round: 4,
            gc_period: 1024,
            work_per_op: 48,
        }
    }

    /// h2: huge event counts (27M) and monitor counts (6.5M), but short
    /// monitor lifetimes keep the overhead low — collections die with
    /// their iterators.
    #[must_use]
    pub fn h2() -> Profile {
        Profile {
            name: "h2",
            seed: 0x42,
            rounds: 80,
            colls_per_round: 40,
            map_fraction: 0.2,
            sync_fraction: 0.1,
            iters_per_coll: 1.0,
            nexts_per_iter: 3.0,
            skip_hasnext_prob: 0.01,
            concurrent_update_prob: 0.0,
            update_between_prob: 0.3,
            async_access_prob: 0.02,
            coll_linger_rounds: 0,
            reiterations_per_round: 0,
            unobserved_iter_fraction: 0.0,
            lock_ops_per_round: 8,
            misc_ops_per_round: 6,
            gc_period: 1024,
            work_per_op: 160,
        }
    }

    /// luindex: almost idle (E=371).
    #[must_use]
    pub fn luindex() -> Profile {
        Profile {
            name: "luindex",
            seed: 0x10,
            rounds: 4,
            colls_per_round: 3,
            map_fraction: 0.3,
            sync_fraction: 0.1,
            iters_per_coll: 0.5,
            nexts_per_iter: 2.0,
            skip_hasnext_prob: 0.0,
            concurrent_update_prob: 0.0,
            update_between_prob: 0.2,
            async_access_prob: 0.0,
            coll_linger_rounds: 1,
            reiterations_per_round: 1,
            unobserved_iter_fraction: 0.0,
            lock_ops_per_round: 2,
            misc_ops_per_round: 3,
            gc_period: 4096,
            work_per_op: 400,
        }
    }

    /// lusearch: light traffic (E=1.4K) with some UNSAFEITER-visible
    /// events (748K in the paper's 9.12 run, mostly updates).
    #[must_use]
    pub fn lusearch() -> Profile {
        Profile {
            name: "lusearch",
            seed: 0x105,
            rounds: 6,
            colls_per_round: 5,
            map_fraction: 0.2,
            sync_fraction: 0.1,
            iters_per_coll: 0.3,
            nexts_per_iter: 1.5,
            skip_hasnext_prob: 0.0,
            concurrent_update_prob: 0.0,
            update_between_prob: 0.8,
            async_access_prob: 0.02,
            coll_linger_rounds: 1,
            reiterations_per_round: 1,
            unobserved_iter_fraction: 0.0,
            lock_ops_per_round: 4,
            misc_ops_per_round: 4,
            gc_period: 2048,
            work_per_op: 300,
        }
    }

    /// pmd: the third hot benchmark — 8.3M events, 789K monitors, heavy
    /// updates (UNSAFEITER FM=473K CM=382K), long-ish collection lives.
    #[must_use]
    pub fn pmd() -> Profile {
        Profile {
            name: "pmd",
            seed: 0xbd,
            rounds: 40,
            colls_per_round: 16,
            map_fraction: 0.25,
            sync_fraction: 0.1,
            iters_per_coll: 1.2,
            nexts_per_iter: 4.5,
            skip_hasnext_prob: 0.02,
            concurrent_update_prob: 0.001,
            update_between_prob: 0.7,
            async_access_prob: 0.05,
            coll_linger_rounds: 12,
            reiterations_per_round: 20,
            unobserved_iter_fraction: 0.0,
            lock_ops_per_round: 4,
            misc_ops_per_round: 4,
            gc_period: 512,
            work_per_op: 64,
        }
    }

    /// sunflow: millions of traversal events on iterators whose creation
    /// the instrumentation never sees — HASNEXT creates 101K monitors but
    /// UNSAFEITER creates 2.
    #[must_use]
    pub fn sunflow() -> Profile {
        Profile {
            name: "sunflow",
            seed: 0x50f,
            rounds: 10,
            colls_per_round: 2,
            map_fraction: 0.0,
            sync_fraction: 0.0,
            iters_per_coll: 5.0,
            nexts_per_iter: 26.0,
            skip_hasnext_prob: 0.0,
            concurrent_update_prob: 0.0,
            update_between_prob: 0.0,
            async_access_prob: 0.0,
            coll_linger_rounds: 2,
            reiterations_per_round: 4,
            unobserved_iter_fraction: 0.98,
            lock_ops_per_round: 2,
            misc_ops_per_round: 2,
            gc_period: 1024,
            work_per_op: 64,
        }
    }

    /// tomcat: negligible monitored traffic (E=25).
    #[must_use]
    pub fn tomcat() -> Profile {
        Profile::tiny("tomcat", 0x70c, 3)
    }

    /// tradebeans: negligible monitored traffic (E=11).
    #[must_use]
    pub fn tradebeans() -> Profile {
        Profile::tiny("tradebeans", 0x7b, 2)
    }

    /// tradesoap: negligible monitored traffic (E=11).
    #[must_use]
    pub fn tradesoap() -> Profile {
        Profile::tiny("tradesoap", 0x75, 2)
    }

    /// xalan: map-view churn without iteration — UNSAFEMAPITER sees 119K
    /// events and 20K monitors while HASNEXT sees 11.
    #[must_use]
    pub fn xalan() -> Profile {
        Profile {
            name: "xalan",
            seed: 0xa1a,
            rounds: 12,
            colls_per_round: 10,
            map_fraction: 1.0,
            sync_fraction: 0.05,
            iters_per_coll: 0.01,
            nexts_per_iter: 1.0,
            skip_hasnext_prob: 0.0,
            concurrent_update_prob: 0.0,
            update_between_prob: 0.95,
            async_access_prob: 0.02,
            coll_linger_rounds: 3,
            reiterations_per_round: 0,
            unobserved_iter_fraction: 0.0,
            lock_ops_per_round: 2,
            misc_ops_per_round: 3,
            gc_period: 2048,
            work_per_op: 120,
        }
    }

    fn tiny(name: &'static str, seed: u64, rounds: u32) -> Profile {
        Profile {
            name,
            seed,
            rounds,
            colls_per_round: 2,
            map_fraction: 0.3,
            sync_fraction: 0.1,
            iters_per_coll: 0.3,
            nexts_per_iter: 1.0,
            skip_hasnext_prob: 0.0,
            concurrent_update_prob: 0.0,
            update_between_prob: 0.2,
            async_access_prob: 0.02,
            coll_linger_rounds: 1,
            reiterations_per_round: 0,
            unobserved_iter_fraction: 0.0,
            lock_ops_per_round: 2,
            misc_ops_per_round: 2,
            gc_period: 4096,
            work_per_op: 256,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_profiles_with_unique_names() {
        let all = Profile::dacapo();
        assert_eq!(all.len(), 15);
        let mut names: Vec<&str> = all.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 15);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(Profile::by_name("bloat").unwrap().name, "bloat");
        assert!(Profile::by_name("nope").is_none());
    }

    #[test]
    fn probabilities_are_valid() {
        for p in Profile::dacapo() {
            for v in [
                p.map_fraction,
                p.sync_fraction,
                p.skip_hasnext_prob,
                p.concurrent_update_prob,
                p.update_between_prob,
                p.async_access_prob,
                p.unobserved_iter_fraction,
            ] {
                assert!((0.0..=1.0).contains(&v), "{}: {v}", p.name);
            }
            assert!(p.rounds > 0 && p.gc_period > 0, "{}", p.name);
        }
    }
}
