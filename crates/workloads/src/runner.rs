//! The workload runner: executes a [`Profile`] against the simulated
//! collections framework, emitting events into a sink.
//!
//! The runner owns the heap (the "JVM" of the simulated program) and
//! drives the object lifetimes: collections are pinned for
//! `coll_linger_rounds` rounds (long-lived program state), iterators live
//! inside per-iteration frames and die at the next collection — the
//! asymmetry the paper's GC technique exploits.

use std::collections::VecDeque;

use rv_heap::{Heap, HeapConfig, HeapStats, ObjId};

use crate::events::{EventSink, SimEvent};
use crate::framework::{Classes, SimCollection, SimMap};
use crate::profile::Profile;
use crate::rng::SmallRng;

/// Summary of one workload run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkloadReport {
    /// Heap statistics of the simulated program.
    pub heap: HeapStats,
    /// Rounds actually executed (after scaling).
    pub rounds: u32,
    /// Accumulator of the program's own computation (prevents the
    /// busy-work from being optimized away; see `Profile::work_per_op`).
    pub work_checksum: u64,
}

/// Runs `profile` at the given `scale`, feeding every observable event to
/// `sink`. Deterministic for a fixed `(profile, scale)`.
///
/// `scale` multiplies the profile's round count; 1.0 reproduces the unit
/// scale documented in [`Profile`] (≈ paper counts / 1000).
pub fn run<S: EventSink>(profile: &Profile, scale: f64, sink: &mut S) -> WorkloadReport {
    let mut heap = Heap::new(HeapConfig::auto(profile.gc_period));
    let classes = Classes::register(&mut heap);
    let mut rng = SmallRng::seed_from_u64(profile.seed);
    let rounds = ((f64::from(profile.rounds) * scale).ceil() as u32).max(1);
    let mut work = Work { acc: profile.seed, per_op: profile.work_per_op };

    let program = heap.enter_frame();
    // Long-lived program fixtures.
    let lock = heap.alloc(classes.lock);
    heap.pin(lock);
    let threads: Vec<ObjId> = (0..2)
        .map(|_| {
            let t = heap.alloc(classes.thread);
            heap.pin(t);
            t
        })
        .collect();

    // Collections pinned until their linger round expires.
    let mut linger: VecDeque<(u32, SimCollection)> = VecDeque::new();

    for round in 0..rounds {
        while let Some(&(expiry, coll)) = linger.front() {
            if expiry > round {
                break;
            }
            heap.unpin(coll.id);
            linger.pop_front();
        }

        for _ in 0..profile.colls_per_round {
            run_collection_lifecycle(
                profile,
                round,
                &mut heap,
                &classes,
                &mut rng,
                sink,
                &mut linger,
                &mut work,
            );
        }
        // Re-iterate hot lingering collections: their monitor sets keep
        // receiving traffic long after earlier iterators died.
        if !linger.is_empty() {
            for _ in 0..profile.reiterations_per_round {
                let idx = rng.random_range(linger.len());
                let coll = linger[idx].1;
                let frame = heap.enter_frame();
                run_iteration(profile, &mut heap, &classes, &mut rng, sink, &coll, &mut work);
                heap.exit_frame(frame);
            }
        }
        run_lock_activity(profile, &mut heap, &mut rng, sink, lock, &threads, &mut work);
        run_misc_activity(profile, &mut heap, &classes, &mut rng, sink, &mut work);
    }

    // Program exit: release everything and collect.
    while let Some((_, coll)) = linger.pop_front() {
        heap.unpin(coll.id);
    }
    heap.unpin(lock);
    for t in threads {
        heap.unpin(t);
    }
    heap.exit_frame(program);
    heap.collect();
    sink.at_exit(&heap);
    WorkloadReport { heap: heap.stats(), rounds, work_checksum: work.acc }
}

/// The simulated program's own computation: a small integer-mixing loop
/// per collection operation, sized by `Profile::work_per_op`. This is what
/// the monitoring overhead is measured *against* — DaCapo programs spend
/// most of their time computing, not iterating.
struct Work {
    acc: u64,
    per_op: u32,
}

impl Work {
    #[inline]
    fn op(&mut self) {
        let mut x = self.acc | 1;
        for _ in 0..self.per_op {
            // xorshift64* round — cheap, unpredictable, not optimizable
            // away since `acc` is returned in the report.
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            x = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
        }
        self.acc = self.acc.wrapping_add(x);
    }
}

/// One collection's life: creation (possibly as a map view, possibly
/// synchronized), iterations with configurable violation shapes, then
/// lingering until its pin expires.
#[allow(clippy::too_many_arguments)]
fn run_collection_lifecycle<S: EventSink>(
    profile: &Profile,
    round: u32,
    heap: &mut Heap,
    classes: &Classes,
    rng: &mut SmallRng,
    sink: &mut S,
    linger: &mut VecDeque<(u32, SimCollection)>,
    work: &mut Work,
) {
    work.op();
    let frame = heap.enter_frame();
    let mut coll = if rng.random_bool(profile.map_fraction) {
        let mut map = SimMap::new(heap, classes);
        if rng.random_bool(profile.sync_fraction) {
            map.synchronize(heap, sink);
        }
        map.view(heap, classes, sink)
    } else {
        let mut c = SimCollection::new(heap, classes);
        if rng.random_bool(profile.sync_fraction) {
            c.synchronize(heap, sink);
        }
        c
    };
    // Map views inherit the map's synchronization; plain collections may
    // also be wrapped after the fact.
    if !coll.synchronized && coll.backing_map.is_none() && rng.random_bool(profile.sync_fraction) {
        coll.synchronize(heap, sink);
    }
    heap.pin(coll.id);
    linger.push_back((round + profile.coll_linger_rounds + 1, coll));

    let iters = sample(rng, profile.iters_per_coll);
    for _ in 0..iters {
        if rng.random_bool(profile.update_between_prob) {
            work.op();
            coll.update(heap, sink);
        }
        run_iteration(profile, heap, classes, rng, sink, &coll, work);
    }
    // Collections with no iterations can still be updated (xalan's
    // map-churn pattern).
    if iters == 0 && rng.random_bool(profile.update_between_prob) {
        coll.update(heap, sink);
    }
    heap.exit_frame(frame);
}

#[allow(clippy::too_many_arguments)]
fn run_iteration<S: EventSink>(
    profile: &Profile,
    heap: &mut Heap,
    classes: &Classes,
    rng: &mut SmallRng,
    sink: &mut S,
    coll: &SimCollection,
    work: &mut Work,
) {
    let frame = heap.enter_frame();
    let holding_lock = !rng.random_bool(profile.async_access_prob);
    let it = if rng.random_bool(profile.unobserved_iter_fraction) {
        coll.unobserved_iterator(heap, classes)
    } else {
        coll.iterator(heap, classes, sink, holding_lock)
    };
    let guarded = !rng.random_bool(profile.skip_hasnext_prob);
    let n = sample(rng, profile.nexts_per_iter);
    for _ in 0..n {
        // The loop body: the program's actual per-element computation.
        work.op();
        if guarded {
            it.has_next(heap, sink, true);
        }
        it.next(heap, sink, holding_lock);
        if rng.random_bool(profile.concurrent_update_prob) {
            // Structural update mid-iteration; the loop continues, so the
            // following next() completes the UNSAFEITER pattern.
            coll.update(heap, sink);
        }
    }
    if guarded {
        it.has_next(heap, sink, false);
    }
    heap.exit_frame(frame);
}

#[allow(clippy::too_many_arguments)]
fn run_lock_activity<S: EventSink>(
    profile: &Profile,
    heap: &mut Heap,
    rng: &mut SmallRng,
    sink: &mut S,
    lock: ObjId,
    threads: &[ObjId],
    work: &mut Work,
) {
    for k in 0..profile.lock_ops_per_round {
        let thread = threads[(k as usize) % threads.len()];
        work.op();
        sink.emit(heap, &SimEvent::Begin { thread });
        sink.emit(heap, &SimEvent::Acquire { lock, thread });
        if rng.random_bool(0.02) {
            // Forgotten release: the method ends with the lock held — the
            // SAFELOCK violation (Figure 4's @fail).
            sink.emit(heap, &SimEvent::End { thread });
            continue;
        }
        sink.emit(heap, &SimEvent::Release { lock, thread });
        sink.emit(heap, &SimEvent::End { thread });
    }
}

/// Traffic for the four low-overhead properties (§5.1: "none of these
/// properties produce overheads above 5%").
fn run_misc_activity<S: EventSink>(
    profile: &Profile,
    heap: &mut Heap,
    classes: &Classes,
    rng: &mut SmallRng,
    sink: &mut S,
    work: &mut Work,
) {
    for _ in 0..profile.misc_ops_per_round {
        work.op();
        let frame = heap.enter_frame();
        // SAFEFILE: open–write–close, occasionally sloppy.
        let file = heap.alloc(classes.file);
        sink.emit(heap, &SimEvent::Open { file });
        sink.emit(heap, &SimEvent::WriteFile { file });
        if rng.random_bool(0.98) {
            sink.emit(heap, &SimEvent::Close { file });
        }
        // SAFEFILEWRITER.
        let w = heap.alloc(classes.file);
        sink.emit(heap, &SimEvent::OpenWriter { w });
        sink.emit(heap, &SimEvent::WriteChar { w });
        sink.emit(heap, &SimEvent::CloseWriter { w });
        // HASHSET: add, sometimes mutate (the violation), then find.
        let set = heap.alloc(classes.collection);
        let obj = heap.alloc(classes.object);
        sink.emit(heap, &SimEvent::Add { set, obj });
        if rng.random_bool(0.05) {
            sink.emit(heap, &SimEvent::Mutate { obj });
        }
        sink.emit(heap, &SimEvent::Find { set, obj });
        // SAFEENUM: enumerate, occasionally modify mid-enumeration.
        let vec = heap.alloc(classes.collection);
        let en = heap.alloc(classes.iterator);
        heap.add_edge(en, vec);
        sink.emit(heap, &SimEvent::CreateEnum { vec, en });
        sink.emit(heap, &SimEvent::NextElem { en });
        if rng.random_bool(0.03) {
            sink.emit(heap, &SimEvent::ModifyVec { vec });
            sink.emit(heap, &SimEvent::NextElem { en });
        }
        heap.exit_frame(frame);
    }
}

/// Samples a count with mean `avg`: a uniform factor in `[0.5, 1.5)` for
/// larger means, Bernoulli for fractional ones.
fn sample(rng: &mut SmallRng, avg: f64) -> u32 {
    if avg <= 0.0 {
        return 0;
    }
    if avg < 1.0 {
        return u32::from(rng.random_bool(avg));
    }
    let factor = 0.5 + rng.random_f64();
    (avg * factor).round() as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::CountingSink;

    #[test]
    fn runs_are_deterministic() {
        let profile = Profile::avrora();
        let mut a = CountingSink::default();
        let mut b = CountingSink::default();
        let mut ra = run(&profile, 0.5, &mut a);
        let mut rb = run(&profile, 0.5, &mut b);
        assert_eq!(a.events, b.events);
        // Wall-clock GC pause time is measurement, not behavior — two
        // identical runs still read different clocks.
        ra.heap.gc_pause_ns = 0;
        rb.heap.gc_pause_ns = 0;
        assert_eq!(ra, rb);
        assert!(a.events > 0);
    }

    #[test]
    fn scale_scales_the_event_volume() {
        let profile = Profile::pmd();
        let mut small = CountingSink::default();
        let mut large = CountingSink::default();
        run(&profile, 0.25, &mut small);
        run(&profile, 1.0, &mut large);
        assert!(
            large.events > small.events * 2,
            "scale 1.0 ({}) should far exceed scale 0.25 ({})",
            large.events,
            small.events
        );
    }

    #[test]
    fn bloat_produces_iterator_heavy_traffic() {
        // The unit-scale bloat profile targets Fig. 10 / 1000: roughly
        // 150K HASNEXT-visible events.
        #[derive(Default)]
        struct ByKind {
            hasnext: u64,
            next: u64,
            create: u64,
            update: u64,
        }
        impl EventSink for ByKind {
            fn emit(&mut self, _h: &Heap, e: &SimEvent) {
                match e {
                    SimEvent::HasNextTrue { .. } | SimEvent::HasNextFalse { .. } => {
                        self.hasnext += 1;
                    }
                    SimEvent::Next { .. } => self.next += 1,
                    SimEvent::CreateIter { .. } => self.create += 1,
                    SimEvent::UpdateColl { .. } => self.update += 1,
                    _ => {}
                }
            }
        }
        let mut sink = ByKind::default();
        run(&Profile::bloat(), 1.0, &mut sink);
        let e_hasnext = sink.hasnext + sink.next;
        assert!(
            (100_000..700_000).contains(&e_hasnext),
            "bloat HASNEXT-visible events: {e_hasnext}"
        );
        assert!(sink.next / sink.create.max(1) > 30, "long iterations");
    }

    #[test]
    fn sunflow_iterators_are_mostly_unobserved() {
        #[derive(Default)]
        struct ByKind {
            next: u64,
            create: u64,
        }
        impl EventSink for ByKind {
            fn emit(&mut self, _h: &Heap, e: &SimEvent) {
                match e {
                    SimEvent::Next { .. } => self.next += 1,
                    SimEvent::CreateIter { .. } => self.create += 1,
                    _ => {}
                }
            }
        }
        let mut sink = ByKind::default();
        run(&Profile::sunflow(), 1.0, &mut sink);
        assert!(sink.next > 100);
        assert!(sink.create < sink.next / 20, "creates {} vs nexts {}", sink.create, sink.next);
    }

    #[test]
    fn workload_heap_reclaims_iterators() {
        let mut sink = CountingSink::default();
        let report = run(&Profile::h2(), 0.5, &mut sink);
        assert!(report.heap.collections > 0, "auto-GC ran");
        assert!(report.heap.swept > 0);
        assert_eq!(report.heap.live, 0, "everything dies at program exit");
    }
}
