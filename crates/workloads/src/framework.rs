//! The simulated collections framework: the instrumented "Java library"
//! that workload programs run against.
//!
//! Each wrapper owns a heap object and emits the events the paper's
//! AspectJ instrumentation would capture. Reference edges mirror the JDK:
//! an iterator strongly references its collection (never the reverse), a
//! map view references its map — exactly the lifetime asymmetry that makes
//! UNSAFEITER monitors leak under all-params-dead collection.

use rv_heap::{Heap, ObjId};

use crate::events::{EventSink, SimEvent};

/// Well-known class tags registered by [`Classes::register`].
#[derive(Clone, Copy, Debug)]
pub struct Classes {
    /// `java.util.Collection`.
    pub collection: rv_heap::ClassId,
    /// `java.util.Iterator`.
    pub iterator: rv_heap::ClassId,
    /// `java.util.Map`.
    pub map: rv_heap::ClassId,
    /// Miscellaneous program objects.
    pub object: rv_heap::ClassId,
    /// Locks.
    pub lock: rv_heap::ClassId,
    /// Threads.
    pub thread: rv_heap::ClassId,
    /// Files / writers.
    pub file: rv_heap::ClassId,
}

impl Classes {
    /// Registers the framework classes on a heap.
    pub fn register(heap: &mut Heap) -> Classes {
        Classes {
            collection: heap.register_class("Collection"),
            iterator: heap.register_class("Iterator"),
            map: heap.register_class("Map"),
            object: heap.register_class("Object"),
            lock: heap.register_class("Lock"),
            thread: heap.register_class("Thread"),
            file: heap.register_class("File"),
        }
    }
}

/// A simulated collection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimCollection {
    /// The heap object.
    pub id: ObjId,
    /// Whether the collection is a synchronized wrapper.
    pub synchronized: bool,
    /// The backing map, for map views.
    pub backing_map: Option<ObjId>,
}

impl SimCollection {
    /// Allocates a plain collection (rooted in the current frame).
    pub fn new(heap: &mut Heap, classes: &Classes) -> SimCollection {
        SimCollection { id: heap.alloc(classes.collection), synchronized: false, backing_map: None }
    }

    /// Wraps the collection as `Collections.synchronizedCollection(..)`,
    /// emitting the `sync` event.
    pub fn synchronize<S: EventSink>(&mut self, heap: &Heap, sink: &mut S) {
        self.synchronized = true;
        sink.emit(heap, &SimEvent::SyncColl { coll: self.id });
    }

    /// Creates an iterator over this collection.
    ///
    /// `holding_lock` matters only for synchronized collections: an
    /// unsynchronized creation emits `AsyncCreateIter` (a violation shape
    /// for UNSAFESYNCCOLL/-MAP).
    pub fn iterator<S: EventSink>(
        &self,
        heap: &mut Heap,
        classes: &Classes,
        sink: &mut S,
        holding_lock: bool,
    ) -> SimIterator {
        let iter = heap.alloc(classes.iterator);
        heap.add_edge(iter, self.id); // JDK: iterator → collection
        sink.emit(heap, &SimEvent::CreateIter { coll: self.id, iter });
        if self.synchronized {
            let ev = if holding_lock {
                SimEvent::SyncCreateIter { coll: self.id, iter }
            } else {
                SimEvent::AsyncCreateIter { coll: self.id, iter }
            };
            sink.emit(heap, &ev);
        }
        SimIterator { id: iter, synchronized: self.synchronized }
    }

    /// Iterates invisibly: allocates the iterator without emitting the
    /// creation event — modelling code paths outside the instrumentation
    /// scope (the sunflow pattern: millions of `next()` calls on monitors
    /// that were never created).
    pub fn unobserved_iterator(&self, heap: &mut Heap, classes: &Classes) -> SimIterator {
        let iter = heap.alloc(classes.iterator);
        heap.add_edge(iter, self.id);
        SimIterator { id: iter, synchronized: self.synchronized }
    }

    /// Structurally updates the collection, emitting `update` (and
    /// `updatemap` on the backing map for views).
    pub fn update<S: EventSink>(&self, heap: &Heap, sink: &mut S) {
        sink.emit(heap, &SimEvent::UpdateColl { coll: self.id });
        if let Some(map) = self.backing_map {
            sink.emit(heap, &SimEvent::UpdateMap { map });
        }
    }
}

/// A simulated map.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimMap {
    /// The heap object.
    pub id: ObjId,
    /// Whether the map is a synchronized wrapper.
    pub synchronized: bool,
}

impl SimMap {
    /// Allocates a map.
    pub fn new(heap: &mut Heap, classes: &Classes) -> SimMap {
        SimMap { id: heap.alloc(classes.map), synchronized: false }
    }

    /// Wraps as `Collections.synchronizedMap(..)`.
    pub fn synchronize<S: EventSink>(&mut self, heap: &Heap, sink: &mut S) {
        self.synchronized = true;
        sink.emit(heap, &SimEvent::SyncMap { map: self.id });
    }

    /// `map.keySet()` / `map.values()`: a view collection referencing the
    /// map.
    pub fn view<S: EventSink>(
        &self,
        heap: &mut Heap,
        classes: &Classes,
        sink: &mut S,
    ) -> SimCollection {
        let coll = heap.alloc(classes.collection);
        heap.add_edge(coll, self.id); // view → map
        sink.emit(heap, &SimEvent::CreateMapColl { map: self.id, coll });
        SimCollection { id: coll, synchronized: self.synchronized, backing_map: Some(self.id) }
    }

    /// Structurally updates the map.
    pub fn update<S: EventSink>(&self, heap: &Heap, sink: &mut S) {
        sink.emit(heap, &SimEvent::UpdateMap { map: self.id });
    }
}

/// A simulated iterator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimIterator {
    /// The heap object.
    pub id: ObjId,
    /// Whether the underlying collection is synchronized.
    pub synchronized: bool,
}

impl SimIterator {
    /// `hasNext()` with the given answer.
    pub fn has_next<S: EventSink>(&self, heap: &Heap, sink: &mut S, more: bool) {
        let ev = if more {
            SimEvent::HasNextTrue { iter: self.id }
        } else {
            SimEvent::HasNextFalse { iter: self.id }
        };
        sink.emit(heap, &ev);
    }

    /// `next()`. `holding_lock` matters only for synchronized collections.
    pub fn next<S: EventSink>(&self, heap: &Heap, sink: &mut S, holding_lock: bool) {
        sink.emit(heap, &SimEvent::Next { iter: self.id });
        if self.synchronized && !holding_lock {
            sink.emit(heap, &SimEvent::AccessIter { iter: self.id });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::CountingSink;
    use rv_heap::HeapConfig;

    #[test]
    fn iterator_keeps_collection_alive_not_vice_versa() {
        let mut heap = Heap::new(HeapConfig::manual());
        let classes = Classes::register(&mut heap);
        let mut sink = CountingSink::default();
        let outer = heap.enter_frame();
        let coll = SimCollection::new(&mut heap, &classes);
        let inner = heap.enter_frame();
        let iter = coll.iterator(&mut heap, &classes, &mut sink, false);
        heap.exit_frame(inner);
        // Iterator unrooted: dies; collection still rooted: lives.
        heap.collect();
        assert!(!heap.is_alive(iter.id));
        assert!(heap.is_alive(coll.id));
        heap.exit_frame(outer);
        heap.collect();
        assert!(!heap.is_alive(coll.id));
    }

    #[test]
    fn map_views_reference_the_map() {
        let mut heap = Heap::new(HeapConfig::manual());
        let classes = Classes::register(&mut heap);
        let mut sink = CountingSink::default();
        let outer = heap.enter_frame();
        let map = SimMap::new(&mut heap, &classes);
        let inner = heap.enter_frame();
        let view = map.view(&mut heap, &classes, &mut sink);
        let it = view.iterator(&mut heap, &classes, &mut sink, false);
        // The chain iterator → view → map keeps everything alive. Re-root
        // the iterator in the outer frame (it is still alive until a
        // collection runs).
        heap.exit_frame(inner);
        heap.push_root(it.id);
        let _ = outer;
        heap.collect();
        assert!(heap.is_alive(map.id));
        assert!(heap.is_alive(view.id));
    }

    #[test]
    fn synchronized_collection_emits_sync_events() {
        let mut heap = Heap::new(HeapConfig::manual());
        let classes = Classes::register(&mut heap);
        let mut events: Vec<SimEvent> = Vec::new();
        struct Rec<'a>(&'a mut Vec<SimEvent>);
        impl EventSink for Rec<'_> {
            fn emit(&mut self, _h: &Heap, e: &SimEvent) {
                self.0.push(*e);
            }
        }
        let _f = heap.enter_frame();
        let mut coll = SimCollection::new(&mut heap, &classes);
        {
            let mut sink = Rec(&mut events);
            coll.synchronize(&heap, &mut sink);
            let it = coll.iterator(&mut heap, &classes, &mut sink, false);
            it.next(&heap, &mut sink, false);
        }
        assert!(matches!(events[0], SimEvent::SyncColl { .. }));
        assert!(matches!(events[1], SimEvent::CreateIter { .. }));
        assert!(matches!(events[2], SimEvent::AsyncCreateIter { .. }));
        assert!(matches!(events[4], SimEvent::AccessIter { .. }));
    }

    #[test]
    fn unobserved_iterators_emit_no_creation() {
        let mut heap = Heap::new(HeapConfig::manual());
        let classes = Classes::register(&mut heap);
        let mut sink = CountingSink::default();
        let _f = heap.enter_frame();
        let coll = SimCollection::new(&mut heap, &classes);
        let it = coll.unobserved_iterator(&mut heap, &classes);
        assert_eq!(sink.events, 0);
        it.next(&heap, &mut sink, true);
        assert_eq!(sink.events, 1);
    }
}
