//! A small, dependency-free pseudo-random number generator.
//!
//! The workload generators need reproducible randomness, not
//! cryptographic quality; this is a splitmix64-seeded xorshift64*
//! generator, the same construction the runner's busy-work loop already
//! uses. Keeping it in-repo lets the default build run fully offline
//! (no crates.io `rand`).

/// A deterministic 64-bit PRNG (xorshift64* over a splitmix64-seeded
/// state).
#[derive(Clone, Debug)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Seeds the generator; equal seeds yield equal streams.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> SmallRng {
        // One splitmix64 round decorrelates small consecutive seeds and
        // guarantees a non-zero xorshift state.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SmallRng { state: z | 1 }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn random_f64(&mut self) -> f64 {
        // 53 high-quality mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli draw with success probability `p` (clamped to [0, 1]).
    pub fn random_bool(&mut self, p: f64) -> bool {
        self.random_f64() < p
    }

    /// A uniform index in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn random_range(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        // Multiply-shift rejection-free mapping; bias is ≤ n/2^64,
        // irrelevant for workload shaping.
        ((u128::from(self.next_u64()) * n as u128) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_stays_in_unit_interval_and_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.random_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn range_covers_all_buckets() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let i = rng.random_range(5);
            assert!(i < 5);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
