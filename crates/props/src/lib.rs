//! The property library of the PLDI'11 RV paper, §5.1.
//!
//! All ten properties the evaluation mentions, as sources in the
//! `rv-spec` language:
//!
//! * the five benchmarked, Iterator-centric properties — [`HAS_NEXT`]
//!   (Figures 1–2), [`UNSAFE_ITER`] (Figure 3), [`UNSAFE_MAP_ITER`],
//!   [`UNSAFE_SYNC_COLL`], [`UNSAFE_SYNC_MAP`];
//! * the CFG property [`SAFE_LOCK`] (Figure 4);
//! * the four low-overhead properties the paper tested but did not
//!   tabulate — [`HASH_SET`], [`SAFE_ENUM`], [`SAFE_FILE`],
//!   [`SAFE_FILE_WRITER`].
//!
//! The event declarations carry the parameter bindings directly (this
//! reproduction's replacement for AspectJ pointcuts); each spec's event
//! parameter order is the contract the simulated workloads
//! (`rv-workloads`) follow when constructing bindings.
//!
//! # Example
//!
//! ```
//! use rv_props::{compiled, Property};
//!
//! let spec = compiled(Property::UnsafeIter)?;
//! assert_eq!(spec.name, "UnsafeIter");
//! assert_eq!(spec.param_classes, vec!["Collection", "Iterator"]);
//! # Ok::<(), rv_spec::Diagnostic>(())
//! ```

use rv_spec::{CompiledSpec, Diagnostic};

/// HASNEXT (paper Figures 1 and 2): never call `next()` without a
/// preceding `hasNext()` that returned true. Stated twice — as the FSM of
/// Figure 1 and as the LTL formula `[](next => (*)hasnexttrue)`.
pub const HAS_NEXT: &str = r#"
HasNext(Iterator i) {
    event hasnexttrue(i);
    event hasnextfalse(i);
    event next(i);
    fsm:
        unknown [
            hasnexttrue -> more
            hasnextfalse -> none
            next -> error
        ]
        more [
            hasnexttrue -> more
            next -> unknown
        ]
        none [
            hasnextfalse -> none
            next -> error
        ]
        error []
    @error { report "improper Iterator use found!"; }
    ltl: [](next => (*) hasnexttrue)
    @violation { report "improper Iterator use found!"; }
}
"#;

/// UNSAFEITER (paper Figure 3): do not update a Collection while
/// iterating it.
pub const UNSAFE_ITER: &str = r#"
UnsafeIter(Collection c, Iterator i) {
    event create(c, i);
    event update(c);
    event next(i);
    ere: update* create next* update+ next
    @match { report "improper Concurrent Modification found!"; }
}
"#;

/// UNSAFEMAPITER (§5.1): do not update a Map while iterating its keys or
/// values. The iterator is two hops from the map (map → view collection →
/// iterator), giving a three-parameter property.
pub const UNSAFE_MAP_ITER: &str = r#"
UnsafeMapIter(Map m, Collection c, Iterator i) {
    event createcoll(m, c);
    event createiter(c, i);
    event useiter(i);
    event updatemap(m);
    ere: updatemap* createcoll updatemap* createiter useiter* updatemap+ useiter
    @match { report "improper Map iteration found!"; }
}
"#;

/// UNSAFESYNCCOLL (§5.1): if a Collection is synchronized, its iterator
/// must be created and accessed while holding the collection's lock.
pub const UNSAFE_SYNC_COLL: &str = r#"
UnsafeSyncColl(Collection c, Iterator i) {
    event sync(c);
    event asynccreateiter(c, i);
    event synccreateiter(c, i);
    event accessiter(i);
    ere: sync asynccreateiter | sync synccreateiter accessiter
    @match { report "improper synchronized Collection use found!"; }
}
"#;

/// UNSAFESYNCMAP (§5.1): if a Map is synchronized, iterators over its key
/// and value views must be accessed while synchronized.
pub const UNSAFE_SYNC_MAP: &str = r#"
UnsafeSyncMap(Map m, Collection c, Iterator i) {
    event sync(m);
    event createset(m, c);
    event asynccreateiter(c, i);
    event synccreateiter(c, i);
    event accessiter(i);
    ere: sync createset asynccreateiter | sync createset synccreateiter accessiter
    @match { report "improper synchronized Map use found!"; }
}
"#;

/// SAFELOCK (paper Figure 4): acquires and releases of a reentrant lock
/// balance within every method, per lock and thread. Context-free.
pub const SAFE_LOCK: &str = r#"
SafeLock(Lock l, Thread t) {
    event acquire(l, t);
    event release(l, t);
    event begin(t);
    event end(t);
    cfg: S -> S begin S end | S acquire S release | epsilon
    @fail { report "improper Lock use found!"; }
}
"#;

/// HASHSET (§5.1): do not mutate an object's hashing state while it sits
/// in a hash container, then look it up.
pub const HASH_SET: &str = r#"
HashSet(Set s, Object o) {
    event add(s, o);
    event mutate(o);
    event find(s, o);
    ere: add mutate+ find
    @match { report "hash code changed while in HashSet!"; }
}
"#;

/// SAFEENUM (§5.1): do not modify a Vector while enumerating it — the
/// legacy-API sibling of UNSAFEITER.
pub const SAFE_ENUM: &str = r#"
SafeEnum(Vector v, Enumeration e) {
    event createenum(v, e);
    event modify(v);
    event nextelem(e);
    ere: modify* createenum nextelem* modify+ nextelem
    @match { report "Vector modified during enumeration!"; }
}
"#;

/// SAFEFILE (§5.1): operate on files only between open and close, and do
/// not reopen an open file.
pub const SAFE_FILE: &str = r#"
SafeFile(File f) {
    event open(f);
    event write(f);
    event close(f);
    fsm:
        closed [
            open -> opened
            write -> error
            close -> error
        ]
        opened [
            write -> opened
            close -> closed
            open -> error
        ]
        error []
    @error { report "improper File use found!"; }
}
"#;

/// SAFEFILEWRITER (§5.1): write through a writer only while it is open.
pub const SAFE_FILE_WRITER: &str = r#"
SafeFileWriter(Writer w) {
    event openwriter(w);
    event writechar(w);
    event closewriter(w);
    fsm:
        fresh [
            openwriter -> open
            writechar -> error
        ]
        open [
            writechar -> open
            closewriter -> done
        ]
        done [
            writechar -> error
            openwriter -> open
        ]
        error []
    @error { report "improper FileWriter use found!"; }
}
"#;

/// The catalog of properties, in the paper's §5.1 order.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Property {
    /// HASNEXT (Figures 1–2).
    HasNext,
    /// UNSAFEITER (Figure 3).
    UnsafeIter,
    /// UNSAFEMAPITER.
    UnsafeMapIter,
    /// UNSAFESYNCCOLL.
    UnsafeSyncColl,
    /// UNSAFESYNCMAP.
    UnsafeSyncMap,
    /// SAFELOCK (Figure 4, CFG).
    SafeLock,
    /// HASHSET.
    HashSet,
    /// SAFEENUM.
    SafeEnum,
    /// SAFEFILE.
    SafeFile,
    /// SAFEFILEWRITER.
    SafeFileWriter,
}

impl Property {
    /// The five properties of the Figure 9/10 evaluation matrix.
    pub const EVALUATED: [Property; 5] = [
        Property::HasNext,
        Property::UnsafeIter,
        Property::UnsafeMapIter,
        Property::UnsafeSyncColl,
        Property::UnsafeSyncMap,
    ];

    /// All ten properties.
    pub const ALL: [Property; 10] = [
        Property::HasNext,
        Property::UnsafeIter,
        Property::UnsafeMapIter,
        Property::UnsafeSyncColl,
        Property::UnsafeSyncMap,
        Property::SafeLock,
        Property::HashSet,
        Property::SafeEnum,
        Property::SafeFile,
        Property::SafeFileWriter,
    ];

    /// The spec source text.
    #[must_use]
    pub fn source(self) -> &'static str {
        match self {
            Property::HasNext => HAS_NEXT,
            Property::UnsafeIter => UNSAFE_ITER,
            Property::UnsafeMapIter => UNSAFE_MAP_ITER,
            Property::UnsafeSyncColl => UNSAFE_SYNC_COLL,
            Property::UnsafeSyncMap => UNSAFE_SYNC_MAP,
            Property::SafeLock => SAFE_LOCK,
            Property::HashSet => HASH_SET,
            Property::SafeEnum => SAFE_ENUM,
            Property::SafeFile => SAFE_FILE,
            Property::SafeFileWriter => SAFE_FILE_WRITER,
        }
    }

    /// The paper's name for the property (all caps, as printed).
    #[must_use]
    pub fn paper_name(self) -> &'static str {
        match self {
            Property::HasNext => "HASNEXT",
            Property::UnsafeIter => "UNSAFEITER",
            Property::UnsafeMapIter => "UNSAFEMAPITER",
            Property::UnsafeSyncColl => "UNSAFESYNCCOLL",
            Property::UnsafeSyncMap => "UNSAFESYNCMAP",
            Property::SafeLock => "SAFELOCK",
            Property::HashSet => "HASHSET",
            Property::SafeEnum => "SAFEENUM",
            Property::SafeFile => "SAFEFILE",
            Property::SafeFileWriter => "SAFEFILEWRITER",
        }
    }

    /// Whether the Tracematches baseline can run this property (regex
    /// representable; in this suite that means non-CFG).
    #[must_use]
    pub fn tracematches_supported(self) -> bool {
        self != Property::SafeLock
    }
}

/// Compiles a property from the catalog.
///
/// # Errors
///
/// Returns a [`Diagnostic`] if the bundled source fails to compile — which
/// would indicate a bug; the test suite compiles all ten.
pub fn compiled(property: Property) -> Result<CompiledSpec, Diagnostic> {
    CompiledSpec::from_source(property.source())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_logic::{Formalism as _, GoalSet, Verdict};

    #[test]
    fn all_ten_properties_compile() {
        for p in Property::ALL {
            let spec = compiled(p).unwrap_or_else(|e| panic!("{p:?}: {e}"));
            assert!(!spec.properties.is_empty());
        }
    }

    #[test]
    fn has_next_has_two_blocks_that_agree() {
        let spec = compiled(Property::HasNext).unwrap();
        assert_eq!(spec.properties.len(), 2);
        let next = spec.alphabet.lookup("next").unwrap();
        let hnt = spec.alphabet.lookup("hasnexttrue").unwrap();
        for prop in &spec.properties {
            let mut st = prop.formalism.initial_state();
            // hasnexttrue next next: the second next is unchecked.
            prop.formalism.step(&mut st, hnt);
            prop.formalism.step(&mut st, next);
            let v = prop.formalism.step(&mut st, next);
            assert!(prop.goal.contains(v), "{v:?}");
        }
    }

    #[test]
    fn unsafe_map_iter_needs_the_iterator_alive() {
        let spec = compiled(Property::UnsafeMapIter).unwrap();
        let prop = &spec.properties[0];
        let aliveness = prop.aliveness.as_ref().unwrap();
        let i = spec.event_def.lookup_param("i").unwrap();
        let dead_i = rv_logic::ParamSet::singleton(i);
        for e in spec.alphabet.iter() {
            assert!(
                !aliveness.is_necessary(e, dead_i),
                "event {} should not keep monitors alive once the iterator dies",
                spec.alphabet.name(e)
            );
        }
    }

    #[test]
    fn unsafe_sync_coll_matches_both_violation_shapes() {
        let spec = compiled(Property::UnsafeSyncColl).unwrap();
        let prop = &spec.properties[0];
        let ev = |n: &str| spec.alphabet.lookup(n).unwrap();
        // Shape 1: iterator created without synchronization.
        let mut st = prop.formalism.initial_state();
        prop.formalism.step(&mut st, ev("sync"));
        let v = prop.formalism.step(&mut st, ev("asynccreateiter"));
        assert_eq!(v, Verdict::Match);
        // Shape 2: created synchronized but accessed without.
        let mut st = prop.formalism.initial_state();
        prop.formalism.step(&mut st, ev("sync"));
        prop.formalism.step(&mut st, ev("synccreateiter"));
        let v = prop.formalism.step(&mut st, ev("accessiter"));
        assert_eq!(v, Verdict::Match);
    }

    #[test]
    fn safe_lock_is_cfg_with_fail_goal() {
        let spec = compiled(Property::SafeLock).unwrap();
        let prop = &spec.properties[0];
        assert_eq!(prop.goal, GoalSet::FAIL);
        assert!(matches!(prop.formalism, rv_logic::AnyFormalism::Cfg(_)));
        let ev = |n: &str| spec.alphabet.lookup(n).unwrap();
        let mut st = prop.formalism.initial_state();
        prop.formalism.step(&mut st, ev("begin"));
        prop.formalism.step(&mut st, ev("acquire"));
        let v = prop.formalism.step(&mut st, ev("end"));
        assert_eq!(v, Verdict::Fail, "acquire not released before method end");
    }

    #[test]
    fn safe_file_flags_write_without_open() {
        let spec = compiled(Property::SafeFile).unwrap();
        let prop = &spec.properties[0];
        let ev = |n: &str| spec.alphabet.lookup(n).unwrap();
        let mut st = prop.formalism.initial_state();
        let v = prop.formalism.step(&mut st, ev("write"));
        assert_eq!(v, Verdict::Match, "goal (error state) reached");
        let mut st = prop.formalism.initial_state();
        prop.formalism.step(&mut st, ev("open"));
        prop.formalism.step(&mut st, ev("write"));
        let v = prop.formalism.step(&mut st, ev("close"));
        assert_eq!(v, Verdict::Unknown);
    }

    #[test]
    fn evaluated_properties_support_tracematches_except_safelock() {
        for p in Property::EVALUATED {
            assert!(p.tracematches_supported());
        }
        assert!(!Property::SafeLock.tracematches_supported());
    }

    #[test]
    fn hash_set_matches_add_mutate_find() {
        let spec = compiled(Property::HashSet).unwrap();
        let prop = &spec.properties[0];
        let ev = |n: &str| spec.alphabet.lookup(n).unwrap();
        let mut st = prop.formalism.initial_state();
        prop.formalism.step(&mut st, ev("add"));
        prop.formalism.step(&mut st, ev("mutate"));
        let v = prop.formalism.step(&mut st, ev("find"));
        assert_eq!(v, Verdict::Match);
        // find without mutate is fine.
        let mut st = prop.formalism.initial_state();
        prop.formalism.step(&mut st, ev("add"));
        let v = prop.formalism.step(&mut st, ev("find"));
        assert_eq!(v, Verdict::Fail, "pattern can no longer match");
    }
}
