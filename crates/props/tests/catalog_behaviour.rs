//! Behavioral pins for every property in the catalog: each property's
//! canonical violating trace triggers its goal, and each property's
//! canonical correct trace does not. These are the semantic contracts the
//! workload generators and the evaluation rely on.

use rv_logic::{Formalism as _, Verdict};
use rv_props::{compiled, Property};
use rv_spec::CompiledSpec;

/// Steps `events` through the first property block, returning the final
/// verdict and whether any goal verdict occurred along the way.
fn run(spec: &CompiledSpec, block: usize, events: &[&str]) -> (Verdict, bool) {
    let prop = &spec.properties[block];
    let mut state = prop.formalism.initial_state();
    let mut triggered = false;
    let mut last = prop.formalism.verdict(&state);
    for name in events {
        let e = spec
            .alphabet
            .lookup(name)
            .unwrap_or_else(|| panic!("{}: unknown event {name}", spec.name));
        last = prop.formalism.step(&mut state, e);
        if prop.goal.contains(last) {
            triggered = true;
        }
    }
    (last, triggered)
}

#[test]
fn has_next_contract() {
    let spec = compiled(Property::HasNext).unwrap();
    for block in 0..2 {
        let (_, bad) = run(&spec, block, &["hasnexttrue", "next", "next"]);
        assert!(bad, "unchecked second next violates block {block}");
        let (_, ok) =
            run(&spec, block, &["hasnexttrue", "next", "hasnexttrue", "next", "hasnextfalse"]);
        assert!(!ok, "guarded iteration is fine in block {block}");
    }
}

#[test]
fn unsafe_iter_contract() {
    let spec = compiled(Property::UnsafeIter).unwrap();
    let (_, bad) = run(&spec, 0, &["create", "next", "update", "next"]);
    assert!(bad);
    let (_, ok) = run(&spec, 0, &["update", "create", "next", "next"]);
    assert!(!ok, "updates strictly before creation are fine");
    let (_, ok2) = run(&spec, 0, &["create", "next", "update"]);
    assert!(!ok2, "an update with no subsequent use is fine");
}

#[test]
fn unsafe_map_iter_contract() {
    let spec = compiled(Property::UnsafeMapIter).unwrap();
    let (_, bad) = run(&spec, 0, &["createcoll", "createiter", "useiter", "updatemap", "useiter"]);
    assert!(bad);
    let (_, ok) = run(&spec, 0, &["updatemap", "createcoll", "createiter", "useiter"]);
    assert!(!ok);
}

#[test]
fn unsafe_sync_coll_contract() {
    let spec = compiled(Property::UnsafeSyncColl).unwrap();
    let (_, bad1) = run(&spec, 0, &["sync", "asynccreateiter"]);
    assert!(bad1, "creating the iterator without the lock");
    let (_, bad2) = run(&spec, 0, &["sync", "synccreateiter", "accessiter"]);
    assert!(bad2, "accessing without the lock");
    let (_, ok) = run(&spec, 0, &["sync", "synccreateiter"]);
    assert!(!ok);
}

#[test]
fn unsafe_sync_map_contract() {
    let spec = compiled(Property::UnsafeSyncMap).unwrap();
    let (_, bad) = run(&spec, 0, &["sync", "createset", "asynccreateiter"]);
    assert!(bad);
    let (_, ok) = run(&spec, 0, &["createset", "asynccreateiter"]);
    assert!(!ok, "unsynchronized maps are unconstrained");
}

#[test]
fn safe_lock_contract() {
    let spec = compiled(Property::SafeLock).unwrap();
    let (_, bad) = run(&spec, 0, &["begin", "acquire", "end"]);
    assert!(bad, "method exits holding the lock");
    let (_, ok) = run(&spec, 0, &["begin", "acquire", "begin", "end", "release", "end"]);
    assert!(!ok, "properly nested");
    let (_, bad2) = run(&spec, 0, &["release"]);
    assert!(bad2, "release without acquire");
}

#[test]
fn hash_set_contract() {
    let spec = compiled(Property::HashSet).unwrap();
    let (_, bad) = run(&spec, 0, &["add", "mutate", "find"]);
    assert!(bad);
    let (_, ok) = run(&spec, 0, &["add", "find"]);
    assert!(!ok);
}

#[test]
fn safe_enum_contract() {
    let spec = compiled(Property::SafeEnum).unwrap();
    let (_, bad) = run(&spec, 0, &["createenum", "nextelem", "modify", "nextelem"]);
    assert!(bad);
    let (_, ok) = run(&spec, 0, &["modify", "createenum", "nextelem"]);
    assert!(!ok);
}

#[test]
fn safe_file_contract() {
    let spec = compiled(Property::SafeFile).unwrap();
    let (_, bad) = run(&spec, 0, &["write"]);
    assert!(bad, "write before open");
    let (_, bad2) = run(&spec, 0, &["open", "open"]);
    assert!(bad2, "double open");
    let (_, ok) = run(&spec, 0, &["open", "write", "write", "close"]);
    assert!(!ok);
}

#[test]
fn safe_file_writer_contract() {
    let spec = compiled(Property::SafeFileWriter).unwrap();
    let (_, bad) = run(&spec, 0, &["openwriter", "closewriter", "writechar"]);
    assert!(bad, "write after close");
    let (_, ok) =
        run(&spec, 0, &["openwriter", "writechar", "closewriter", "openwriter", "writechar"]);
    assert!(!ok, "reopening is fine");
}

#[test]
fn every_property_keeps_the_iterator_shape_of_its_aliveness() {
    // For the three iterator-centric ERE properties, the last-position
    // parameter (the iterator) must appear in every ALIVENESS mask of
    // every event: once the iterator dies, nothing can match.
    for p in [Property::UnsafeIter, Property::UnsafeMapIter] {
        let spec = compiled(p).unwrap();
        let prop = &spec.properties[0];
        let aliveness = prop.aliveness.as_ref().unwrap();
        let iter_param = spec.event_def.lookup_param("i").unwrap();
        for e in spec.alphabet.iter() {
            for mask in aliveness.masks(e) {
                assert!(
                    mask.contains(iter_param),
                    "{p:?}: mask for {} lacks the iterator",
                    spec.alphabet.name(e)
                );
            }
        }
    }
}
