//! Ablation benchmarks for the design choices §4.2 calls out:
//!
//! * **Lazy vs. eager collection** — "eager garbage collection of
//!   unnecessary monitors introduces a very large amount of runtime
//!   overhead": compare the default lazy expunge window against an eager
//!   variant that runs a full sweep after every simulated-heap GC.
//! * **Expunge window size** — how much maintenance each map access pays.
//! * **ALIVENESS minimization** — §4.2.2's "minimized boolean formula"
//!   against evaluating the raw Definition 11 disjunction.
//!
//! Run: `cargo bench -p rv-bench --bench ablations`

#![allow(missing_docs)] // criterion macros generate undocumented items
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rv_core::{EngineConfig, GcPolicy, PropertyMonitor};
use rv_heap::Heap;
use rv_props::Property;
use rv_workloads::{EventSink, Profile, SimEvent};

const SCALE: f64 = 0.25;

/// A sink like `rv_bench::MonitorSink`, but with a configurable engine
/// config and an optional eager sweep after every heap collection.
struct AblationSink {
    monitor: PropertyMonitor,
    property: Property,
    eager: bool,
    last_collections: u64,
}

impl AblationSink {
    fn new(property: Property, config: EngineConfig, eager: bool) -> AblationSink {
        let spec = rv_props::compiled(property).expect("bundled property");
        AblationSink {
            monitor: PropertyMonitor::new(spec, &config),
            property,
            eager,
            last_collections: 0,
        }
    }
}

impl EventSink for AblationSink {
    fn emit(&mut self, heap: &Heap, event: &SimEvent) {
        if let Some((name, objs)) = rv_workloads::project(event, self.property) {
            let spec = self.monitor.spec();
            let id = spec.alphabet.lookup(name).expect("projected names resolve");
            let params = &spec.event_params[id.as_usize()];
            let pairs: Vec<(rv_logic::ParamId, rv_heap::ObjId)> =
                params.iter().copied().zip(objs.as_slice().iter().copied()).collect();
            let binding = rv_core::Binding::from_pairs(&pairs);
            self.monitor.process(heap, id, binding);
        }
        if self.eager {
            // Eager mode: react to every heap collection immediately with
            // a full sweep of every structure (what the paper warns
            // against).
            let collections = heap.stats().collections;
            if collections != self.last_collections {
                self.last_collections = collections;
                self.monitor.finish(heap);
            }
        }
    }
}

fn bench_lazy_vs_eager(c: &mut Criterion) {
    let profile = Profile::bloat();
    let mut group = c.benchmark_group("ablation_lazy_vs_eager");
    for (label, eager) in [("lazy", false), ("eager", true)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut sink =
                    AblationSink::new(Property::UnsafeIter, EngineConfig::default(), eager);
                rv_workloads::run(&profile, SCALE, &mut sink)
            });
        });
    }
    group.finish();
}

fn bench_expunge_window(c: &mut Criterion) {
    let profile = Profile::bloat();
    let mut group = c.benchmark_group("ablation_expunge_window");
    for window in [1usize, 4, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(window), &window, |b, &w| {
            b.iter(|| {
                let config = EngineConfig { expunge_window: w, ..EngineConfig::default() };
                let mut sink = AblationSink::new(Property::UnsafeIter, config, false);
                rv_workloads::run(&profile, SCALE, &mut sink)
            });
        });
    }
    group.finish();
}

fn bench_aliveness_minimization(c: &mut Criterion) {
    // UNSAFEMAPITER has the richest coenable sets of the suite: the gap
    // between the raw Definition 11 disjunction and the minimized formula
    // is widest there.
    let profile = Profile::xalan();
    let mut group = c.benchmark_group("ablation_aliveness_minimization");
    for (label, minimize) in [("minimized", true), ("raw_definition_11", false)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let config =
                    EngineConfig { minimize_aliveness: minimize, ..EngineConfig::default() };
                let mut sink = AblationSink::new(Property::UnsafeMapIter, config, false);
                rv_workloads::run(&profile, 1.0, &mut sink)
            });
        });
    }
    group.finish();
}

fn bench_gc_policies_on_bloat(c: &mut Criterion) {
    let profile = Profile::bloat();
    let mut group = c.benchmark_group("ablation_gc_policy_bloat_unsafeiter");
    for (label, policy) in [
        ("no_gc", GcPolicy::None),
        ("all_params_dead", GcPolicy::AllParamsDead),
        ("coenable_lazy", GcPolicy::CoenableLazy),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let config = EngineConfig { policy, ..EngineConfig::default() };
                let mut sink = AblationSink::new(Property::UnsafeIter, config, false);
                rv_workloads::run(&profile, SCALE, &mut sink)
            });
        });
    }
    group.finish();
}

fn bench_lookup_cache(c: &mut Criterion) {
    // The staged-indexing analog: hot hasNext/next loops on the same
    // iterator are exactly the monomorphic pattern the cache serves.
    let profile = Profile::bloat();
    let mut group = c.benchmark_group("ablation_lookup_cache");
    for (label, cache) in [("cached", true), ("uncached", false)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let config = EngineConfig { lookup_cache: cache, ..EngineConfig::default() };
                let mut sink = AblationSink::new(Property::HasNext, config, false);
                rv_workloads::run(&profile, SCALE, &mut sink)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_lazy_vs_eager, bench_expunge_window,
              bench_aliveness_minimization, bench_gc_policies_on_bloat,
              bench_lookup_cache
}
criterion_main!(benches);
