//! Microbenchmarks for the engine's hot paths: base-monitor stepping,
//! weak-map operations, event dispatch through the indexing trees, and
//! the static coenable analysis itself (which the paper expects to be "a
//! quick static operation").
//!
//! Run: `cargo bench -p rv-bench --bench microbench`

#![allow(missing_docs)] // criterion macros generate undocumented items
use criterion::{criterion_group, criterion_main, Criterion};
use rv_core::{Binding, Engine, EngineConfig, GcPolicy};
use rv_heap::{Heap, HeapConfig};
use rv_logic::ere::unsafe_iter_ere;
use rv_logic::{Alphabet, EventDef, GoalSet, ParamId, ParamSet};
use std::hint::black_box;

fn unsafe_iter_parts() -> (Alphabet, rv_logic::dfa::Dfa, EventDef) {
    let alphabet = Alphabet::from_names(&["create", "update", "next"]);
    let dfa = unsafe_iter_ere(&alphabet).compile(&alphabet, 1_000).unwrap();
    let def = EventDef::new(
        &alphabet,
        &["c", "i"],
        vec![
            ParamSet::singleton(ParamId(0)).with(ParamId(1)),
            ParamSet::singleton(ParamId(0)),
            ParamSet::singleton(ParamId(1)),
        ],
    );
    (alphabet, dfa, def)
}

fn bench_dfa_step(c: &mut Criterion) {
    let (alphabet, dfa, _) = unsafe_iter_parts();
    let events: Vec<rv_logic::EventId> = alphabet.iter().collect();
    c.bench_function("dfa_step", |b| {
        let mut state = dfa.initial();
        let mut i = 0;
        b.iter(|| {
            state = dfa.step(black_box(state), events[i % events.len()]);
            if state == rv_logic::dfa::DEAD {
                state = dfa.initial();
            }
            i += 1;
            state
        });
    });
}

fn bench_coenable_analysis(c: &mut Criterion) {
    let (_, dfa, def) = unsafe_iter_parts();
    c.bench_function("coenable_analysis", |b| {
        b.iter(|| {
            let co = dfa.coenable(GoalSet::MATCH);
            black_box(co.lift(&def).aliveness())
        });
    });
}

fn bench_engine_dispatch(c: &mut Criterion) {
    // One collection, a stream of update events dispatched through the
    // ⟨c⟩-tree — the per-event cost with a warm instance.
    let (alphabet, dfa, def) = unsafe_iter_parts();
    let update = alphabet.lookup("update").unwrap();
    c.bench_function("engine_dispatch_update", |b| {
        let mut engine =
            Engine::new(dfa.clone(), def.clone(), GoalSet::MATCH, EngineConfig::default());
        let mut heap = Heap::new(HeapConfig::manual());
        let cls = heap.register_class("Obj");
        let _f = heap.enter_frame();
        let coll = heap.alloc(cls);
        let binding = Binding::from_pairs(&[(ParamId(0), coll)]);
        engine.process(&heap, update, binding);
        b.iter(|| {
            engine.process(&heap, update, black_box(binding));
        });
    });
}

fn bench_monitor_creation(c: &mut Criterion) {
    // Fresh create events: the full creation path (enable checks, tree
    // registration).
    let (alphabet, dfa, def) = unsafe_iter_parts();
    let create = alphabet.lookup("create").unwrap();
    c.bench_function("engine_monitor_creation", |b| {
        let mut engine =
            Engine::new(dfa.clone(), def.clone(), GoalSet::MATCH, EngineConfig::default());
        let mut heap = Heap::new(HeapConfig::manual());
        let cls = heap.register_class("Obj");
        let _f = heap.enter_frame();
        let coll = heap.alloc(cls);
        b.iter(|| {
            let inner = heap.enter_frame();
            let iter = heap.alloc(cls);
            let binding = Binding::from_pairs(&[(ParamId(0), coll), (ParamId(1), iter)]);
            engine.process(&heap, create, binding);
            heap.exit_frame(inner);
        });
    });
}

fn bench_policy_comparison(c: &mut Criterion) {
    // The create/next/die loop under each policy: the cost of keeping
    // (MOP) vs collecting (RV) dead-iterator monitors.
    let (alphabet, dfa, def) = unsafe_iter_parts();
    let create = alphabet.lookup("create").unwrap();
    let update = alphabet.lookup("update").unwrap();
    let next = alphabet.lookup("next").unwrap();
    let mut group = c.benchmark_group("policy_iterate_and_die");
    for (label, policy) in [
        ("none", GcPolicy::None),
        ("all_params_dead", GcPolicy::AllParamsDead),
        ("coenable_lazy", GcPolicy::CoenableLazy),
    ] {
        group.bench_function(label, |b| {
            let mut engine = Engine::new(
                dfa.clone(),
                def.clone(),
                GoalSet::MATCH,
                EngineConfig { policy, ..EngineConfig::default() },
            );
            let mut heap = Heap::new(HeapConfig::auto(256));
            let cls = heap.register_class("Obj");
            let _f = heap.enter_frame();
            let coll = heap.alloc(cls);
            heap.pin(coll);
            let c_binding = Binding::from_pairs(&[(ParamId(0), coll)]);
            b.iter(|| {
                let inner = heap.enter_frame();
                let iter = heap.alloc(cls);
                heap.add_edge(iter, coll);
                engine.process(
                    &heap,
                    create,
                    Binding::from_pairs(&[(ParamId(0), coll), (ParamId(1), iter)]),
                );
                engine.process(&heap, next, Binding::from_pairs(&[(ParamId(1), iter)]));
                engine.process(&heap, update, c_binding);
                heap.exit_frame(inner);
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_dfa_step, bench_coenable_analysis, bench_engine_dispatch,
              bench_monitor_creation, bench_policy_comparison
}
criterion_main!(benches);
