//! Criterion rendition of Figure 9 (A): monitored-vs-bare workload times
//! for the three hot benchmarks the paper discusses in depth (bloat,
//! avrora, pmd) under each system, on the UNSAFEITER property.
//!
//! Run: `cargo bench -p rv-bench --bench fig9a_overhead`

#![allow(missing_docs)] // criterion macros generate undocumented items
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rv_bench::{MonitorSink, System};
use rv_props::Property;
use rv_workloads::{NullSink, Profile};

const SCALE: f64 = 0.25;

fn bench_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9a_unsafeiter");
    for name in ["bloat", "avrora", "pmd", "h2"] {
        let profile = Profile::by_name(name).expect("known benchmark");
        group.bench_with_input(BenchmarkId::new("bare", name), &profile, |b, p| {
            b.iter(|| {
                let mut sink = NullSink;
                rv_workloads::run(p, SCALE, &mut sink)
            });
        });
        for system in System::ALL {
            group.bench_with_input(BenchmarkId::new(system.label(), name), &profile, |b, p| {
                b.iter(|| {
                    let mut sink = MonitorSink::new(system, &[Property::UnsafeIter]);
                    rv_workloads::run(p, SCALE, &mut sink)
                });
            });
        }
    }
    group.finish();
}

fn bench_all_column(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9a_all_properties_rv");
    for name in ["bloat", "avrora", "pmd"] {
        let profile = Profile::by_name(name).expect("known benchmark");
        group.bench_with_input(BenchmarkId::from_parameter(name), &profile, |b, p| {
            b.iter(|| {
                let mut sink = MonitorSink::new(System::Rv, &Property::EVALUATED);
                rv_workloads::run(p, SCALE, &mut sink)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_overhead, bench_all_column
}
criterion_main!(benches);
