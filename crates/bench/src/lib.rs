//! The evaluation harness: everything needed to regenerate the paper's
//! Figure 9(A) (runtime overhead), Figure 9(B) (peak memory) and
//! Figure 10 (monitoring statistics) tables, plus the ablation benches.
//!
//! The three systems under comparison:
//!
//! * **RV** — the `rv-core` engine with [`GcPolicy::CoenableLazy`];
//! * **MOP** (JavaMOP) — the same engine with [`GcPolicy::AllParamsDead`];
//! * **TM** (Tracematches) — the `rv-tracematches` disjunct engine with
//!   state-indexed GC (regex properties only).
//!
//! Overhead is measured exactly as the paper defines it: the same workload
//! is run unmonitored ([`NullSink`]) and monitored, and the overhead is
//! `time_monitored / time_bare − 1`. Cells that exceed the configured
//! deadline report `∞`, mirroring the paper's non-terminating
//! Tracematches cells.

use std::time::{Duration, Instant};

use rv_core::{
    mmu, Binding, EngineConfig, EngineObserver, GcKind, GcPolicy, GcReason, MetricsRegistry,
    NoopObserver, PhaseProfiler, PropertyMonitor,
};
use rv_heap::Heap;
use rv_logic::{AnyFormalism, EventId};
use rv_props::Property;
use rv_tracematches::TraceMatch;
use rv_workloads::{project, EventSink, NullSink, Profile, SimEvent};

/// Which monitoring system a cell measures.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum System {
    /// Tracematches-style baseline.
    Tm,
    /// JavaMOP-style baseline (all-params-dead collection).
    Mop,
    /// The paper's RV (coenable-set lazy collection).
    Rv,
}

impl System {
    /// Table order: TM, MOP, RV (as in Figure 9).
    pub const ALL: [System; 3] = [System::Tm, System::Mop, System::Rv];

    /// The column label used in the tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            System::Tm => "TM",
            System::Mop => "MOP",
            System::Rv => "RV",
        }
    }
}

/// One property attached to a system under test.
enum Attached<O: EngineObserver = NoopObserver> {
    Engine(Box<PropertyMonitor<O>>),
    Tm(Box<TraceMatch>),
}

/// Pre-resolved event dispatch for one property: spec lookups hoisted out
/// of the hot path.
struct Dispatch<O: EngineObserver = NoopObserver> {
    property: Property,
    /// For each possible projected event name: `(event id, param ids)`.
    /// Resolved lazily on first sight and memoized by name pointer.
    spec_alphabet: rv_logic::Alphabet,
    event_params: Vec<Vec<rv_logic::ParamId>>,
    attached: Attached<O>,
}

impl<O: EngineObserver> Dispatch<O> {
    fn translate(&self, name: &str, objs: &rv_workloads::ObjList) -> (EventId, Binding) {
        let event = self
            .spec_alphabet
            .lookup(name)
            .unwrap_or_else(|| panic!("{:?}: unknown event `{name}`", self.property));
        let params = &self.event_params[event.as_usize()];
        debug_assert_eq!(params.len(), objs.as_slice().len());
        let pairs: Vec<(rv_logic::ParamId, rv_heap::ObjId)> =
            params.iter().copied().zip(objs.as_slice().iter().copied()).collect();
        (event, Binding::from_pairs(&pairs))
    }
}

/// A sink feeding workload events to one or more monitored properties
/// under a single system, with a deadline and periodic memory sampling.
///
/// Generic over the per-engine [`EngineObserver`] — the default
/// [`NoopObserver`] is the measured (zero-cost) configuration; attach a
/// real observer with [`MonitorSink::with_observers`] for the profiled
/// pass.
pub struct MonitorSink<O: EngineObserver = NoopObserver> {
    dispatches: Vec<Dispatch<O>>,
    deadline: Option<Instant>,
    timed_out: bool,
    sweep_at_exit: bool,
    events_since_sample: u32,
    /// Peak monitor-side bytes observed (Fig. 9B metric).
    pub peak_bytes: usize,
    /// Total events dispatched to at least one property.
    pub events: u64,
}

impl MonitorSink {
    /// Builds a sink monitoring `properties` under `system`.
    ///
    /// # Panics
    ///
    /// Panics if a CFG property is requested under [`System::Tm`]
    /// (Tracematches is regex-only — the paper's structural limitation).
    #[must_use]
    pub fn new(system: System, properties: &[Property]) -> MonitorSink {
        MonitorSink::with_engine_config(system, properties, EngineConfig::default())
    }

    /// Like [`MonitorSink::new`], but engine-backed systems inherit `base`
    /// (budgets, degradation ceiling, expunge window, …). The GC policy is
    /// still forced per system — RV is coenable-lazy, MOP all-params-dead
    /// — so only the other knobs of `base` matter.
    ///
    /// # Panics
    ///
    /// Panics if a CFG property is requested under [`System::Tm`].
    #[must_use]
    pub fn with_engine_config(
        system: System,
        properties: &[Property],
        base: EngineConfig,
    ) -> MonitorSink {
        MonitorSink::with_observers(system, properties, base, |_| NoopObserver)
    }
}

impl<O: EngineObserver> MonitorSink<O> {
    /// Like [`MonitorSink::with_engine_config`], but attaches `make(p)`
    /// to every engine block of property `p` (called once per block).
    /// Observers only attach to engine-backed systems; TM cells ignore
    /// them.
    ///
    /// # Panics
    ///
    /// Panics if a CFG property is requested under [`System::Tm`].
    #[must_use]
    pub fn with_observers(
        system: System,
        properties: &[Property],
        base: EngineConfig,
        mut make: impl FnMut(Property) -> O,
    ) -> MonitorSink<O> {
        let dispatches = properties
            .iter()
            .map(|&property| {
                let spec = rv_props::compiled(property).expect("bundled properties compile");
                let attached = match system {
                    System::Rv | System::Mop => {
                        let config = EngineConfig {
                            policy: if system == System::Rv {
                                GcPolicy::CoenableLazy
                            } else {
                                GcPolicy::AllParamsDead
                            },
                            ..base.clone()
                        };
                        Attached::Engine(Box::new(PropertyMonitor::with_observers(
                            spec.clone(),
                            &config,
                            |_| make(property),
                        )))
                    }
                    System::Tm => {
                        assert!(
                            property.tracematches_supported(),
                            "Tracematches cannot express {property:?} (CFG)"
                        );
                        let prop = &spec.properties[0];
                        let AnyFormalism::Dfa(dfa) = &prop.formalism else {
                            panic!("{property:?}: TM needs a finite automaton");
                        };
                        Attached::Tm(Box::new(TraceMatch::new(
                            dfa.clone(),
                            spec.event_def.clone(),
                            prop.goal,
                        )))
                    }
                };
                Dispatch {
                    property,
                    spec_alphabet: spec.alphabet.clone(),
                    event_params: spec.event_params.clone(),
                    attached,
                }
            })
            .collect();
        MonitorSink {
            dispatches,
            deadline: None,
            timed_out: false,
            sweep_at_exit: false,
            events_since_sample: 0,
            peak_bytes: 0,
            events: 0,
        }
    }

    /// Aborts monitoring (reporting `∞`) once `duration` has elapsed.
    pub fn with_deadline(mut self, duration: Duration) -> MonitorSink<O> {
        self.deadline = Some(Instant::now() + duration);
        self
    }

    /// Forces a safepoint [`rv_core::Engine::full_sweep`] on every engine
    /// block when the workload exits, so end-of-run GC telemetry (cycle
    /// records, pause histograms, reclaim counts) reflects the terminal
    /// collection the paper's numbers assume. Off for measured cells —
    /// the exit sweep is observability, not overhead.
    #[must_use]
    pub fn with_exit_sweep(mut self) -> MonitorSink<O> {
        self.sweep_at_exit = true;
        self
    }

    /// The engine-backed monitors, for reaching attached observers after
    /// a run (empty under TM).
    #[must_use]
    pub fn engine_monitors(&self) -> Vec<(Property, &PropertyMonitor<O>)> {
        self.dispatches
            .iter()
            .filter_map(|d| match &d.attached {
                Attached::Engine(m) => Some((d.property, m.as_ref())),
                Attached::Tm(_) => None,
            })
            .collect()
    }

    /// Whether the deadline fired.
    #[must_use]
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }

    /// Total goal reports across all properties.
    #[must_use]
    pub fn triggers(&self) -> u64 {
        self.dispatches
            .iter()
            .map(|d| match &d.attached {
                Attached::Engine(m) => m.triggers(),
                Attached::Tm(t) => t.stats().triggers,
            })
            .sum()
    }

    /// Aggregated engine statistics per property (None for TM cells).
    #[must_use]
    pub fn engine_stats(&self) -> Vec<(Property, Option<rv_core::EngineStats>)> {
        self.dispatches
            .iter()
            .map(|d| {
                let stats = match &d.attached {
                    Attached::Engine(m) => Some(m.stats()),
                    Attached::Tm(_) => None,
                };
                (d.property, stats)
            })
            .collect()
    }

    /// Current monitor-side bytes.
    #[must_use]
    pub fn current_bytes(&self) -> usize {
        self.dispatches
            .iter()
            .map(|d| match &d.attached {
                Attached::Engine(m) => m.estimated_bytes(),
                Attached::Tm(t) => t.estimated_bytes(),
            })
            .sum()
    }
}

impl<O: EngineObserver> EventSink for MonitorSink<O> {
    fn emit(&mut self, heap: &Heap, event: &SimEvent) {
        if self.timed_out {
            return;
        }
        for i in 0..self.dispatches.len() {
            let Some((name, objs)) = project(event, self.dispatches[i].property) else {
                continue;
            };
            self.events += 1;
            let (event_id, binding) = self.dispatches[i].translate(name, &objs);
            match &mut self.dispatches[i].attached {
                Attached::Engine(m) => m.process(heap, event_id, binding),
                Attached::Tm(t) => t.process(heap, event_id, binding),
            }
        }
        self.events_since_sample += 1;
        if self.events_since_sample >= 4096 {
            self.events_since_sample = 0;
            self.peak_bytes = self.peak_bytes.max(self.current_bytes());
            if let Some(deadline) = self.deadline {
                if Instant::now() > deadline {
                    self.timed_out = true;
                }
            }
        }
    }

    fn at_exit(&mut self, heap: &Heap) {
        if self.sweep_at_exit {
            for d in &mut self.dispatches {
                if let Attached::Engine(m) = &mut d.attached {
                    for engine in m.engines_mut() {
                        let _ = engine.full_sweep_with(heap, GcReason::Forced);
                    }
                }
            }
        }
        self.peak_bytes = self.peak_bytes.max(self.current_bytes());
    }
}

/// The result of one measured cell.
#[derive(Clone, Copy, Debug)]
pub struct CellResult {
    /// Percent runtime overhead versus the unmonitored run (`None` = the
    /// deadline fired, printed as `∞`).
    pub overhead_pct: Option<f64>,
    /// Peak monitor-side memory in KiB.
    pub peak_kib: f64,
    /// Engine statistics, when the system exposes them.
    pub stats: Option<rv_core::EngineStats>,
    /// Goal reports.
    pub triggers: u64,
}

/// Measures the unmonitored baseline time for `profile` at `scale`,
/// best-of-`reps`.
#[must_use]
pub fn measure_baseline(profile: &Profile, scale: f64, reps: u32) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps.max(1) {
        let mut sink = NullSink;
        let start = Instant::now();
        let _ = rv_workloads::run(profile, scale, &mut sink);
        best = best.min(start.elapsed());
    }
    best
}

/// Measures one (benchmark, properties, system) cell.
#[must_use]
pub fn measure_cell(
    profile: &Profile,
    scale: f64,
    system: System,
    properties: &[Property],
    baseline: Duration,
    deadline: Duration,
) -> CellResult {
    let mut sink = MonitorSink::new(system, properties).with_deadline(deadline);
    let start = Instant::now();
    let _ = rv_workloads::run(profile, scale, &mut sink);
    let elapsed = start.elapsed();
    let overhead_pct = if sink.timed_out() {
        None
    } else {
        let base = baseline.as_secs_f64().max(1e-9);
        Some(((elapsed.as_secs_f64() / base) - 1.0) * 100.0)
    };
    let stats = sink.engine_stats().into_iter().filter_map(|(_, s)| s).reduce(|mut acc, s| {
        acc.merge_from(&s);
        acc
    });
    CellResult {
        overhead_pct,
        peak_kib: sink.peak_bytes as f64 / 1024.0,
        stats,
        triggers: sink.triggers(),
    }
}

/// One profiled run of a workload cell: per-property phase profilers
/// (blocks merged), the merged metrics registry, and the wall-clock
/// figures needed to report the profiler's own cost.
#[derive(Debug)]
pub struct ProfiledRun {
    /// One merged profiler per property, labelled with the paper name.
    pub profilers: Vec<PhaseProfiler>,
    /// Metrics merged across every property and block.
    pub metrics: MetricsRegistry,
    /// Best wall-clock seconds with the zero-cost `NoopObserver` path
    /// (profiler compiled out — the disabled configuration).
    pub disabled_secs: f64,
    /// Worst disabled wall-clock seconds: the run-to-run noise bound the
    /// disabled-path overhead claim is judged against.
    pub disabled_worst_secs: f64,
    /// Best wall-clock seconds with the profiler attached.
    pub enabled_secs: f64,
}

impl ProfiledRun {
    /// Profiler-enabled overhead versus the disabled path, in percent.
    #[must_use]
    pub fn enabled_overhead_pct(&self) -> f64 {
        (self.enabled_secs / self.disabled_secs.max(1e-9) - 1.0) * 100.0
    }

    /// Run-to-run spread of the disabled path, in percent — the noise
    /// floor that bounds any claim about the disabled path's cost.
    #[must_use]
    pub fn disabled_spread_pct(&self) -> f64 {
        (self.disabled_worst_secs / self.disabled_secs.max(1e-9) - 1.0) * 100.0
    }

    /// The run as one JSON object (the `--profile-json` cell shape).
    #[must_use]
    pub fn to_json(&self) -> String {
        use rv_core::obs::json_f64;
        let profs: Vec<String> = self.profilers.iter().map(PhaseProfiler::to_json).collect();
        format!(
            "{{\"disabled_secs\":{},\"disabled_worst_secs\":{},\"enabled_secs\":{},\
             \"enabled_overhead_pct\":{},\"disabled_spread_pct\":{},\"self_overhead_ns\":{},\
             \"profilers\":[{}]}}",
            json_f64(self.disabled_secs),
            json_f64(self.disabled_worst_secs),
            json_f64(self.enabled_secs),
            json_f64(self.enabled_overhead_pct()),
            json_f64(self.disabled_spread_pct()),
            json_f64(PhaseProfiler::measure_self_overhead(4096)),
            profs.join(",")
        )
    }
}

/// Measures one cell twice, best-of-`reps` each way: once on the
/// `NoopObserver` path (profiler compiled out) and once with a
/// [`PhaseProfiler`] + [`MetricsRegistry`] attached to every engine
/// block. The pair is the "profiler on vs off" figure EXPERIMENTS.md
/// reports; the returned profilers carry the per-phase histograms.
///
/// # Panics
///
/// Panics under [`System::Tm`] — Tracematches has no engine observers.
#[must_use]
pub fn measure_profiled_cell(
    profile: &Profile,
    scale: f64,
    system: System,
    properties: &[Property],
    reps: u32,
) -> ProfiledRun {
    assert!(system != System::Tm, "TM cells have no engine observers to profile");
    let reps = reps.max(1);
    let mut disabled = f64::INFINITY;
    let mut disabled_worst = 0.0f64;
    for _ in 0..reps {
        let mut sink = MonitorSink::new(system, properties);
        let start = Instant::now();
        let _ = rv_workloads::run(profile, scale, &mut sink);
        let t = start.elapsed().as_secs_f64();
        disabled = disabled.min(t);
        disabled_worst = disabled_worst.max(t);
    }
    let mut enabled = f64::INFINITY;
    let mut best: Option<(Vec<PhaseProfiler>, MetricsRegistry)> = None;
    for _ in 0..reps {
        let mut sink = MonitorSink::with_observers(
            system,
            properties,
            EngineConfig::default(),
            |p: Property| (MetricsRegistry::new(), PhaseProfiler::new().with_label(p.paper_name())),
        );
        let start = Instant::now();
        let _ = rv_workloads::run(profile, scale, &mut sink);
        let t = start.elapsed().as_secs_f64();
        if t < enabled || best.is_none() {
            enabled = enabled.min(t);
            let mut metrics = MetricsRegistry::new();
            let mut profs = Vec::new();
            for (property, monitor) in sink.engine_monitors() {
                let mut merged = PhaseProfiler::new().with_label(property.paper_name());
                for engine in monitor.engines() {
                    let (m, p) = engine.observer();
                    metrics.merge_from(m);
                    merged.merge_from(p);
                }
                profs.push(merged);
            }
            best = Some((profs, metrics));
        }
    }
    let (profilers, metrics) = best.expect("reps >= 1 guarantees a profiled run");
    ProfiledRun {
        profilers,
        metrics,
        disabled_secs: disabled,
        disabled_worst_secs: disabled_worst,
        enabled_secs: enabled,
    }
}

/// Runs the profiled pass the `--profile-json` flag asks for — every
/// DaCapo benchmark under RV with all evaluated properties — and writes
/// one JSON document with per-phase histograms and the measured
/// profiler-on-vs-off overhead per benchmark.
///
/// # Panics
///
/// Panics on IO errors — these binaries are CLIs.
pub fn write_profile_report(path: &str, figure: &str, scale: f64, reps: u32) {
    use rv_core::obs::{json_escape, json_f64};
    let mut cells = Vec::new();
    for profile in Profile::dacapo() {
        let run = measure_profiled_cell(&profile, scale, System::Rv, &Property::EVALUATED, reps);
        cells.push(format!(
            "{{\"benchmark\":\"{}\",\"profile\":{}}}",
            json_escape(profile.name),
            run.to_json()
        ));
    }
    let doc = format!(
        "{{\"figure\":\"{}\",\"scale\":{},\"cells\":[{}]}}\n",
        json_escape(figure),
        json_f64(scale),
        cells.join(",")
    );
    std::fs::write(path, doc).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    eprintln!("wrote {path}");
}

/// Runs every DaCapo benchmark under both engine-backed GC policies —
/// RV's coenable-lazy and MOP's all-params-dead — with a
/// [`MetricsRegistry`] attached and a forced safepoint sweep at exit,
/// then prints the GC observatory table the `--gc-stats` flag asks for:
/// sweep cycles, pause-time quantiles, reclaim rate, and minimum mutator
/// utilization at two window sizes. Pause clocks only run because the
/// observer is attached; measured (overhead) cells never pay for this.
pub fn print_gc_stats(scale: f64) {
    println!("GC observatory (scale {scale}): monitor-sweep pauses, reclaim rate, MMU");
    println!(
        "{:<12} {:<9} {:>6} {:>8} {:>8} {:>9} {:>9} {:>6} {:>8} {:>8}",
        "benchmark",
        "policy",
        "cycles",
        "p50ns",
        "p99ns",
        "scanned",
        "reclaim",
        "rate%",
        "mmu1ms",
        "mmu10ms"
    );
    for profile in Profile::dacapo() {
        for system in [System::Rv, System::Mop] {
            let mut sink = MonitorSink::with_observers(
                system,
                &Property::EVALUATED,
                EngineConfig::default(),
                |_| MetricsRegistry::new(),
            )
            .with_exit_sweep();
            let _ = rv_workloads::run(&profile, scale, &mut sink);
            let mut metrics = MetricsRegistry::new();
            for (_, monitor) in sink.engine_monitors() {
                for engine in monitor.engines() {
                    metrics.merge_from(engine.observer());
                }
            }
            let kind = GcKind::MonitorSweep;
            let pause = metrics.gc_pause(kind);
            let scanned = metrics.gc_scanned(kind);
            let reclaimed = metrics.gc_reclaimed(kind);
            let rate = if scanned == 0 { 0.0 } else { 100.0 * reclaimed as f64 / scanned as f64 };
            let span = metrics.gc_pauses().iter().map(|&(end, _)| end).max().unwrap_or(0);
            println!(
                "{:<12} {:<9} {:>6} {:>8.0} {:>8.0} {:>9} {:>9} {:>6.1} {:>8.3} {:>8.3}",
                profile.name,
                match system {
                    System::Rv => "coenable",
                    System::Mop => "all-dead",
                    System::Tm => unreachable!("engine policies only"),
                },
                metrics.gc_cycles_total(kind),
                pause.quantile(0.50),
                pause.quantile(0.99),
                scanned,
                reclaimed,
                rate,
                mmu(metrics.gc_pauses(), span, 1_000_000),
                mmu(metrics.gc_pauses(), span, 10_000_000),
            );
        }
    }
    println!(
        "(pauses are monitor-sweep safepoints across all engine blocks; \
         heap-collect cycles are journaled runs' territory — see `rvmon gc-log`)"
    );
}

/// Formats an overhead cell: percentage or `∞`.
#[must_use]
pub fn fmt_overhead(cell: &CellResult) -> String {
    match cell.overhead_pct {
        Some(pct) => format!("{pct:.0}"),
        None => "∞".to_owned(),
    }
}

/// Formats a large count the way the paper does (156M, 1.9M, 44K, 18).
#[must_use]
pub fn fmt_count(n: u64) -> String {
    if n >= 10_000_000 {
        format!("{}M", n / 1_000_000)
    } else if n >= 1_000_000 {
        format!("{:.1}M", n as f64 / 1_000_000.0)
    } else if n >= 10_000 {
        format!("{}K", n / 1_000)
    } else if n >= 1_000 {
        format!("{:.1}K", n as f64 / 1_000.0)
    } else {
        n.to_string()
    }
}

/// Runs the seed-reproducible chaos differential for `property`: every
/// property block under every GC policy over a fault-injecting heap, the
/// engine's verdicts checked against the reference oracle and
/// [`rv_core::Engine::check_invariants`] validated after every injected
/// fault. Returns human-readable descriptions of the failing runs (empty
/// means every run agreed).
#[must_use]
pub fn chaos_check(property: Property, seed: u64, events: usize) -> Vec<String> {
    let spec = rv_props::compiled(property).expect("bundled properties compile");
    let mut failures = Vec::new();
    for block in 0..spec.properties.len() {
        for policy in [GcPolicy::None, GcPolicy::AllParamsDead, GcPolicy::CoenableLazy] {
            match rv_core::run_block(&spec, block, policy, seed, events) {
                Ok(out) if out.verdicts_match() => {}
                Ok(out) => failures.push(format!(
                    "{property:?} block {} {policy:?} seed {seed}: \
                     engine {:?} vs oracle {:?}",
                    block + 1,
                    out.engine_triggers,
                    out.oracle_triggers
                )),
                Err(e) => failures
                    .push(format!("{property:?} block {} {policy:?} seed {seed}: {e}", block + 1)),
            }
        }
    }
    failures
}

/// Parses `--scale X` / `--deadline SECS` style CLI arguments shared by
/// the harness binaries.
#[derive(Clone, Debug)]
pub struct HarnessArgs {
    /// Workload scale factor (default 1.0 = paper counts / 1000).
    pub scale: f64,
    /// Per-cell deadline in seconds (default 30).
    pub deadline_secs: u64,
    /// Baseline repetitions (default 3).
    pub reps: u32,
    /// Where to write a machine-readable JSON report (`--stats-json`).
    pub stats_json: Option<String>,
    /// Where to write the phase-profiler report (`--profile-json`): the
    /// harness reruns its workloads with profilers attached and records
    /// per-phase histograms plus the profiler-on-vs-off overhead.
    pub profile_json: Option<String>,
    /// When set, the harness also runs the deterministic fault-injection
    /// differential with this seed (`--chaos-seed`).
    pub chaos_seed: Option<u64>,
    /// When set, the harness appends the GC observatory table
    /// (`--gc-stats`): per-policy sweep-pause quantiles, reclaim rate,
    /// and MMU — the numbers EXPERIMENTS.md's GC section reports.
    pub gc_stats: bool,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            scale: 1.0,
            deadline_secs: 30,
            reps: 3,
            stats_json: None,
            profile_json: None,
            chaos_seed: None,
            gc_stats: false,
        }
    }
}

impl HarnessArgs {
    /// Parses from `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    #[must_use]
    pub fn from_env() -> HarnessArgs {
        let mut out = HarnessArgs::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let mut take =
                |name: &str| args.next().unwrap_or_else(|| panic!("{name} requires a value"));
            match arg.as_str() {
                "--scale" => out.scale = take("--scale").parse().expect("numeric --scale"),
                "--deadline" => {
                    out.deadline_secs = take("--deadline").parse().expect("numeric --deadline");
                }
                "--reps" => out.reps = take("--reps").parse().expect("numeric --reps"),
                "--stats-json" => out.stats_json = Some(take("--stats-json")),
                "--profile-json" => out.profile_json = Some(take("--profile-json")),
                "--chaos-seed" => {
                    out.chaos_seed =
                        Some(take("--chaos-seed").parse().expect("numeric --chaos-seed"));
                }
                "--gc-stats" => out.gc_stats = true,
                other => panic!(
                    "unknown argument `{other}` \
                     (known: --scale, --deadline, --reps, --stats-json, --profile-json, \
                     --chaos-seed, --gc-stats)"
                ),
            }
        }
        out
    }

    /// The per-cell deadline.
    #[must_use]
    pub fn deadline(&self) -> Duration {
        Duration::from_secs(self.deadline_secs)
    }
}

/// Accumulates measured cells into the machine-readable JSON document the
/// `--stats-json` flag writes (`BENCH_*.json` artifacts for EXPERIMENTS).
#[derive(Debug)]
pub struct StatsReport {
    figure: String,
    scale: f64,
    cells: Vec<String>,
}

impl StatsReport {
    /// An empty report for `figure` (e.g. `"fig10"`) at workload `scale`.
    #[must_use]
    pub fn new(figure: &str, scale: f64) -> StatsReport {
        StatsReport { figure: figure.to_owned(), scale, cells: Vec::new() }
    }

    /// Records one measured overhead/memory cell.
    pub fn push_cell(&mut self, benchmark: &str, property: &str, system: &str, cell: &CellResult) {
        use rv_core::obs::{json_escape, json_f64};
        let mut entry = format!(
            "{{\"benchmark\":\"{}\",\"property\":\"{}\",\"system\":\"{}\"",
            json_escape(benchmark),
            json_escape(property),
            json_escape(system)
        );
        match cell.overhead_pct {
            Some(pct) => entry.push_str(&format!(",\"overhead_pct\":{}", json_f64(pct))),
            None => entry.push_str(",\"overhead_pct\":null,\"timed_out\":true"),
        }
        entry.push_str(&format!(",\"peak_kib\":{}", json_f64(cell.peak_kib)));
        entry.push_str(&format!(",\"triggers\":{}", cell.triggers));
        if let Some(stats) = &cell.stats {
            entry.push_str(&format!(",\"engine\":{}", stats.to_json()));
        }
        entry.push('}');
        self.cells.push(entry);
    }

    /// Records one pre-formatted JSON object as a cell, for figures whose
    /// columns fit neither the overhead nor the statistics shape (e.g. the
    /// recovery harness's journal/checkpoint timings). The caller is
    /// responsible for passing valid JSON.
    pub fn push_raw_cell(&mut self, cell: String) {
        self.cells.push(cell);
    }

    /// Records one statistics-only cell (Figure 10 has no timing).
    pub fn push_stats(&mut self, benchmark: &str, property: &str, stats: &rv_core::EngineStats) {
        use rv_core::obs::json_escape;
        self.cells.push(format!(
            "{{\"benchmark\":\"{}\",\"property\":\"{}\",\"system\":\"RV\",\"engine\":{}}}",
            json_escape(benchmark),
            json_escape(property),
            stats.to_json()
        ));
    }

    /// The full report as one JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"figure\":\"{}\",\"scale\":{},\"cells\":[{}]}}\n",
            rv_core::obs::json_escape(&self.figure),
            rv_core::obs::json_f64(self.scale),
            self.cells.join(",")
        )
    }

    /// Writes the report to `path` when the flag was given; no-op
    /// otherwise. Panics on IO errors — these binaries are CLIs.
    pub fn write_if_requested(&self, path: Option<&str>) {
        if let Some(path) = path {
            std::fs::write(path, self.to_json())
                .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            eprintln!("wrote {path}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monitor_sink_detects_violations_in_workloads() {
        // pmd's profile injects concurrent updates: RV must report them.
        let mut sink = MonitorSink::new(System::Rv, &[Property::UnsafeIter, Property::HasNext]);
        let _ = rv_workloads::run(&Profile::pmd(), 1.0, &mut sink);
        assert!(sink.events > 0);
        assert!(sink.triggers() > 0, "pmd injects UNSAFEITER violations");
    }

    #[test]
    fn all_three_systems_agree_on_trigger_counts() {
        let mut counts = Vec::new();
        for system in System::ALL {
            let mut sink = MonitorSink::new(system, &[Property::UnsafeIter]);
            let _ = rv_workloads::run(&Profile::pmd(), 0.5, &mut sink);
            counts.push(sink.triggers());
        }
        assert_eq!(counts[0], counts[1], "TM vs MOP");
        assert_eq!(counts[1], counts[2], "MOP vs RV");
    }

    #[test]
    fn rv_flags_more_monitors_than_mop_on_bloat() {
        // bloat keeps collections alive long after their iterators die:
        // RV flags those monitors during the run, MOP (all-params-dead)
        // cannot until the collections die too.
        let run = |system: System| {
            let mut sink = MonitorSink::new(system, &[Property::UnsafeIter]);
            let _ = rv_workloads::run(&Profile::bloat(), 0.25, &mut sink);
            sink.engine_stats()[0].1.unwrap()
        };
        let rv = run(System::Rv);
        let mop = run(System::Mop);
        assert_eq!(rv.monitors_created, mop.monitors_created, "same creation discipline");
        assert!(
            rv.monitors_flagged > mop.monitors_flagged.saturating_mul(2),
            "RV flags ({}) should dwarf MOP's ({}) while collections linger",
            rv.monitors_flagged,
            mop.monitors_flagged
        );
        assert!(
            rv.live_monitors < mop.live_monitors,
            "RV live ({}) should undercut MOP live ({})",
            rv.live_monitors,
            mop.live_monitors
        );
    }

    #[test]
    fn live_monitor_budget_is_honored_on_bloat() {
        // The bloat workload keeps collections alive, so the unbudgeted
        // engine accumulates live monitors far past any small cap. With a
        // budget and the full degradation ladder, shedding makes the cap
        // hard: peak live can never exceed it.
        let cap: usize = 128;
        let config = rv_core::EngineConfig {
            max_live_monitors: Some(cap),
            ..rv_core::EngineConfig::default()
        };
        let mut sink = MonitorSink::with_engine_config(System::Rv, &[Property::UnsafeIter], config);
        let _ = rv_workloads::run(&Profile::bloat(), 0.25, &mut sink);
        let stats = sink.engine_stats()[0].1.unwrap();
        assert!(
            stats.peak_live_monitors <= cap,
            "budget violated: peak {} > cap {cap}",
            stats.peak_live_monitors
        );
        assert!(stats.budget_trips > 0, "the cap should actually be hit: {stats}");
        assert!(stats.shed > 0, "the ladder should reach shedding: {stats}");
        assert!(stats.degradations > 0, "degradation transitions should be counted: {stats}");
    }

    #[test]
    fn chaos_check_passes_for_evaluated_properties() {
        for property in Property::EVALUATED {
            let failures = chaos_check(property, 17, 128);
            assert!(failures.is_empty(), "{failures:?}");
        }
    }

    #[test]
    #[should_panic(expected = "Tracematches cannot express")]
    fn tm_rejects_cfg_properties() {
        let _ = MonitorSink::new(System::Tm, &[Property::SafeLock]);
    }

    #[test]
    fn count_formatting_matches_the_paper_style() {
        assert_eq!(fmt_count(156_000_000), "156M");
        assert_eq!(fmt_count(1_900_000), "1.9M");
        assert_eq!(fmt_count(44_000), "44K");
        assert_eq!(fmt_count(1_500), "1.5K");
        assert_eq!(fmt_count(18), "18");
    }

    #[test]
    fn overhead_formatting_renders_infinity_for_timeouts() {
        let finite =
            CellResult { overhead_pct: Some(151.4), peak_kib: 1.0, stats: None, triggers: 0 };
        assert_eq!(fmt_overhead(&finite), "151");
        let timed_out = CellResult { overhead_pct: None, peak_kib: 1.0, stats: None, triggers: 0 };
        assert_eq!(fmt_overhead(&timed_out), "∞");
    }

    #[test]
    fn deadline_aborts_monitoring_midway() {
        use std::time::Duration;
        let mut sink = MonitorSink::new(System::Tm, &[Property::UnsafeMapIter])
            .with_deadline(Duration::from_millis(0));
        let _ = rv_workloads::run(&Profile::bloat(), 0.25, &mut sink);
        assert!(sink.timed_out(), "a zero deadline must fire");
    }

    #[test]
    fn measure_baseline_is_positive() {
        let d = measure_baseline(&Profile::by_name("luindex").unwrap(), 0.5, 2);
        assert!(d.as_nanos() > 0);
    }
}
