//! `loadgen` — multi-tenant load generator for `rvmond`.
//!
//! Drives one logical session per tenant against a running `rvmond`
//! through [`ResilientClient`], generating UnsafeIter event mixes whose
//! shape (iterator fan-out, `next` density, GC cadence) is derived from
//! the DaCapo workload profiles in `rv_workloads`. A `SYNC` barrier
//! every `--sync-every` events measures the *end-to-end durable*
//! latency — the round trip covers queueing, engine processing, and the
//! journal fsync — into an [`Histogram`], and the run ends with a
//! per-tenant SLO table (p50/p99/p99.9) plus optional JSON for
//! EXPERIMENTS.md.
//!
//! Because the transport is the resilient client, a connection fault —
//! or an `rvmon netchaos` proxy in the middle — costs reconnects and
//! resends, never events: the goal-report stream is pulled exactly-once
//! and digested into `trigger_hash`, which a differential harness can
//! compare against a clean run. `--fatal-at N` injects a worker-fatal
//! `!fatal` directive after N events to exercise rvmond's supervisor
//! mid-run.
//!
//! ```text
//! loadgen --addr HOST:PORT --tenant NAME=PROFILE[,panic] ...
//!         [--events N] [--sync-every K] [--max-live N] [--fatal-at N]
//!         [--reload-at N] [--reload-spec FILE]
//!         [--journal-retries N] [--journal-backoff-ms N] [--json]
//! ```

use std::process::ExitCode;
use std::time::{Duration, Instant};

use rv_core::service::{TenantOptions, TENANT_FLAG_ALLOW_FATAL, TENANT_FLAG_PANIC_HANDLER};
use rv_core::{ClientStats, Histogram, ReconnectPolicy, ResilientClient};
use rv_workloads::Profile;

/// The spec every generated tenant monitors (UnsafeIter, the paper's
/// running example).
const SPEC: &str = "\
UnsafeIter(Collection c, Iterator i) {
    event create(c, i);
    event update(c);
    event next(i);
    ere: update* create next* update+ next
    @match { report \"improper Concurrent Modification found!\"; }
}
";

fn usage() -> ExitCode {
    eprintln!(
        "usage: loadgen --addr HOST:PORT --tenant NAME=PROFILE[,panic] [--tenant ...] \
         [--events N] [--sync-every K] [--max-live N] [--fatal-at N] \
         [--reload-at N] [--reload-spec FILE] \
         [--journal-retries N] [--journal-backoff-ms N] [--json]"
    );
    ExitCode::from(2)
}

struct TenantPlan {
    name: String,
    profile: Profile,
    panic_handler: bool,
}

struct TenantOutcome {
    name: String,
    profile: &'static str,
    sent: u64,
    triggers: u64,
    /// FNV-1a over the rendered trigger stream, in key order — two runs
    /// observed the same reports iff the hashes match.
    trigger_hash: u64,
    client: ClientStats,
    failed: Option<String>,
    latency: Histogram,
    elapsed: Duration,
    /// The server's STATS reply for this tenant — carries per-stage
    /// latency percentiles and the SLO budget alongside engine/journal
    /// counters. `None` when the tenant never got far enough to ask.
    server_stats: Option<String>,
}

impl TenantOutcome {
    fn empty(name: &str, profile: &'static str, failed: String) -> TenantOutcome {
        TenantOutcome {
            name: name.to_owned(),
            profile,
            sent: 0,
            triggers: 0,
            trigger_hash: 0,
            client: ClientStats::default(),
            failed: Some(failed),
            latency: Histogram::new(),
            elapsed: Duration::ZERO,
            server_stats: None,
        }
    }
}

/// Extracts the balanced `{...}` object value of `"key":` from a flat
/// hand-rolled JSON document (no strings containing braces, which holds
/// for every producer in this workspace).
fn json_object_field<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":{{");
    let start = json.find(&needle)? + needle.len() - 1;
    let mut depth = 0usize;
    for (i, b) in json[start..].bytes().enumerate() {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&json[start..=start + i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Extracts a bare numeric field `"key":<number>`.
fn json_number_field(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let start = json.find(&needle)? + needle.len();
    let rest = &json[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    let mut h = if h == 0 { 0xcbf2_9ce4_8422_2325 } else { h };
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Derives the event mix from the profile: one `create` per iterator,
/// `nexts_per_iter` `next`s per create, and an `update` rate that keeps
/// roughly `map_fraction` of collections mutated mid-iteration.
struct Generator {
    rng: u64,
    colls: u64,
    iters: Vec<(u64, u64)>,
    p_create: f64,
    p_update: f64,
    gc_period: usize,
    emitted: usize,
}

impl Generator {
    fn new(p: &Profile) -> Generator {
        let nexts = p.nexts_per_iter.max(0.1);
        // Weights: every create is followed by ~nexts `next`s, so the
        // steady-state create share is 1/(1+nexts).
        let p_create = 1.0 / (1.0 + nexts);
        let p_update = (p.map_fraction.clamp(0.01, 0.9)) * p_create;
        Generator {
            rng: p.seed,
            colls: 0,
            iters: Vec::new(),
            p_create,
            p_update,
            gc_period: p.gc_period.max(64),
            emitted: 0,
        }
    }

    fn unit(&mut self) -> f64 {
        (splitmix64(&mut self.rng) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The next trace line (events plus the occasional `!free`/`!gc`).
    fn next_line(&mut self) -> String {
        self.emitted += 1;
        if self.emitted % self.gc_period == 0 && self.iters.len() > 8 {
            // Retire the oldest half of the live iterators, then collect:
            // the monitor GC behind dead params is part of the workload.
            let retire: Vec<(u64, u64)> = self.iters.drain(..self.iters.len() / 2).collect();
            let mut line = String::from("!free");
            for (c, i) in retire {
                line.push_str(&format!(" i{i}"));
                let _ = c;
            }
            line.push_str("\n!gc");
            return line;
        }
        let roll = self.unit();
        if self.iters.is_empty() || roll < self.p_create {
            let c = if self.colls == 0 || self.unit() < 0.5 {
                self.colls += 1;
                self.colls
            } else {
                1 + splitmix64(&mut self.rng) % self.colls
            };
            let i = self.emitted as u64;
            self.iters.push((c, i));
            format!("create c{c} i{i}")
        } else if roll < self.p_create + self.p_update {
            let (c, _) = self.iters[(splitmix64(&mut self.rng) as usize) % self.iters.len()];
            format!("update c{c}")
        } else {
            let (_, i) = self.iters[(splitmix64(&mut self.rng) as usize) % self.iters.len()];
            format!("next i{i}")
        }
    }
}

struct DriveConfig {
    events: u64,
    sync_every: u64,
    max_live: Option<u32>,
    fatal_at: Option<u64>,
    /// After this many events: barrier to quiescence, then hot-reload
    /// the spec through the same session. The quiescent barrier pins
    /// the cutover to a deterministic journal position, which is what
    /// lets a chaos run stay byte-identical to a clean one.
    reload_at: Option<u64>,
    reload_spec: Option<String>,
    journal_retries: Option<u32>,
    journal_backoff_ms: Option<u32>,
}

fn drive_tenant(addr: &str, plan: &TenantPlan, cfg: &DriveConfig) -> TenantOutcome {
    let mut flags = if plan.panic_handler { TENANT_FLAG_PANIC_HANDLER } else { 0 };
    if cfg.fatal_at.is_some() {
        flags |= TENANT_FLAG_ALLOW_FATAL;
    }
    let opts = TenantOptions {
        flags,
        max_live_monitors: cfg.max_live,
        journal_retries: cfg.journal_retries,
        journal_backoff_ms: cfg.journal_backoff_ms,
    };
    // The session id only has to be stable per logical client so that a
    // rerun of the same plan dedups identically server-side.
    let session = fnv1a(0, plan.name.as_bytes()) | 1;
    let policy = ReconnectPolicy { seed: plan.profile.seed | 1, ..ReconnectPolicy::default() };
    let mut client = match ResilientClient::connect(addr, &plan.name, SPEC, opts, session, policy) {
        Ok(c) => c,
        Err(e) => {
            return TenantOutcome::empty(&plan.name, plan.profile.name, format!("connect: {e}"));
        }
    };

    let mut outcome = TenantOutcome {
        name: plan.name.clone(),
        profile: plan.profile.name,
        sent: 0,
        triggers: 0,
        trigger_hash: 0,
        client: ClientStats::default(),
        failed: None,
        latency: Histogram::new(),
        elapsed: Duration::ZERO,
        server_stats: None,
    };
    let mut generator = Generator::new(&plan.profile);
    let mut fatal_pending = cfg.fatal_at;
    let mut reload_pending = cfg.reload_at;
    let started = Instant::now();
    'drive: while outcome.sent < cfg.events {
        for line in generator.next_line().split('\n') {
            if let Err(e) = client.send(line) {
                outcome.failed = Some(format!("send: {e}"));
                break 'drive;
            }
            outcome.sent += 1;
            if fatal_pending == Some(outcome.sent) {
                // Worker-fatal fault injection: the tenant journals the
                // directive, fsyncs, and dies — the supervisor's
                // problem now. Our resend window replays through the
                // restart and the server dedups it.
                fatal_pending = None;
                if let Err(e) = client.send("!fatal") {
                    outcome.failed = Some(format!("send !fatal: {e}"));
                    break 'drive;
                }
            }
        }
        if outcome.sent % cfg.sync_every == 0 {
            let t0 = Instant::now();
            if let Err(e) = client.sync() {
                outcome.failed = Some(format!("sync: {e}"));
                break 'drive;
            }
            let micros = u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
            outcome.latency.record(micros);
        }
        if reload_pending.is_some_and(|n| outcome.sent >= n) {
            reload_pending = None;
            let spec = cfg.reload_spec.as_deref().unwrap_or(SPEC);
            // Quiesce first: with every sent line acknowledged, the
            // cutover lands at a deterministic journal position.
            let reloaded =
                client.sync().and_then(|_| client.reload(fnv1a(0, spec.as_bytes()) | 1, spec));
            if let Err(e) = reloaded {
                outcome.failed = Some(format!("reload: {e}"));
                break 'drive;
            }
        }
    }
    if outcome.failed.is_none() {
        if let Err(e) = client.sync() {
            outcome.failed = Some(format!("final sync: {e}"));
        }
    }
    outcome.elapsed = started.elapsed();

    // Pull the goal-report stream exactly-once (the client filters by
    // its (event_seq, ordinal) HWM) and digest it in key order. The
    // final sync already made every report visible; the extra empty
    // polls absorb stale reply frames a chaotic wire may still deliver.
    if outcome.failed.is_none() {
        let mut empties = 0;
        while empties < 3 {
            match client.poll_triggers(512) {
                Ok(batch) if batch.is_empty() => {
                    empties += 1;
                    std::thread::sleep(Duration::from_millis(10));
                }
                Ok(batch) => {
                    empties = 0;
                    for t in batch {
                        outcome.triggers += 1;
                        outcome.trigger_hash = fnv1a(outcome.trigger_hash, t.render().as_bytes());
                        outcome.trigger_hash = fnv1a(outcome.trigger_hash, b"\n");
                    }
                }
                Err(e) => {
                    outcome.failed = Some(format!("poll: {e}"));
                    break;
                }
            }
        }
    }
    // Pull the server-side view last: the stage histograms now cover
    // every line this run pushed through the pipeline, so the reported
    // percentiles attribute the SYNC round trip we measured client-side.
    if outcome.failed.is_none() {
        outcome.server_stats = client.server_stats_json().ok();
    }
    outcome.client = client.stats();
    let _ = client.bye();
    outcome
}

#[allow(clippy::too_many_lines)]
fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr: Option<String> = None;
    let mut plans: Vec<TenantPlan> = Vec::new();
    let mut json = false;
    let mut cfg = DriveConfig {
        events: 20_000,
        sync_every: 64,
        max_live: None,
        fatal_at: None,
        reload_at: None,
        reload_spec: None,
        journal_retries: None,
        journal_backoff_ms: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => match it.next() {
                Some(v) => addr = Some(v.clone()),
                None => return usage(),
            },
            "--tenant" => {
                let Some(v) = it.next() else { return usage() };
                let Some((name, rest)) = v.split_once('=') else { return usage() };
                let (profile_name, panic_handler) = match rest.split_once(',') {
                    Some((p, "panic")) => (p, true),
                    Some(_) => return usage(),
                    None => (rest, false),
                };
                let Some(profile) = Profile::by_name(profile_name) else {
                    eprintln!("loadgen: unknown workload profile `{profile_name}`");
                    return ExitCode::from(2);
                };
                plans.push(TenantPlan { name: name.to_owned(), profile, panic_handler });
            }
            "--events" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => cfg.events = n,
                None => return usage(),
            },
            "--sync-every" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => cfg.sync_every = n,
                _ => return usage(),
            },
            "--max-live" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => cfg.max_live = Some(n),
                _ => return usage(),
            },
            "--fatal-at" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => cfg.fatal_at = Some(n),
                _ => return usage(),
            },
            "--reload-at" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => cfg.reload_at = Some(n),
                _ => return usage(),
            },
            "--reload-spec" => match it.next().map(std::fs::read_to_string) {
                Some(Ok(src)) => cfg.reload_spec = Some(src),
                Some(Err(e)) => {
                    eprintln!("loadgen: cannot read reload spec: {e}");
                    return ExitCode::from(2);
                }
                None => return usage(),
            },
            "--journal-retries" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => cfg.journal_retries = Some(n),
                _ => return usage(),
            },
            "--journal-backoff-ms" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => cfg.journal_backoff_ms = Some(n),
                None => return usage(),
            },
            "--json" => json = true,
            _ => return usage(),
        }
    }
    let Some(addr) = addr else { return usage() };
    if plans.is_empty() {
        return usage();
    }

    let cfg = std::sync::Arc::new(cfg);
    let handles: Vec<_> = plans
        .into_iter()
        .map(|plan| {
            let addr = addr.clone();
            let cfg = std::sync::Arc::clone(&cfg);
            std::thread::spawn(move || drive_tenant(&addr, &plan, &cfg))
        })
        .collect();
    let outcomes: Vec<TenantOutcome> =
        handles.into_iter().map(|h| h.join().expect("tenant thread panicked")).collect();

    println!(
        "{:<10} {:<10} {:>9} {:>7} {:>9} {:>10} {:>9} {:>9} {:>9}  status",
        "tenant", "profile", "events", "reconn", "triggers", "ev/s", "p50us", "p99us", "p999us"
    );
    let mut failures = 0;
    for o in &outcomes {
        let rate = if o.elapsed.as_secs_f64() > 0.0 {
            o.sent as f64 / o.elapsed.as_secs_f64()
        } else {
            0.0
        };
        println!(
            "{:<10} {:<10} {:>9} {:>7} {:>9} {:>10.0} {:>9.0} {:>9.0} {:>9.0}  {}",
            o.name,
            o.profile,
            o.sent,
            o.client.reconnects,
            o.triggers,
            rate,
            o.latency.quantile(0.50),
            o.latency.quantile(0.99),
            o.latency.quantile(0.999),
            o.failed.as_deref().unwrap_or("ok"),
        );
        if o.failed.is_some() {
            failures += 1;
        }
    }
    // Server-side stage attribution: where the SYNC round trip actually
    // went, per tenant, from the daemon's own stage histograms.
    if outcomes.iter().any(|o| o.server_stats.is_some()) {
        println!();
        println!(
            "{:<10} {:<16} {:>9} {:>9} {:>9} {:>9}",
            "tenant", "stage", "count", "p50us", "p99us", "maxus"
        );
        for o in &outcomes {
            let Some(stats) = o.server_stats.as_deref() else { continue };
            let Some(stages) = json_object_field(stats, "stages") else { continue };
            for stage in [
                "wire_read",
                "admission",
                "queue_wait",
                "engine",
                "journal_append",
                "journal_fsync",
                "trigger_delivery",
            ] {
                let count = json_number_field(stages, &format!("{stage}_count")).unwrap_or(0.0);
                if count == 0.0 {
                    continue;
                }
                println!(
                    "{:<10} {:<16} {:>9.0} {:>9.1} {:>9.1} {:>9.1}",
                    o.name,
                    stage,
                    count,
                    json_number_field(stages, &format!("{stage}_p50_us")).unwrap_or(0.0),
                    json_number_field(stages, &format!("{stage}_p99_us")).unwrap_or(0.0),
                    json_number_field(stages, &format!("{stage}_max_us")).unwrap_or(0.0),
                );
            }
        }
    }
    if json {
        let rows: Vec<String> = outcomes
            .iter()
            .map(|o| {
                format!(
                    "{{\"tenant\":\"{}\",\"profile\":\"{}\",\"events\":{},\
                     \"triggers\":{},\"trigger_hash\":\"{:016x}\",\"elapsed_ms\":{},\
                     \"sync_p50_us\":{:.0},\"sync_p99_us\":{:.0},\"sync_p999_us\":{:.0},\
                     \"client\":{},\"stages\":{},\"slo\":{},\"failed\":{}}}",
                    o.name,
                    o.profile,
                    o.sent,
                    o.triggers,
                    o.trigger_hash,
                    o.elapsed.as_millis(),
                    o.latency.quantile(0.50),
                    o.latency.quantile(0.99),
                    o.latency.quantile(0.999),
                    o.client.to_json(),
                    o.server_stats
                        .as_deref()
                        .and_then(|s| json_object_field(s, "stages"))
                        .unwrap_or("null"),
                    o.server_stats
                        .as_deref()
                        .and_then(|s| json_object_field(s, "slo"))
                        .unwrap_or("null"),
                    o.failed.as_ref().map_or("null".into(), |f| format!("\"{f}\"")),
                )
            })
            .collect();
        println!("[{}]", rows.join(","));
    }
    // A partial run is still a report: exit 1 only when every tenant
    // failed outright.
    if failures == outcomes.len() {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
