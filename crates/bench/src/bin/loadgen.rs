//! `loadgen` — multi-tenant load generator for `rvmond`.
//!
//! Drives one framed TCP connection per tenant against a running
//! `rvmond`, generating UnsafeIter event mixes whose shape (iterator
//! fan-out, `next` density, GC cadence) is derived from the DaCapo
//! workload profiles in `rv_workloads`. A `SYNC` barrier every
//! `--sync-every` events measures the *end-to-end durable* latency —
//! the round trip covers queueing, engine processing, and the journal
//! fsync — into an [`Histogram`], and the run ends with a per-tenant
//! SLO table (p50/p99/p99.9) plus optional JSON for EXPERIMENTS.md.
//!
//! ```text
//! loadgen --addr HOST:PORT --tenant NAME=PROFILE[,panic] ...
//!         [--events N] [--sync-every K] [--max-live N] [--json]
//! ```

use std::io::{BufReader, BufWriter};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use rv_core::service::{
    encode_hello, read_frame, write_frame, TenantOptions, FRAME_BYE, FRAME_EVENT, FRAME_HELLO,
    FRAME_OK, FRAME_REJECT, FRAME_STATS, FRAME_STATS_REPLY, FRAME_SYNC, FRAME_SYNCED,
    REJECT_QUEUE_FULL, TENANT_FLAG_PANIC_HANDLER,
};
use rv_core::Histogram;
use rv_workloads::Profile;

/// The spec every generated tenant monitors (UnsafeIter, the paper's
/// running example).
const SPEC: &str = "\
UnsafeIter(Collection c, Iterator i) {
    event create(c, i);
    event update(c);
    event next(i);
    ere: update* create next* update+ next
    @match { report \"improper Concurrent Modification found!\"; }
}
";

fn usage() -> ExitCode {
    eprintln!(
        "usage: loadgen --addr HOST:PORT --tenant NAME=PROFILE[,panic] [--tenant ...] \
         [--events N] [--sync-every K] [--max-live N] [--json]"
    );
    ExitCode::from(2)
}

struct TenantPlan {
    name: String,
    profile: Profile,
    panic_handler: bool,
}

struct TenantOutcome {
    name: String,
    profile: &'static str,
    sent: u64,
    shed: u64,
    triggers: u64,
    failed: Option<String>,
    latency: Histogram,
    elapsed: Duration,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the event mix from the profile: one `create` per iterator,
/// `nexts_per_iter` `next`s per create, and an `update` rate that keeps
/// roughly `map_fraction` of collections mutated mid-iteration.
struct Generator {
    rng: u64,
    colls: u64,
    iters: Vec<(u64, u64)>,
    p_create: f64,
    p_update: f64,
    gc_period: usize,
    emitted: usize,
}

impl Generator {
    fn new(p: &Profile) -> Generator {
        let nexts = p.nexts_per_iter.max(0.1);
        // Weights: every create is followed by ~nexts `next`s, so the
        // steady-state create share is 1/(1+nexts).
        let p_create = 1.0 / (1.0 + nexts);
        let p_update = (p.map_fraction.clamp(0.01, 0.9)) * p_create;
        Generator {
            rng: p.seed,
            colls: 0,
            iters: Vec::new(),
            p_create,
            p_update,
            gc_period: p.gc_period.max(64),
            emitted: 0,
        }
    }

    fn unit(&mut self) -> f64 {
        (splitmix64(&mut self.rng) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The next trace line (events plus the occasional `!free`/`!gc`).
    fn next_line(&mut self) -> String {
        self.emitted += 1;
        if self.emitted % self.gc_period == 0 && self.iters.len() > 8 {
            // Retire the oldest half of the live iterators, then collect:
            // the monitor GC behind dead params is part of the workload.
            let retire: Vec<(u64, u64)> = self.iters.drain(..self.iters.len() / 2).collect();
            let mut line = String::from("!free");
            for (c, i) in retire {
                line.push_str(&format!(" i{i}"));
                let _ = c;
            }
            line.push_str("\n!gc");
            return line;
        }
        let roll = self.unit();
        if self.iters.is_empty() || roll < self.p_create {
            let c = if self.colls == 0 || self.unit() < 0.5 {
                self.colls += 1;
                self.colls
            } else {
                1 + splitmix64(&mut self.rng) % self.colls
            };
            let i = self.emitted as u64;
            self.iters.push((c, i));
            format!("create c{c} i{i}")
        } else if roll < self.p_create + self.p_update {
            let (c, _) = self.iters[(splitmix64(&mut self.rng) as usize) % self.iters.len()];
            format!("update c{c}")
        } else {
            let (_, i) = self.iters[(splitmix64(&mut self.rng) as usize) % self.iters.len()];
            format!("next i{i}")
        }
    }
}

#[allow(clippy::too_many_lines)]
fn drive_tenant(
    addr: &str,
    plan: &TenantPlan,
    events: u64,
    sync_every: u64,
    max_live: Option<u32>,
) -> std::io::Result<TenantOutcome> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);

    let opts = TenantOptions {
        flags: if plan.panic_handler { TENANT_FLAG_PANIC_HANDLER } else { 0 },
        max_live_monitors: max_live,
    };
    write_frame(&mut writer, FRAME_HELLO, &encode_hello(&plan.name, SPEC, &opts))?;
    let mut outcome = TenantOutcome {
        name: plan.name.clone(),
        profile: plan.profile.name,
        sent: 0,
        shed: 0,
        triggers: 0,
        failed: None,
        latency: Histogram::new(),
        elapsed: Duration::ZERO,
    };
    match read_frame(&mut reader)? {
        Some((FRAME_OK, _)) => {}
        Some((FRAME_REJECT, payload)) => {
            outcome.failed = Some(reject_text(&payload));
            return Ok(outcome);
        }
        other => {
            outcome.failed = Some(format!("unexpected HELLO reply: {other:?}"));
            return Ok(outcome);
        }
    }

    let mut generator = Generator::new(&plan.profile);
    let started = Instant::now();
    'drive: while outcome.sent < events {
        for line in generator.next_line().split('\n') {
            write_frame(&mut writer, FRAME_EVENT, line.as_bytes())?;
            outcome.sent += 1;
        }
        if outcome.sent % sync_every == 0 {
            let token = outcome.sent;
            let t0 = Instant::now();
            write_frame(&mut writer, FRAME_SYNC, &token.to_le_bytes())?;
            // Shed rejections for earlier events may arrive before the
            // barrier reply; drain them into the shed count.
            loop {
                match read_frame(&mut reader)? {
                    Some((FRAME_SYNCED, _)) => break,
                    Some((FRAME_REJECT, payload)) if reject_code(&payload) == REJECT_QUEUE_FULL => {
                        outcome.shed += 1;
                    }
                    Some((FRAME_REJECT, payload)) => {
                        outcome.failed = Some(reject_text(&payload));
                        break 'drive;
                    }
                    other => {
                        outcome.failed = Some(format!("unexpected SYNC reply: {other:?}"));
                        break 'drive;
                    }
                }
            }
            let micros = u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
            outcome.latency.record(micros);
        }
    }
    outcome.elapsed = started.elapsed();

    if outcome.failed.is_none() {
        write_frame(&mut writer, FRAME_STATS, &[])?;
        loop {
            match read_frame(&mut reader)? {
                Some((FRAME_STATS_REPLY, payload)) => {
                    let json = String::from_utf8_lossy(&payload).into_owned();
                    outcome.triggers = json_u64(&json, "\"triggers\":").unwrap_or(0);
                    break;
                }
                Some((FRAME_REJECT, payload)) if reject_code(&payload) == REJECT_QUEUE_FULL => {
                    outcome.shed += 1;
                }
                Some((FRAME_REJECT, payload)) => {
                    outcome.failed = Some(reject_text(&payload));
                    break;
                }
                other => {
                    outcome.failed = Some(format!("unexpected STATS reply: {other:?}"));
                    break;
                }
            }
        }
        let _ = write_frame(&mut writer, FRAME_BYE, &[]);
    }
    Ok(outcome)
}

fn reject_code(payload: &[u8]) -> u16 {
    payload.get(..2).and_then(|b| b.try_into().ok()).map_or(0, u16::from_le_bytes)
}

fn reject_text(payload: &[u8]) -> String {
    let code = reject_code(payload);
    let msg = String::from_utf8_lossy(payload.get(2..).unwrap_or(&[]));
    format!("reject {code}: {msg}")
}

/// Pulls the first integer after `key` out of a flat JSON rendering.
fn json_u64(json: &str, key: &str) -> Option<u64> {
    let at = json.find(key)? + key.len();
    let digits: String = json[at..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

#[allow(clippy::too_many_lines)]
fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr: Option<String> = None;
    let mut plans: Vec<TenantPlan> = Vec::new();
    let mut events: u64 = 20_000;
    let mut sync_every: u64 = 64;
    let mut max_live: Option<u32> = None;
    let mut json = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => match it.next() {
                Some(v) => addr = Some(v.clone()),
                None => return usage(),
            },
            "--tenant" => {
                let Some(v) = it.next() else { return usage() };
                let Some((name, rest)) = v.split_once('=') else { return usage() };
                let (profile_name, panic_handler) = match rest.split_once(',') {
                    Some((p, "panic")) => (p, true),
                    Some(_) => return usage(),
                    None => (rest, false),
                };
                let Some(profile) = Profile::by_name(profile_name) else {
                    eprintln!("loadgen: unknown workload profile `{profile_name}`");
                    return ExitCode::from(2);
                };
                plans.push(TenantPlan { name: name.to_owned(), profile, panic_handler });
            }
            "--events" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => events = n,
                None => return usage(),
            },
            "--sync-every" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => sync_every = n,
                _ => return usage(),
            },
            "--max-live" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => max_live = Some(n),
                _ => return usage(),
            },
            "--json" => json = true,
            _ => return usage(),
        }
    }
    let Some(addr) = addr else { return usage() };
    if plans.is_empty() {
        return usage();
    }

    let handles: Vec<_> = plans
        .into_iter()
        .map(|plan| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                drive_tenant(&addr, &plan, events, sync_every, max_live).unwrap_or_else(|e| {
                    TenantOutcome {
                        name: plan.name.clone(),
                        profile: plan.profile.name,
                        sent: 0,
                        shed: 0,
                        triggers: 0,
                        failed: Some(format!("io error: {e}")),
                        latency: Histogram::new(),
                        elapsed: Duration::ZERO,
                    }
                })
            })
        })
        .collect();
    let outcomes: Vec<TenantOutcome> =
        handles.into_iter().map(|h| h.join().expect("tenant thread panicked")).collect();

    println!(
        "{:<10} {:<10} {:>9} {:>7} {:>9} {:>10} {:>9} {:>9} {:>9}  status",
        "tenant", "profile", "events", "shed", "triggers", "ev/s", "p50us", "p99us", "p999us"
    );
    let mut failures = 0;
    for o in &outcomes {
        let rate = if o.elapsed.as_secs_f64() > 0.0 {
            (o.sent - o.shed) as f64 / o.elapsed.as_secs_f64()
        } else {
            0.0
        };
        println!(
            "{:<10} {:<10} {:>9} {:>7} {:>9} {:>10.0} {:>9.0} {:>9.0} {:>9.0}  {}",
            o.name,
            o.profile,
            o.sent,
            o.shed,
            o.triggers,
            rate,
            o.latency.quantile(0.50),
            o.latency.quantile(0.99),
            o.latency.quantile(0.999),
            o.failed.as_deref().unwrap_or("ok"),
        );
        if o.failed.is_some() {
            failures += 1;
        }
    }
    if json {
        let rows: Vec<String> = outcomes
            .iter()
            .map(|o| {
                format!(
                    "{{\"tenant\":\"{}\",\"profile\":\"{}\",\"events\":{},\"shed\":{},\
                     \"triggers\":{},\"elapsed_ms\":{},\"sync_p50_us\":{:.0},\
                     \"sync_p99_us\":{:.0},\"sync_p999_us\":{:.0},\"failed\":{}}}",
                    o.name,
                    o.profile,
                    o.sent,
                    o.shed,
                    o.triggers,
                    o.elapsed.as_millis(),
                    o.latency.quantile(0.50),
                    o.latency.quantile(0.99),
                    o.latency.quantile(0.999),
                    o.failed.as_ref().map_or("null".into(), |f| format!("\"{f}\"")),
                )
            })
            .collect();
        println!("[{}]", rows.join(","));
    }
    // Panic-tenant runs expect their own failure; the caller decides by
    // reading the table. Exit 1 only when every tenant failed.
    if failures == outcomes.len() {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
