//! Sharded-engine throughput scaling: events/sec at 1/2/4/8 shards on a
//! synthetic high-fanout workload, against the sequential engine.
//!
//! The workload is UNSAFEITER with many live iterators per collection:
//! every `update(c)` steps all of collection `c`'s iterator monitors, so
//! per-event engine work dominates the routing/channel overhead and the
//! partition by owner object (the collection) can actually pay off.
//! Collections are visited round-robin, spreading the owner hash across
//! shards; every event binds the owner, so nothing is broadcast.
//!
//! Usage: `cargo run --release -p rv-bench --bin parallel --
//! [--scale X] [--stats-json BENCH_parallel.json]`

use std::time::{Duration, Instant};

use rv_core::{Binding, EngineConfig, GcPolicy, PropertyMonitor, ShardConfig, ShardedMonitor};
use rv_heap::{Heap, HeapConfig, ObjId};
use rv_logic::{EventId, ParamId};
use rv_props::Property;
use rv_spec::CompiledSpec;

/// Collections (owner objects) the round-robin cycles through.
const COLLECTIONS: usize = 64;
/// Live iterators per collection — the per-event fanout.
const ITERATORS: usize = 16;
/// Shard counts measured; the first is the baseline.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Events per shard batch.
const BATCH: usize = 256;

/// Builds the event stream: per collection, create its iterators, then
/// round-robin `update` events until `events` total.
fn build_trace(spec: &CompiledSpec, heap: &mut Heap, events: usize) -> Vec<(EventId, Binding)> {
    let class = heap.register_class("Obj");
    let frame = heap.enter_frame();
    let colls: Vec<ObjId> = (0..COLLECTIONS).map(|_| heap.alloc(class)).collect();
    let iters: Vec<Vec<ObjId>> =
        (0..COLLECTIONS).map(|_| (0..ITERATORS).map(|_| heap.alloc(class)).collect()).collect();
    for &o in colls.iter().chain(iters.iter().flatten()) {
        heap.pin(o);
    }
    heap.exit_frame(frame);

    let (pc, pi) = (ParamId(0), ParamId(1));
    let create = spec.alphabet.lookup("create").expect("UnsafeIter declares create");
    let update = spec.alphabet.lookup("update").expect("UnsafeIter declares update");
    let mut trace = Vec::with_capacity(events);
    'outer: for round in 0.. {
        for c in 0..COLLECTIONS {
            if trace.len() >= events {
                break 'outer;
            }
            if round < ITERATORS {
                let b = Binding::from_pairs(&[(pc, colls[c]), (pi, iters[c][round])]);
                trace.push((create, b));
            } else {
                trace.push((update, Binding::from_pairs(&[(pc, colls[c])])));
            }
        }
    }
    trace
}

fn engine_config() -> EngineConfig {
    EngineConfig { policy: GcPolicy::CoenableLazy, ..EngineConfig::default() }
}

/// Times the sequential `PropertyMonitor` over the trace.
fn run_sequential(
    spec: &CompiledSpec,
    heap: &Heap,
    trace: &[(EventId, Binding)],
) -> (Duration, u64) {
    let mut monitor = PropertyMonitor::new(spec.clone(), &engine_config());
    let start = Instant::now();
    for &(e, b) in trace {
        monitor.process(heap, e, b);
    }
    monitor.finish(heap);
    (start.elapsed(), monitor.stats().events)
}

/// Times a `ShardedMonitor` with `shards` workers over the trace.
fn run_sharded(
    spec: &CompiledSpec,
    heap: &Heap,
    trace: &[(EventId, Binding)],
    shards: usize,
) -> (Duration, rv_core::EngineStats, u64, u64) {
    let cfg = ShardConfig { shards, batch: BATCH, seed: 0x5EED };
    let mut monitor = ShardedMonitor::new(spec.clone(), &engine_config(), cfg);
    let start = Instant::now();
    let mut session = monitor.session(heap);
    for &(e, b) in trace {
        session.process(e, b);
    }
    drop(session);
    let report = monitor.finish(heap);
    let elapsed = start.elapsed();
    if let Some(e) = report.error {
        panic!("sharded run failed: {e}");
    }
    (elapsed, report.stats, report.routed_events, report.broadcast_events)
}

fn main() {
    let args = rv_bench::HarnessArgs::from_env();
    let events = ((400_000.0 * args.scale) as usize).max(4 * COLLECTIONS * ITERATORS);
    let mut report = rv_bench::StatsReport::new("parallel", args.scale);

    let spec = rv_props::compiled(Property::UnsafeIter).expect("bundled property compiles");
    let mut heap = Heap::new(HeapConfig::manual());
    let trace = build_trace(&spec, &mut heap, events);

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "Sharded throughput: UnsafeIter, {COLLECTIONS} collections × {ITERATORS} iterators, \
         {events} events (scale {}, {cores} core(s) available)",
        args.scale
    );
    if cores < *SHARD_COUNTS.last().unwrap() {
        println!(
            "note: only {cores} core(s) — shard counts beyond that measure overhead, not scaling"
        );
    }
    println!(
        "{:<12} {:>10} {:>10} {:>12} {:>8} {:>10}",
        "engine", "events", "ms", "events/sec", "speedup", "triggers"
    );

    let (seq_elapsed, seq_events) = run_sequential(&spec, &heap, &trace);
    let seq_rate = seq_events as f64 / seq_elapsed.as_secs_f64().max(1e-9);
    println!(
        "{:<12} {:>10} {:>10.2} {:>12.0} {:>8} {:>10}",
        "sequential",
        seq_events,
        seq_elapsed.as_secs_f64() * 1e3,
        seq_rate,
        "-",
        0
    );

    let mut baseline = f64::NAN;
    for shards in SHARD_COUNTS {
        let (elapsed, stats, routed, broadcast) = run_sharded(&spec, &heap, &trace, shards);
        assert_eq!(broadcast, 0, "every UnsafeIter bench event binds the owner");
        assert_eq!(routed, trace.len() as u64);
        let rate = trace.len() as f64 / elapsed.as_secs_f64().max(1e-9);
        if shards == SHARD_COUNTS[0] {
            baseline = rate;
        }
        let speedup = rate / baseline;
        println!(
            "{:<12} {:>10} {:>10.2} {:>12.0} {:>8.2} {:>10}",
            format!("{shards} shard(s)"),
            trace.len(),
            elapsed.as_secs_f64() * 1e3,
            rate,
            speedup,
            stats.triggers
        );
        report.push_raw_cell(format!(
            "{{\"shards\":{shards},\"cores\":{cores},\"events\":{},\"elapsed_ms\":{},\
             \"events_per_sec\":{},\"speedup_vs_1\":{},\"sequential_events_per_sec\":{},\
             \"stats\":{}}}",
            trace.len(),
            rv_core::obs::json_f64(elapsed.as_secs_f64() * 1e3),
            rv_core::obs::json_f64(rate),
            rv_core::obs::json_f64(speedup),
            rv_core::obs::json_f64(seq_rate),
            stats.to_json(),
        ));
    }

    println!();
    println!(
        "routing: owner = collection (ParamId 0); all events routed, none broadcast; \
         batch {BATCH}; speedup is vs the 1-shard sharded engine"
    );
    report.write_if_requested(args.stats_json.as_deref());
}
