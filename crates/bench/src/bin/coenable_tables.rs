//! Prints the coenable artifacts of §3 for every bundled property: the
//! event-level `COENABLE` sets (the paper's worked UNSAFEITER example
//! verbatim), the parameter-level lift of Definition 11, and the
//! minimized ALIVENESS disjuncts of §4.2.2.
//!
//! Usage: `cargo run -p rv-bench --bin coenable_tables`

use rv_logic::Formalism as _;
use rv_props::Property;

fn main() {
    for property in Property::ALL {
        let spec = rv_props::compiled(property).expect("bundled properties compile");
        println!("=== {} ===", property.paper_name());
        for (i, prop) in spec.properties.iter().enumerate() {
            if spec.properties.len() > 1 {
                println!("-- block {} ({:?}, goal {}) --", i + 1, prop.kind, prop.goal);
            } else {
                println!("-- goal {} --", prop.goal);
            }
            match prop.formalism.coenable(prop.goal) {
                Some(co) => {
                    print!("{}", co.display(&spec.alphabet));
                    let lifted = co.lift(&spec.event_def);
                    for e in spec.alphabet.iter() {
                        let sets: Vec<String> = lifted
                            .of(e)
                            .iter()
                            .map(|ps| {
                                let names: Vec<&str> =
                                    ps.iter().map(|p| spec.event_def.param_name(p)).collect();
                                format!("{{{}}}", names.join(", "))
                            })
                            .collect();
                        println!("COENABLEˣ({}) = {{{}}}", spec.alphabet.name(e), sets.join(", "));
                    }
                    let aliveness = lifted.aliveness();
                    for e in spec.alphabet.iter() {
                        let masks: Vec<String> = aliveness
                            .masks(e)
                            .iter()
                            .map(|ps| {
                                let names: Vec<String> = ps
                                    .iter()
                                    .map(|p| format!("live_{}", spec.event_def.param_name(p)))
                                    .collect();
                                if names.is_empty() {
                                    "true".to_owned()
                                } else {
                                    names.join(" ∧ ")
                                }
                            })
                            .collect();
                        let formula =
                            if masks.is_empty() { "false".to_owned() } else { masks.join(" ∨ ") };
                        println!("ALIVENESS({}) = {formula}", spec.alphabet.name(e));
                    }
                }
                None => {
                    println!(
                        "coenable sets unavailable for this goal (engine falls back to \
                         all-params-dead collection)"
                    );
                }
            }
        }
        println!();
    }
}
