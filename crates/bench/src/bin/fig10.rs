//! Regenerates the paper's **Figure 10**: monitoring statistics of the RV
//! system — number of events (E), created monitors (M), monitors flagged
//! unnecessary by the coenable technique (FM), and monitors collected
//! (CM) — for every benchmark × evaluated property.
//!
//! Usage: `cargo run --release -p rv-bench --bin fig10 -- [--scale X]
//! [--stats-json BENCH_FIG10.json] [--profile-json BENCH_PROFILE.json]
//! [--gc-stats]`

use rv_bench::{fmt_count, MonitorSink, StatsReport, System};
use rv_props::Property;
use rv_workloads::Profile;

fn main() {
    let args = rv_bench::HarnessArgs::from_env();
    let mut report = StatsReport::new("fig10", args.scale);
    println!("Figure 10: RV monitoring statistics (scale {})", args.scale);
    print!("{:<12} ", "");
    for p in Property::EVALUATED {
        print!("| {:^27} ", p.paper_name().chars().take(27).collect::<String>());
    }
    println!();
    print!("{:<12} ", "benchmark");
    for _ in Property::EVALUATED {
        print!("| {:>6} {:>6} {:>6} {:>6} ", "E", "M", "FM", "CM");
    }
    println!();

    for profile in Profile::dacapo() {
        print!("{:<12} ", profile.name);
        for property in Property::EVALUATED {
            let mut sink = MonitorSink::new(System::Rv, &[property]);
            let _ = rv_workloads::run(&profile, args.scale, &mut sink);
            let stats = sink.engine_stats()[0].1.expect("RV exposes engine stats");
            report.push_stats(profile.name, property.paper_name(), &stats);
            print!(
                "| {:>6} {:>6} {:>6} {:>6} ",
                fmt_count(stats.events),
                fmt_count(stats.monitors_created),
                fmt_count(stats.monitors_flagged),
                fmt_count(stats.monitors_collected),
            );
        }
        println!();
    }
    println!();
    println!("E events, M monitors created, FM flagged unnecessary, CM collected");
    println!("(HasNext runs both its FSM and LTL blocks; counts aggregate the two)");
    report.write_if_requested(args.stats_json.as_deref());
    if let Some(path) = args.profile_json.as_deref() {
        rv_bench::write_profile_report(path, "fig10", args.scale, args.reps);
    }
    if args.gc_stats {
        println!();
        rv_bench::print_gc_stats(args.scale);
    }

    if let Some(seed) = args.chaos_seed {
        println!();
        println!("chaos differential (seed {seed}, every block x every GC policy):");
        let mut failures = Vec::new();
        for property in Property::EVALUATED {
            let f = rv_bench::chaos_check(property, seed, 256);
            println!(
                "  {:<28} {}",
                property.paper_name(),
                if f.is_empty() { "OK" } else { "FAIL" }
            );
            failures.extend(f);
        }
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("chaos: {f}");
            }
            std::process::exit(1);
        }
    }
}
