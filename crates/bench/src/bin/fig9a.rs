//! Regenerates the paper's **Figure 9 (A)**: average percent runtime
//! overhead of Tracematches (TM), JavaMOP (MOP) and RV on the fifteen
//! DaCapo-like benchmarks × five Iterator-centric properties, plus RV's
//! "ALL" column (all five monitored simultaneously).
//!
//! Usage: `cargo run --release -p rv-bench --bin fig9a -- [--scale X]
//! [--deadline SECS] [--reps N] [--stats-json BENCH_FIG9A.json]
//! [--profile-json BENCH_PROFILE.json] [--gc-stats]`
//!
//! Cells print the percent overhead versus the unmonitored run; `∞` marks
//! cells that exceeded the deadline (the paper's non-terminating
//! Tracematches entries).

use rv_bench::{fmt_overhead, measure_baseline, measure_cell, HarnessArgs, StatsReport, System};
use rv_props::Property;
use rv_workloads::Profile;

fn main() {
    let args = HarnessArgs::from_env();
    let mut report = StatsReport::new("fig9a", args.scale);
    println!(
        "Figure 9 (A): percent runtime overhead (scale {}, deadline {}s, best of {})",
        args.scale, args.deadline_secs, args.reps
    );
    // Group header.
    print!("{:<12} {:>9} ", "", "");
    for p in Property::EVALUATED {
        print!("| {:^20} ", shorten(p.paper_name()));
    }
    println!("| {:>7}", "ALL");
    print!("{:<12} {:>9} ", "benchmark", "base(ms)");
    for _ in Property::EVALUATED {
        print!("| {:>6} {:>6} {:>6} ", "TM", "MOP", "RV");
    }
    println!("| {:>7}", "RV");

    for profile in Profile::dacapo() {
        let baseline = measure_baseline(&profile, args.scale, args.reps);
        print!("{:<12} {:>9.1} ", profile.name, baseline.as_secs_f64() * 1e3);
        for property in Property::EVALUATED {
            print!("|");
            for system in System::ALL {
                let cell = measure_cell(
                    &profile,
                    args.scale,
                    system,
                    &[property],
                    baseline,
                    args.deadline(),
                );
                report.push_cell(profile.name, property.paper_name(), system.label(), &cell);
                print!(" {:>6}", fmt_overhead(&cell));
            }
            print!(" ");
        }
        // The ALL column: five properties at once, RV only (the paper:
        // "which was not possible in other monitoring systems").
        let all = measure_cell(
            &profile,
            args.scale,
            System::Rv,
            &Property::EVALUATED,
            baseline,
            args.deadline(),
        );
        report.push_cell(profile.name, "ALL", System::Rv.label(), &all);
        println!("| {:>7}", fmt_overhead(&all));
    }
    println!();
    println!("cells: percent overhead vs. the unmonitored run; ∞ = deadline exceeded");
    report.write_if_requested(args.stats_json.as_deref());
    if let Some(path) = args.profile_json.as_deref() {
        rv_bench::write_profile_report(path, "fig9a", args.scale, args.reps);
    }
    if args.gc_stats {
        println!();
        rv_bench::print_gc_stats(args.scale);
    }
}

fn shorten(name: &str) -> String {
    name.chars().take(20).collect()
}
