//! Durability overhead and recovery-time harness: the journaled engine
//! versus its unjournaled twin over the paper's evaluated properties.
//!
//! For each property, a seed-reproducible synthetic lifecycle workload
//! (events over a churning pool of parameter objects, with deaths and
//! collections) runs twice — once bare, once with a write-ahead journal
//! and periodic checkpoints — and then the journal is recovered into a
//! fresh monitor, timing the checkpoint restore plus suffix replay.
//!
//! Usage: `cargo run --release -p rv-bench --bin recovery --
//! [--scale X] [--stats-json BENCH_RECOVERY.json]`

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use rv_core::journal::{AUX_FREE, AUX_GC};
use rv_core::snapshot::write_checkpoint;
use rv_core::{
    load_latest_checkpoint, read_journal, Binding, EngineConfig, GcPolicy, JournalStats,
    JournalWriter, PropertyMonitor, Record,
};
use rv_heap::{Heap, HeapConfig, ObjId, SplitMix64};
use rv_logic::EventId;
use rv_props::Property;
use rv_spec::CompiledSpec;

const POOL: usize = 8;
const CHECKPOINT_EVERY: usize = 1024;

/// One step of the lifecycle schedule. Replacement objects for killed
/// pool slots are allocated lazily at the next event that uses the slot,
/// so the journal's event records fully determine allocation order.
enum Step {
    Kill(usize),
    Collect,
    Event(EventId, Vec<(rv_logic::ParamId, usize)>),
}

fn schedule(spec: &CompiledSpec, seed: u64, events: usize) -> Vec<Step> {
    let mut rng = SplitMix64::new(seed ^ 0x1bad_b002_dead_beef);
    let mut steps = Vec::new();
    let mut emitted = 0;
    while emitted < events {
        if rng.chance(0.12) {
            steps.push(Step::Kill(rng.gen_range(POOL)));
        } else if rng.chance(0.05) {
            steps.push(Step::Collect);
        } else {
            let e = EventId(rng.gen_range(spec.alphabet.len()) as u16);
            let slots =
                spec.event_params[e.as_usize()].iter().map(|&p| (p, rng.gen_range(POOL))).collect();
            steps.push(Step::Event(e, slots));
            emitted += 1;
        }
    }
    steps
}

/// The measurements for one property row.
struct Row {
    events: u64,
    bare: Duration,
    journaled: Duration,
    journal: JournalStats,
    checkpoints: u64,
    checkpoint_bytes: u64,
    recover: Duration,
    replayed: u64,
    triggers: u64,
}

/// Runs the schedule without any durability machinery.
fn run_bare(spec: &CompiledSpec, steps: &[Step]) -> (Duration, u64) {
    let config = EngineConfig { policy: GcPolicy::CoenableLazy, ..EngineConfig::default() };
    let mut monitor = PropertyMonitor::new(spec.clone(), &config);
    let mut heap = Heap::new(HeapConfig::manual());
    let class = heap.register_class("Obj");
    let mut pool: Vec<Option<ObjId>> = vec![None; POOL];
    let start = Instant::now();
    for step in steps {
        match step {
            Step::Kill(slot) => {
                if let Some(obj) = pool[*slot].take() {
                    heap.unpin(obj);
                }
            }
            Step::Collect => {
                heap.collect();
            }
            Step::Event(e, slots) => {
                let pairs: Vec<_> = slots
                    .iter()
                    .map(|&(p, s)| {
                        let obj = *pool[s].get_or_insert_with(|| {
                            let frame = heap.enter_frame();
                            let o = heap.alloc(class);
                            heap.pin(o);
                            heap.exit_frame(frame);
                            o
                        });
                        (p, obj)
                    })
                    .collect();
                monitor.process(&heap, *e, Binding::from_pairs(&pairs));
            }
        }
    }
    monitor.finish(&heap);
    (start.elapsed(), monitor.triggers())
}

/// Runs the same schedule with the write-ahead journal and periodic
/// checkpoints, then times a full recovery from the directory.
#[allow(clippy::too_many_lines)]
fn run_journaled(
    spec: &CompiledSpec,
    source: &str,
    steps: &[Step],
    dir: &Path,
) -> (Duration, JournalStats, u64, u64, Duration, u64, u64) {
    let _ = std::fs::remove_dir_all(dir);
    let config = EngineConfig { policy: GcPolicy::CoenableLazy, ..EngineConfig::default() };
    let mut monitor = PropertyMonitor::new(spec.clone(), &config);
    let mut heap = Heap::new(HeapConfig::manual());
    let class = heap.register_class("Obj");
    let mut pool: Vec<Option<ObjId>> = vec![None; POOL];
    let mut journal = JournalWriter::create(dir).expect("create journal");
    let mut since_checkpoint = 0usize;
    let mut generation = 0u64;
    let mut checkpoint_bytes = 0u64;
    let start = Instant::now();
    journal
        .append(&Record::Aux { tag: rv_core::journal::AUX_SPEC, bytes: source.as_bytes().to_vec() })
        .expect("journal spec");
    for step in steps {
        match step {
            Step::Kill(slot) => {
                if let Some(obj) = pool[*slot].take() {
                    journal
                        .append(&Record::Aux {
                            tag: AUX_FREE,
                            bytes: obj.to_bits().to_le_bytes().to_vec(),
                        })
                        .expect("journal free");
                    heap.unpin(obj);
                }
            }
            Step::Collect => {
                journal
                    .append(&Record::Aux { tag: AUX_GC, bytes: Vec::new() })
                    .expect("journal gc");
                heap.collect();
            }
            Step::Event(e, slots) => {
                let pairs: Vec<_> = slots
                    .iter()
                    .map(|&(p, s)| {
                        let obj = *pool[s].get_or_insert_with(|| {
                            let frame = heap.enter_frame();
                            let o = heap.alloc(class);
                            heap.pin(o);
                            heap.exit_frame(frame);
                            o
                        });
                        (p, obj)
                    })
                    .collect();
                let binding = Binding::from_pairs(&pairs);
                journal.append(&Record::Event { event: *e, binding }).expect("journal event");
                monitor.process(&heap, *e, binding);
                since_checkpoint += 1;
                if since_checkpoint >= CHECKPOINT_EVERY {
                    since_checkpoint = 0;
                    journal.sync().expect("sync journal");
                    let payload = monitor.snapshot_bytes().expect("serializable state");
                    checkpoint_bytes += payload.len() as u64;
                    let covered = journal.next_seq();
                    write_checkpoint(dir, generation, covered, &payload).expect("write checkpoint");
                    journal
                        .append(&Record::CheckpointMark { generation, seq: covered })
                        .expect("journal mark");
                    generation += 1;
                }
            }
        }
    }
    monitor.finish(&heap);
    journal.sync().expect("final sync");
    let journaled = start.elapsed();
    let jstats = journal.stats();
    let triggers = monitor.triggers();
    drop(journal);

    // Recovery: scan, restore the newest checkpoint, rebuild the heap
    // from the record prefix, replay the suffix.
    let start = Instant::now();
    let scan = read_journal(dir).expect("scan journal");
    let (checkpoint, skipped) = load_latest_checkpoint(dir, scan.next_seq);
    assert!(skipped.is_empty(), "clean run must not skip checkpoints: {skipped:?}");
    let mut recovered = PropertyMonitor::new(spec.clone(), &config);
    let mut replay_from = 0u64;
    if let Some(cp) = &checkpoint {
        recovered.restore_snapshot(&cp.payload, &cp.file).expect("restore checkpoint");
        replay_from = cp.seq;
    }
    let mut rheap = Heap::new(HeapConfig::manual());
    let rclass = rheap.register_class("Obj");
    let mut known = std::collections::HashSet::new();
    let mut replayed = 0u64;
    for sr in &scan.records {
        match &sr.record {
            Record::Aux { tag, bytes } if *tag == AUX_FREE => {
                for chunk in bytes.chunks_exact(8) {
                    let bits = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
                    rheap.unpin(ObjId::from_bits(bits));
                }
            }
            Record::Aux { tag, .. } if *tag == AUX_GC => {
                rheap.collect();
            }
            Record::Event { event, binding } => {
                for &p in &spec.event_params[event.as_usize()] {
                    let obj = binding.get(p).expect("event binds its declared params");
                    if known.insert(obj.to_bits()) {
                        let frame = rheap.enter_frame();
                        let fresh = rheap.alloc(rclass);
                        rheap.pin(fresh);
                        rheap.exit_frame(frame);
                        assert_eq!(fresh, obj, "heap replay must reproduce ObjIds");
                    }
                }
                if sr.seq >= replay_from {
                    recovered.process(&rheap, *event, *binding);
                    replayed += 1;
                }
            }
            _ => {}
        }
    }
    recovered.reflag_dead_keys(&rheap);
    recovered.check_invariants(&rheap).expect("recovered state is sound");
    recovered.finish(&rheap);
    let recover = start.elapsed();
    assert_eq!(recovered.triggers(), triggers, "recovery must reproduce the verdicts");
    (journaled, jstats, generation, checkpoint_bytes, recover, replayed, triggers)
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    let args = rv_bench::HarnessArgs::from_env();
    let events = ((40_000.0 * args.scale) as usize).max(256);
    let mut report = rv_bench::StatsReport::new("recovery", args.scale);
    let scratch: PathBuf =
        std::env::temp_dir().join(format!("rv-bench-recovery-{}", std::process::id()));

    println!("Durability harness: journaled vs unjournaled lifecycle (scale {})", args.scale);
    println!(
        "{:<28} {:>8} {:>9} {:>9} {:>7} {:>9} {:>5} {:>9} {:>8}",
        "property",
        "events",
        "bare ms",
        "wal ms",
        "ovh %",
        "wal KiB",
        "ckpts",
        "ckpt KiB",
        "rec ms"
    );
    for property in Property::EVALUATED {
        let spec = rv_props::compiled(property).expect("bundled properties compile");
        let source = property.source();
        let steps = schedule(&spec, 42, events);
        let (bare, bare_triggers) = run_bare(&spec, &steps);
        let (journaled, jstats, checkpoints, checkpoint_bytes, recover, replayed, triggers) =
            run_journaled(&spec, source, &steps, &scratch);
        assert_eq!(bare_triggers, triggers, "journaling must not change verdicts");
        let row = Row {
            events: events as u64,
            bare,
            journaled,
            journal: jstats,
            checkpoints,
            checkpoint_bytes,
            recover,
            replayed,
            triggers,
        };
        let overhead = (ms(row.journaled) / ms(row.bare).max(1e-9) - 1.0) * 100.0;
        println!(
            "{:<28} {:>8} {:>9.2} {:>9.2} {:>7.0} {:>9.1} {:>5} {:>9.1} {:>8.2}",
            property.paper_name().chars().take(28).collect::<String>(),
            row.events,
            ms(row.bare),
            ms(row.journaled),
            overhead,
            row.journal.bytes as f64 / 1024.0,
            row.checkpoints,
            row.checkpoint_bytes as f64 / 1024.0,
            ms(row.recover),
        );
        report.push_raw_cell(format!(
            "{{\"property\":\"{}\",\"events\":{},\"bare_ms\":{},\"journaled_ms\":{},\
             \"recover_ms\":{},\"replayed_events\":{},\"checkpoints\":{},\
             \"checkpoint_bytes\":{},\"triggers\":{},\"journal\":{}}}",
            rv_core::obs::json_escape(property.paper_name()),
            row.events,
            rv_core::obs::json_f64(ms(row.bare)),
            rv_core::obs::json_f64(ms(row.journaled)),
            rv_core::obs::json_f64(ms(row.recover)),
            row.replayed,
            row.checkpoints,
            row.checkpoint_bytes,
            row.triggers,
            row.journal.to_json(),
        ));
    }
    let _ = std::fs::remove_dir_all(&scratch);
    println!();
    println!(
        "wal = write-ahead journal (fsync every {CHECKPOINT_EVERY} events at each checkpoint); \
         rec = scan + checkpoint restore + suffix replay"
    );
    report.write_if_requested(args.stats_json.as_deref());
}
