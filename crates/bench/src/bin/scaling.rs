//! The density-scaling experiment behind the paper's `∞` cells: how each
//! system's overhead grows as the number of *coexisting* monitored
//! objects grows (more live collections per round, same lifetime shape).
//!
//! The Tracematches-style engine scans its per-state disjunct sets on
//! every event, so its per-event cost grows with the live-binding count;
//! the indexing-tree engines dispatch through hash lookups and stay flat.
//! The paper's non-terminating Tracematches runs are the far end of this
//! curve (bloat keeps 19 605 collections coexisting at peak — 50× the
//! densest point below).
//!
//! Usage: `cargo run --release -p rv-bench --bin scaling -- [--deadline S]`

use rv_bench::{fmt_overhead, measure_baseline, measure_cell, HarnessArgs, System};
use rv_props::Property;
use rv_workloads::Profile;

fn main() {
    let args = HarnessArgs::from_env();
    println!("Density scaling on bloat / UNSAFEITER: percent overhead vs. coexisting collections");
    println!(
        "{:<10} {:>12} {:>9} | {:>8} {:>8} {:>8}",
        "density", "coexisting", "base(ms)", "TM", "MOP", "RV"
    );
    for factor in [1u32, 2, 4, 8] {
        let mut profile = Profile::bloat();
        // More collections alive at once; fewer rounds so total event
        // volume stays comparable.
        profile.colls_per_round *= factor;
        profile.rounds = (profile.rounds / factor).max(profile.coll_linger_rounds + 2);
        let coexisting = u64::from(profile.colls_per_round) * u64::from(profile.coll_linger_rounds);
        let baseline = measure_baseline(&profile, 1.0, args.reps);
        print!(
            "{:<10} {:>12} {:>9.1} |",
            format!("x{factor}"),
            coexisting,
            baseline.as_secs_f64() * 1e3
        );
        for system in System::ALL {
            let cell = measure_cell(
                &profile,
                1.0,
                system,
                &[Property::UnsafeIter],
                baseline,
                args.deadline(),
            );
            print!(" {:>8}", fmt_overhead(&cell));
        }
        println!();
    }
    println!(
        "\n(∞ = deadline exceeded; TM's column grows with density, the tree engines stay flat)"
    );
}
