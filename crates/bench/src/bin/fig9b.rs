//! Regenerates the paper's **Figure 9 (B)**: peak memory usage of the
//! three systems on every benchmark × property, plus RV's "ALL" column.
//!
//! The measured quantity is the peak monitor-side footprint (monitor
//! instances, indexing trees, disjunct sets), in KiB — the component of
//! the paper's JVM heap numbers the monitor GC technique controls. The
//! simulated program's own heap is identical across systems and omitted.
//!
//! Usage: `cargo run --release -p rv-bench --bin fig9b -- [--scale X]
//! [--deadline SECS] [--stats-json BENCH_FIG9B.json]
//! [--profile-json BENCH_PROFILE.json]`

use rv_bench::{measure_baseline, measure_cell, HarnessArgs, StatsReport, System};
use rv_props::Property;
use rv_workloads::Profile;

fn main() {
    let args = HarnessArgs::from_env();
    let mut report = StatsReport::new("fig9b", args.scale);
    println!(
        "Figure 9 (B): peak monitor-side memory in KiB (scale {}, deadline {}s)",
        args.scale, args.deadline_secs
    );
    print!("{:<12} ", "");
    for p in Property::EVALUATED {
        print!("| {:^23} ", p.paper_name().chars().take(23).collect::<String>());
    }
    println!("| {:>8}", "ALL");
    print!("{:<12} ", "benchmark");
    for _ in Property::EVALUATED {
        print!("| {:>7} {:>7} {:>7} ", "TM", "MOP", "RV");
    }
    println!("| {:>8}", "RV");

    for profile in Profile::dacapo() {
        let baseline = measure_baseline(&profile, args.scale, 1);
        print!("{:<12} ", profile.name);
        for property in Property::EVALUATED {
            print!("|");
            for system in System::ALL {
                let cell = measure_cell(
                    &profile,
                    args.scale,
                    system,
                    &[property],
                    baseline,
                    args.deadline(),
                );
                report.push_cell(profile.name, property.paper_name(), system.label(), &cell);
                print!(" {:>7.1}", cell.peak_kib);
            }
            print!(" ");
        }
        let all = measure_cell(
            &profile,
            args.scale,
            System::Rv,
            &Property::EVALUATED,
            baseline,
            args.deadline(),
        );
        report.push_cell(profile.name, "ALL", System::Rv.label(), &all);
        println!("| {:>8.1}", all.peak_kib);
    }
    println!();
    println!("cells: peak KiB of monitors + indexing structures (sampled every 4096 events)");
    report.write_if_requested(args.stats_json.as_deref());
    if let Some(path) = args.profile_json.as_deref() {
        rv_bench::write_profile_report(path, "fig9b", args.scale, args.reps);
    }
}
