//! Heap statistics.

use std::fmt;

/// Counters accumulated by a [`Heap`](crate::Heap) over its lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Total objects ever allocated.
    pub allocations: u64,
    /// Number of collections run (explicit and automatic).
    pub collections: u64,
    /// Total objects reclaimed by collections.
    pub swept: u64,
    /// Objects currently live.
    pub live: usize,
    /// Maximum number of simultaneously live objects observed.
    pub peak_live: usize,
}

impl HeapStats {
    /// Renders every counter as a flat JSON object (hand-rolled: the
    /// workspace is serde-free).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"allocations\":{},\"collections\":{},\"swept\":{},\"live\":{},\"peak_live\":{}}}",
            self.allocations, self.collections, self.swept, self.live, self.peak_live
        )
    }
}

impl fmt::Display for HeapStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "allocs={} collections={} swept={} live={} peak={}",
            self.allocations, self.collections, self.swept, self.live, self.peak_live
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let s = HeapStats { allocations: 3, collections: 1, swept: 2, live: 1, peak_live: 3 };
        assert_eq!(format!("{s}"), "allocs=3 collections=1 swept=2 live=1 peak=3");
    }
}
