//! Heap statistics.

use std::fmt;

/// Counters accumulated by a [`Heap`](crate::Heap) over its lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Total objects ever allocated.
    pub allocations: u64,
    /// Number of collections run (explicit and automatic).
    pub collections: u64,
    /// Total objects reclaimed by collections.
    pub swept: u64,
    /// Objects currently live.
    pub live: usize,
    /// Maximum number of simultaneously live objects observed.
    pub peak_live: usize,
    /// Total stop-the-world nanoseconds spent in collections.
    pub gc_pause_ns: u64,
}

impl HeapStats {
    /// Renders every counter as a flat JSON object (hand-rolled: the
    /// workspace is serde-free).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"allocations\":{},\"collections\":{},\"swept\":{},\"live\":{},\"peak_live\":{},\
             \"gc_pause_ns\":{}}}",
            self.allocations,
            self.collections,
            self.swept,
            self.live,
            self.peak_live,
            self.gc_pause_ns
        )
    }
}

impl fmt::Display for HeapStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "allocs={} collections={} swept={} live={} peak={}",
            self.allocations, self.collections, self.swept, self.live, self.peak_live
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let s = HeapStats {
            allocations: 3,
            collections: 1,
            swept: 2,
            live: 1,
            peak_live: 3,
            gc_pause_ns: 0,
        };
        assert_eq!(format!("{s}"), "allocs=3 collections=1 swept=2 live=1 peak=3");
        assert!(s.to_json().contains("\"gc_pause_ns\":0"));
    }
}
