//! The heap proper: slots, roots, edges, and the mark-sweep collector.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::object::{ClassId, ObjId, WeakRef};
use crate::stats::HeapStats;

/// One completed heap collection, kept in a bounded in-heap log so
/// observability layers (which rv-heap cannot depend on) can drain and
/// re-emit cycles as their own record types.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HeapCycle {
    /// `true` for an explicit [`Heap::collect`] call; `false` when the
    /// allocation budget (`gc_every_allocs`) triggered the cycle.
    pub forced: bool,
    /// Nanoseconds since heap creation at which the pause ended.
    pub end_ns: u64,
    /// Stop-the-world duration of the mark-sweep in nanoseconds.
    pub pause_ns: u64,
    /// Live objects examined by the cycle (occupancy before).
    pub live_before: u64,
    /// Objects reclaimed.
    pub swept: u64,
    /// Live objects surviving the cycle.
    pub live_after: u64,
}

/// Cap on the per-heap [`HeapCycle`] log; once full, further cycles are
/// counted in [`HeapStats`] but not individually logged.
pub const MAX_HEAP_CYCLES: usize = 1 << 16;

/// Configuration for a [`Heap`].
#[derive(Clone, Debug)]
pub struct HeapConfig {
    /// Run a collection automatically after this many allocations.
    /// `None` disables automatic collection (only explicit
    /// [`Heap::collect`] calls reclaim memory).
    pub gc_every_allocs: Option<usize>,
}

impl Default for HeapConfig {
    fn default() -> Self {
        HeapConfig { gc_every_allocs: Some(4096) }
    }
}

impl HeapConfig {
    /// A configuration that never collects automatically.
    #[must_use]
    pub fn manual() -> Self {
        HeapConfig { gc_every_allocs: None }
    }

    /// A configuration that collects after every `n` allocations.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn auto(n: usize) -> Self {
        assert!(n > 0, "auto-GC period must be positive");
        HeapConfig { gc_every_allocs: Some(n) }
    }
}

/// One heap slot. Freed slots keep their (bumped) generation so stale
/// handles can be detected.
#[derive(Debug)]
struct Slot {
    generation: u32,
    occupied: bool,
    marked: bool,
    class: ClassId,
    /// Outgoing strong references. Duplicates are allowed (a Collection may
    /// be referenced twice); `remove_edge` removes a single occurrence.
    edges: Vec<ObjId>,
    /// Number of times this object is pinned as a long-lived root.
    pin_count: u32,
}

/// A token returned by [`Heap::enter_frame`], consumed by
/// [`Heap::exit_frame`]. Frames follow strict stack discipline, mirroring
/// the call stack of the simulated program.
#[derive(Debug, PartialEq, Eq)]
#[must_use = "a frame token must be passed back to exit_frame"]
pub struct FrameToken {
    depth: usize,
}

/// Fault-injection state (see [`Heap::arm_doom`]): after `fuse` further
/// [`Heap::is_alive`] queries, the `doomed` objects report dead. The query
/// counter is atomic because liveness queries take `&Heap`, and a quiesced
/// heap is shared read-only across shard worker threads (`Heap: Sync`).
struct DoomState {
    queries: AtomicU64,
    fuse: u64,
    doomed: Vec<ObjId>,
}

/// A simulated managed heap: generational slots, a root stack plus pinned
/// roots, reference edges, and a stop-the-world mark-sweep collector.
///
/// See the crate docs for the role this plays in the reproduction.
pub struct Heap {
    config: HeapConfig,
    slots: Vec<Slot>,
    free: Vec<u32>,
    /// Root stack (simulated local variables), with frame boundaries.
    root_stack: Vec<ObjId>,
    frame_bases: Vec<usize>,
    allocs_since_gc: usize,
    live: usize,
    stats: HeapStats,
    class_names: Vec<String>,
    /// Scratch mark stack, retained across collections to avoid churn.
    mark_scratch: Vec<u32>,
    /// Armed fault injection, if any (see [`Heap::arm_doom`]).
    doom: Option<Box<DoomState>>,
    /// Creation instant: time origin for [`HeapCycle::end_ns`].
    epoch: Instant,
    /// Bounded log of completed collections, drained by observers.
    cycles: Vec<HeapCycle>,
}

impl Heap {
    /// Creates an empty heap.
    #[must_use]
    pub fn new(config: HeapConfig) -> Self {
        Heap {
            config,
            slots: Vec::new(),
            free: Vec::new(),
            root_stack: Vec::new(),
            frame_bases: Vec::new(),
            allocs_since_gc: 0,
            live: 0,
            stats: HeapStats::default(),
            class_names: Vec::new(),
            mark_scratch: Vec::new(),
            doom: None,
            epoch: Instant::now(),
            cycles: Vec::new(),
        }
    }

    /// Registers a class name and returns its tag.
    ///
    /// # Panics
    ///
    /// Panics if more than `u16::MAX` classes are registered.
    pub fn register_class(&mut self, name: &str) -> ClassId {
        let id = u16::try_from(self.class_names.len()).expect("too many classes");
        self.class_names.push(name.to_owned());
        ClassId(id)
    }

    /// The debug name of `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class` was not registered on this heap.
    #[must_use]
    pub fn class_name(&self, class: ClassId) -> &str {
        &self.class_names[usize::from(class.0)]
    }

    /// Allocates a new object of class `class` and pushes it on the current
    /// root frame (a freshly allocated object is referenced by the "local
    /// variable" receiving it). May trigger an automatic collection *before*
    /// the allocation if the configured allocation budget is exhausted.
    pub fn alloc(&mut self, class: ClassId) -> ObjId {
        if let Some(period) = self.config.gc_every_allocs {
            if self.allocs_since_gc >= period {
                self.collect_inner(false);
            }
        }
        self.allocs_since_gc += 1;
        self.stats.allocations += 1;
        let id = match self.free.pop() {
            Some(index) => {
                let slot = &mut self.slots[index as usize];
                debug_assert!(!slot.occupied);
                slot.occupied = true;
                slot.class = class;
                slot.edges.clear();
                slot.pin_count = 0;
                slot.marked = false;
                ObjId { index, generation: slot.generation }
            }
            None => {
                let index = u32::try_from(self.slots.len()).expect("heap exhausted");
                self.slots.push(Slot {
                    generation: 0,
                    occupied: true,
                    marked: false,
                    class,
                    edges: Vec::new(),
                    pin_count: 0,
                });
                ObjId { index, generation: 0 }
            }
        };
        self.live += 1;
        self.stats.peak_live = self.stats.peak_live.max(self.live);
        self.root_stack.push(id);
        id
    }

    /// Number of currently live objects.
    #[must_use]
    pub fn live_count(&self) -> usize {
        self.live
    }

    /// Whether `id` refers to a live object.
    #[must_use]
    pub fn is_alive(&self, id: ObjId) -> bool {
        if let Some(doom) = &self.doom {
            let q = doom.queries.fetch_add(1, Ordering::Relaxed) + 1;
            if q > doom.fuse && doom.doomed.contains(&id) {
                return false;
            }
        }
        self.slots
            .get(id.index as usize)
            .is_some_and(|s| s.occupied && s.generation == id.generation)
    }

    /// The class of live object `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale.
    #[must_use]
    pub fn class_of(&self, id: ObjId) -> ClassId {
        assert!(self.is_alive(id), "class_of on dead object {id}");
        self.slots[id.index as usize].class
    }

    /// Creates a weak reference to live object `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale: a weak reference can only be captured while
    /// the referent is alive (as in Java, where one needs the strong
    /// reference in hand to construct the `WeakReference`).
    pub fn weak_ref(&self, id: ObjId) -> WeakRef {
        assert!(self.is_alive(id), "weak_ref to dead object {id}");
        WeakRef { target: id }
    }

    // ----- roots ----------------------------------------------------------

    /// Opens a new root frame (simulated method entry).
    pub fn enter_frame(&mut self) -> FrameToken {
        self.frame_bases.push(self.root_stack.len());
        FrameToken { depth: self.frame_bases.len() }
    }

    /// Closes the most recent root frame (simulated method exit), dropping
    /// every root pushed since the matching [`Heap::enter_frame`].
    ///
    /// # Panics
    ///
    /// Panics if `token` is not the most recently opened frame.
    pub fn exit_frame(&mut self, token: FrameToken) {
        assert_eq!(
            token.depth,
            self.frame_bases.len(),
            "exit_frame out of order: frames must nest"
        );
        let base = self.frame_bases.pop().expect("no open frame");
        self.root_stack.truncate(base);
    }

    /// Pushes an additional root for `id` onto the current frame
    /// (simulates assigning an existing object to another local).
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale.
    pub fn push_root(&mut self, id: ObjId) {
        assert!(self.is_alive(id), "push_root on dead object {id}");
        self.root_stack.push(id);
    }

    /// Pins `id` as a long-lived root (simulates a static field).
    /// Pins nest: each `pin` must be matched by an `unpin` before the
    /// object becomes collectable.
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale.
    pub fn pin(&mut self, id: ObjId) {
        assert!(self.is_alive(id), "pin on dead object {id}");
        self.slots[id.index as usize].pin_count += 1;
    }

    /// Releases one pin on `id`. Stale handles are ignored (the object is
    /// already gone, so the pin no longer matters).
    ///
    /// # Panics
    ///
    /// Panics if `id` is live but not pinned.
    pub fn unpin(&mut self, id: ObjId) {
        if self.is_alive(id) {
            let slot = &mut self.slots[id.index as usize];
            assert!(slot.pin_count > 0, "unpin without pin on {id}");
            slot.pin_count -= 1;
        }
    }

    // ----- edges ----------------------------------------------------------

    /// Adds a strong reference edge `from → to` (e.g. Iterator → Collection).
    ///
    /// # Panics
    ///
    /// Panics if either handle is stale.
    pub fn add_edge(&mut self, from: ObjId, to: ObjId) {
        assert!(self.is_alive(from), "add_edge from dead object {from}");
        assert!(self.is_alive(to), "add_edge to dead object {to}");
        self.slots[from.index as usize].edges.push(to);
    }

    /// Removes one occurrence of the edge `from → to`, if present. Returns
    /// whether an edge was removed. Stale `from` handles are ignored.
    pub fn remove_edge(&mut self, from: ObjId, to: ObjId) -> bool {
        if !self.is_alive(from) {
            return false;
        }
        let edges = &mut self.slots[from.index as usize].edges;
        if let Some(pos) = edges.iter().position(|&e| e == to) {
            edges.swap_remove(pos);
            true
        } else {
            false
        }
    }

    /// The current outgoing edges of live object `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale.
    #[must_use]
    pub fn edges_of(&self, id: ObjId) -> &[ObjId] {
        assert!(self.is_alive(id), "edges_of on dead object {id}");
        &self.slots[id.index as usize].edges
    }

    // ----- collection -----------------------------------------------------

    /// Runs a full stop-the-world mark-sweep collection and returns the
    /// number of objects reclaimed. Every [`WeakRef`] whose referent is
    /// reclaimed observes the death immediately afterwards. Any armed
    /// fault injection ([`Heap::arm_doom`]) is disarmed first — the
    /// collection reclaims the genuinely unreachable objects, making the
    /// injected deaths real.
    pub fn collect(&mut self) -> usize {
        self.collect_inner(true)
    }

    fn collect_inner(&mut self, forced: bool) -> usize {
        let live_before = self.live;
        let t_pause = Instant::now();
        self.doom = None;
        self.stats.collections += 1;
        self.allocs_since_gc = 0;

        // Mark.
        let mut stack = std::mem::take(&mut self.mark_scratch);
        stack.clear();
        for &root in &self.root_stack {
            if self.slots[root.index as usize].occupied
                && self.slots[root.index as usize].generation == root.generation
                && !self.slots[root.index as usize].marked
            {
                self.slots[root.index as usize].marked = true;
                stack.push(root.index);
            }
        }
        for (index, slot) in self.slots.iter_mut().enumerate() {
            if slot.occupied && slot.pin_count > 0 && !slot.marked {
                slot.marked = true;
                stack.push(index as u32);
            }
        }
        while let Some(index) = stack.pop() {
            // Edges can only point at objects that were alive when the edge
            // was added; an edge to a since-collected object cannot exist
            // because reachability would have kept it alive.
            for i in 0..self.slots[index as usize].edges.len() {
                let target = self.slots[index as usize].edges[i];
                let t = &mut self.slots[target.index as usize];
                if t.occupied && t.generation == target.generation && !t.marked {
                    t.marked = true;
                    stack.push(target.index);
                }
            }
        }
        self.mark_scratch = stack;

        // Sweep.
        let mut swept = 0;
        for (index, slot) in self.slots.iter_mut().enumerate() {
            if slot.occupied {
                if slot.marked {
                    slot.marked = false;
                } else {
                    slot.occupied = false;
                    slot.generation = slot.generation.wrapping_add(1);
                    slot.edges = Vec::new();
                    swept += 1;
                    self.free.push(index as u32);
                }
            }
        }
        self.live -= swept;
        self.stats.swept += swept as u64;
        let pause_ns = u64::try_from(t_pause.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.stats.gc_pause_ns = self.stats.gc_pause_ns.saturating_add(pause_ns);
        if self.cycles.len() < MAX_HEAP_CYCLES {
            self.cycles.push(HeapCycle {
                forced,
                end_ns: u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX),
                pause_ns,
                live_before: live_before as u64,
                swept: swept as u64,
                live_after: self.live as u64,
            });
        }
        swept
    }

    /// Drains the bounded log of completed collections, oldest first.
    /// Observability layers call this after driving the heap to convert
    /// cycles into their own telemetry records.
    pub fn drain_cycles(&mut self) -> Vec<HeapCycle> {
        std::mem::take(&mut self.cycles)
    }

    /// A snapshot of the heap statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> HeapStats {
        let mut s = self.stats;
        s.live = self.live;
        s
    }

    // ----- fault injection ------------------------------------------------

    /// The objects a collection run right now would reclaim, computed by a
    /// non-mutating mark pass. Used by the chaos harness to pick victims
    /// whose early deaths are *legal* (they are already unreachable, so no
    /// future event can involve them).
    #[must_use]
    pub fn unreachable_objects(&self) -> Vec<ObjId> {
        let mut marked = vec![false; self.slots.len()];
        let mut stack: Vec<u32> = Vec::new();
        for &root in &self.root_stack {
            let s = &self.slots[root.index as usize];
            if s.occupied && s.generation == root.generation && !marked[root.index as usize] {
                marked[root.index as usize] = true;
                stack.push(root.index);
            }
        }
        for (index, slot) in self.slots.iter().enumerate() {
            if slot.occupied && slot.pin_count > 0 && !marked[index] {
                marked[index] = true;
                stack.push(index as u32);
            }
        }
        while let Some(index) = stack.pop() {
            for &target in &self.slots[index as usize].edges {
                let t = &self.slots[target.index as usize];
                if t.occupied && t.generation == target.generation && !marked[target.index as usize]
                {
                    marked[target.index as usize] = true;
                    stack.push(target.index);
                }
            }
        }
        let mut out = Vec::new();
        for (index, slot) in self.slots.iter().enumerate() {
            if slot.occupied && !marked[index] {
                out.push(ObjId { index: index as u32, generation: slot.generation });
            }
        }
        out
    }

    /// Arms deterministic fault injection: after `fuse` further
    /// [`Heap::is_alive`] queries, the `doomed` objects report dead — as if
    /// a concurrent collection landed mid-event (between index lookup and
    /// transition, or in the middle of tree maintenance).
    ///
    /// Callers must pass objects that are genuinely unreachable (see
    /// [`Heap::unreachable_objects`]) so the early deaths are legal: the
    /// engine only observes the heap through liveness queries, and a real
    /// collector could have reclaimed exactly these objects at that point.
    /// The next [`Heap::collect`] disarms the injection and makes the
    /// deaths real.
    pub fn arm_doom(&mut self, fuse: u64, doomed: Vec<ObjId>) {
        self.doom = Some(Box::new(DoomState { queries: AtomicU64::new(0), fuse, doomed }));
    }

    /// Disarms fault injection without collecting.
    pub fn disarm_doom(&mut self) {
        self.doom = None;
    }

    /// Whether fault injection is currently armed.
    #[must_use]
    pub fn doom_armed(&self) -> bool {
        self.doom.is_some()
    }
}

impl fmt::Debug for Heap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Heap")
            .field("live", &self.live)
            .field("slots", &self.slots.len())
            .field("roots", &self.root_stack.len())
            .field("frames", &self.frame_bases.len())
            .field("stats", &self.stats)
            .field("doom_armed", &self.doom.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap() -> (Heap, ClassId) {
        let mut h = Heap::new(HeapConfig::manual());
        let c = h.register_class("Obj");
        (h, c)
    }

    /// The sharded engine shares a quiesced heap read-only across worker
    /// threads, so `Heap` must stay `Send + Sync`. This is a compile-time
    /// property; the test exists so removing it is a deliberate act.
    #[test]
    fn heap_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Heap>();
    }

    #[test]
    fn rooted_objects_survive_collection() {
        let (mut h, c) = heap();
        let _f = h.enter_frame();
        let a = h.alloc(c);
        assert_eq!(h.collect(), 0);
        assert!(h.is_alive(a));
    }

    #[test]
    fn unrooted_objects_are_swept() {
        let (mut h, c) = heap();
        let f = h.enter_frame();
        let a = h.alloc(c);
        h.exit_frame(f);
        assert!(h.is_alive(a), "not swept until a collection runs");
        assert_eq!(h.collect(), 1);
        assert!(!h.is_alive(a));
    }

    #[test]
    fn edges_keep_targets_alive() {
        let (mut h, c) = heap();
        let outer = h.enter_frame();
        let coll = h.alloc(c);
        let inner = h.enter_frame();
        let iter = h.alloc(c);
        h.add_edge(iter, coll);
        // Drop the frame rooting `coll`: it must survive through `iter`.
        h.exit_frame(inner);
        h.exit_frame(outer);
        h.push_root_for_test(iter);
        h.collect();
        assert!(h.is_alive(coll));
        assert!(h.is_alive(iter));
    }

    impl Heap {
        fn push_root_for_test(&mut self, id: ObjId) {
            self.root_stack.push(id);
        }
    }

    #[test]
    fn iterator_dies_before_collection_like_the_paper() {
        // The UnsafeIter scenario: the Collection outlives the Iterator.
        let (mut h, c) = heap();
        let _outer = h.enter_frame();
        let coll = h.alloc(c);
        let inner = h.enter_frame();
        let iter = h.alloc(c);
        h.add_edge(iter, coll);
        let weak_iter = h.weak_ref(iter);
        let weak_coll = h.weak_ref(coll);
        h.exit_frame(inner);
        h.collect();
        assert!(!weak_iter.is_alive(&h), "iterator must die");
        assert!(weak_coll.is_alive(&h), "collection must survive");
    }

    #[test]
    fn cycles_are_collected() {
        let (mut h, c) = heap();
        let f = h.enter_frame();
        let a = h.alloc(c);
        let b = h.alloc(c);
        h.add_edge(a, b);
        h.add_edge(b, a);
        h.exit_frame(f);
        assert_eq!(h.collect(), 2);
    }

    #[test]
    fn pin_keeps_alive_until_unpin() {
        let (mut h, c) = heap();
        let f = h.enter_frame();
        let a = h.alloc(c);
        h.pin(a);
        h.exit_frame(f);
        h.collect();
        assert!(h.is_alive(a));
        h.unpin(a);
        h.collect();
        assert!(!h.is_alive(a));
    }

    #[test]
    fn nested_pins_require_matching_unpins() {
        let (mut h, c) = heap();
        let f = h.enter_frame();
        let a = h.alloc(c);
        h.pin(a);
        h.pin(a);
        h.exit_frame(f);
        h.unpin(a);
        h.collect();
        assert!(h.is_alive(a));
        h.unpin(a);
        h.collect();
        assert!(!h.is_alive(a));
    }

    #[test]
    fn slot_reuse_bumps_generation() {
        let (mut h, c) = heap();
        let f = h.enter_frame();
        let a = h.alloc(c);
        h.exit_frame(f);
        h.collect();
        let _g = h.enter_frame();
        let b = h.alloc(c);
        assert_eq!(a.index(), b.index(), "slot should be reused");
        assert_ne!(a.generation(), b.generation());
        assert!(!h.is_alive(a));
        assert!(h.is_alive(b));
    }

    #[test]
    fn automatic_gc_triggers_on_allocation_budget() {
        let mut h = Heap::new(HeapConfig::auto(10));
        let c = h.register_class("Obj");
        for _ in 0..100 {
            let f = h.enter_frame();
            let _ = h.alloc(c);
            h.exit_frame(f);
        }
        assert!(h.stats().collections >= 9, "collections: {}", h.stats().collections);
        assert!(h.live_count() <= 11);
    }

    #[test]
    fn remove_edge_makes_target_collectable() {
        let (mut h, c) = heap();
        let _f = h.enter_frame();
        let a = h.alloc(c);
        let g = h.enter_frame();
        let b = h.alloc(c);
        h.add_edge(a, b);
        h.exit_frame(g);
        assert!(h.remove_edge(a, b));
        assert!(!h.remove_edge(a, b));
        h.collect();
        assert!(!h.is_alive(b));
        assert!(h.is_alive(a));
    }

    #[test]
    fn duplicate_edges_are_counted() {
        let (mut h, c) = heap();
        let _f = h.enter_frame();
        let a = h.alloc(c);
        let g = h.enter_frame();
        let b = h.alloc(c);
        h.add_edge(a, b);
        h.add_edge(a, b);
        h.exit_frame(g);
        assert!(h.remove_edge(a, b));
        h.collect();
        assert!(h.is_alive(b), "second edge still holds b");
    }

    #[test]
    #[should_panic(expected = "exit_frame out of order")]
    fn frames_must_nest() {
        let (mut h, _) = heap();
        let f1 = h.enter_frame();
        let _f2 = h.enter_frame();
        h.exit_frame(f1);
    }

    #[test]
    #[should_panic(expected = "weak_ref to dead object")]
    fn weak_ref_requires_live_target() {
        let (mut h, c) = heap();
        let f = h.enter_frame();
        let a = h.alloc(c);
        h.exit_frame(f);
        h.collect();
        let _ = h.weak_ref(a);
    }

    #[test]
    fn unreachable_objects_match_what_collect_reclaims() {
        let (mut h, c) = heap();
        let _outer = h.enter_frame();
        let kept = h.alloc(c);
        let inner = h.enter_frame();
        let doomed_a = h.alloc(c);
        let doomed_b = h.alloc(c);
        h.add_edge(doomed_a, doomed_b);
        h.exit_frame(inner);
        let mut unreachable = h.unreachable_objects();
        unreachable.sort_unstable_by_key(|o| o.index());
        assert_eq!(unreachable, vec![doomed_a, doomed_b]);
        assert!(h.is_alive(kept) && h.is_alive(doomed_a), "mark pass must not mutate");
        assert_eq!(h.collect(), 2);
    }

    #[test]
    fn armed_doom_kills_after_the_fuse_and_collect_disarms() {
        let (mut h, c) = heap();
        let _outer = h.enter_frame();
        let kept = h.alloc(c);
        let inner = h.enter_frame();
        let victim = h.alloc(c);
        h.exit_frame(inner);
        h.arm_doom(2, vec![victim]);
        assert!(h.is_alive(victim), "query 1: fuse not blown");
        assert!(h.is_alive(victim), "query 2: fuse not blown");
        assert!(!h.is_alive(victim), "query 3: doom reports it dead");
        assert!(h.is_alive(kept), "non-doomed objects unaffected");
        h.collect();
        assert!(!h.doom_armed());
        assert!(!h.is_alive(victim), "death was made real");
        assert!(h.is_alive(kept));
    }

    #[test]
    fn stats_track_peak_live() {
        let (mut h, c) = heap();
        let f = h.enter_frame();
        for _ in 0..5 {
            let _ = h.alloc(c);
        }
        h.exit_frame(f);
        h.collect();
        let s = h.stats();
        assert_eq!(s.allocations, 5);
        assert_eq!(s.peak_live, 5);
        assert_eq!(s.live, 0);
        assert_eq!(s.swept, 5);
    }
}
