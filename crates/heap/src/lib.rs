//! A simulated managed heap with tracing garbage collection and weak
//! references.
//!
//! The PLDI'11 RV system piggy-backs its monitor garbage collection on the
//! JVM: parameter objects die whenever the JVM collector runs, and Java
//! `WeakReference`s observe those deaths. Rust has neither a tracing
//! collector nor weak-references-to-GC'd-objects, so this crate provides the
//! closest synthetic equivalent: a handle-based object heap with
//!
//! * a *root stack* (modelling local variables of the simulated program) and
//!   *pinned roots* (modelling globals / long-lived fields),
//! * directed *reference edges* between objects (an `Iterator` keeps its
//!   `Collection` alive, never the other way around — the asymmetry at the
//!   heart of the paper's motivating `UnsafeIter` example),
//! * a stop-the-world **mark-sweep** collector, optionally triggered
//!   automatically every *N* allocations, and
//! * [`WeakRef`]s that report their referent dead exactly after the sweep
//!   that reclaimed it.
//!
//! Monitoring code holds only [`WeakRef`]s to parameter objects, so the
//! monitor never extends an object's lifetime — the same discipline the
//! paper's indexing trees follow.
//!
//! # Example
//!
//! ```
//! use rv_heap::{Heap, HeapConfig};
//!
//! let mut heap = Heap::new(HeapConfig::default());
//! let class = heap.register_class("Collection");
//! let frame = heap.enter_frame();
//! let coll = heap.alloc(class);
//! let weak = heap.weak_ref(coll);
//! assert!(weak.is_alive(&heap));
//! heap.exit_frame(frame);
//! heap.collect();
//! assert!(!weak.is_alive(&heap));
//! ```

pub mod chaos;
mod heap;
mod object;
mod stats;

pub use crate::chaos::{ChaosConfig, ChaosHeap, ChaosStats, SplitMix64};
pub use crate::heap::{FrameToken, Heap, HeapConfig, HeapCycle, MAX_HEAP_CYCLES};
pub use crate::object::{ClassId, ObjId, WeakRef};
pub use crate::stats::HeapStats;
