//! Deterministic fault injection for the heap — the adversarial half of
//! the chaos harness.
//!
//! [`ChaosHeap`] wraps a [`Heap`] and, driven by a seed-reproducible
//! in-repo PRNG ([`SplitMix64`]), injects three kinds of faults around
//! each monitored event:
//!
//! * **early-but-legal weak-ref deaths** — a random subset of the objects
//!   a collection would reclaim *right now* ([`Heap::unreachable_objects`])
//!   is doomed behind a short liveness-query fuse ([`Heap::arm_doom`]), so
//!   the deaths land in the middle of event dispatch: between index lookup
//!   and transition, or mid tree-maintenance;
//! * **forced collections** at event boundaries; and
//! * **allocation-pressure spikes** (a burst of immediately-garbage
//!   allocations).
//!
//! The injections are *legal* by construction: doomed objects are already
//! unreachable, so a real collector could have reclaimed them at exactly
//! that point — a monitoring engine that changes its verdicts under these
//! faults is wrong (Theorem 1). The differential chaos suite in `rv-core`
//! exploits this: same trace, same verdicts, any seed.

use crate::heap::{Heap, HeapConfig};
use crate::object::ClassId;

/// A tiny, dependency-free splitmix64 PRNG. Deterministic for a given
/// seed, which is what makes every chaos run reproducible.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn gen_range(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_range over empty range");
        (self.next_u64() % n as u64) as usize
    }

    /// A biased coin flip with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// Injection probabilities and sizes for a [`ChaosHeap`].
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Per-event probability of dooming unreachable objects behind a
    /// liveness-query fuse (mid-event deaths).
    pub doom_prob: f64,
    /// Per-doomed-candidate probability of actually being doomed.
    pub kill_prob: f64,
    /// Per-event probability of a forced collection at the event boundary.
    pub collect_prob: f64,
    /// Per-event probability of an allocation-pressure spike.
    pub spike_prob: f64,
    /// Objects allocated (and immediately dropped) per spike.
    pub spike_size: usize,
    /// Upper bound on the liveness-query fuse: the doom lands after
    /// `0..fuse_max` further `is_alive` queries.
    pub fuse_max: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            doom_prob: 0.35,
            kill_prob: 0.5,
            collect_prob: 0.2,
            spike_prob: 0.1,
            spike_size: 64,
            fuse_max: 24,
        }
    }
}

/// Counters describing what a chaos run actually injected — used by the
/// differential suite to assert the run was not vacuously fault-free.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Events bracketed by [`ChaosHeap::pre_event`]/[`ChaosHeap::post_event`].
    pub events: u64,
    /// Times a doom fuse was armed.
    pub dooms: u64,
    /// Objects doomed across all arms.
    pub doomed_objects: u64,
    /// Forced boundary collections.
    pub forced_collects: u64,
    /// Allocation-pressure spikes.
    pub spikes: u64,
}

/// A [`Heap`] wrapper that injects deterministic, seed-reproducible faults
/// around each event. See the module docs for the fault catalogue.
#[derive(Debug)]
pub struct ChaosHeap {
    heap: Heap,
    rng: SplitMix64,
    config: ChaosConfig,
    stats: ChaosStats,
    scratch_class: Option<ClassId>,
}

impl ChaosHeap {
    /// A chaos heap with default injection rates, seeded with `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        ChaosHeap::with_config(seed, ChaosConfig::default())
    }

    /// A chaos heap with explicit injection rates.
    #[must_use]
    pub fn with_config(seed: u64, config: ChaosConfig) -> Self {
        ChaosHeap {
            heap: Heap::new(HeapConfig::manual()),
            rng: SplitMix64::new(seed),
            config,
            stats: ChaosStats::default(),
            scratch_class: None,
        }
    }

    /// The wrapped heap.
    #[must_use]
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Mutable access to the wrapped heap (allocation, frames, edges).
    pub fn heap_mut(&mut self) -> &mut Heap {
        &mut self.heap
    }

    /// What this run injected so far.
    #[must_use]
    pub fn stats(&self) -> ChaosStats {
        self.stats
    }

    /// Pre-event injection point: maybe force a boundary collection, maybe
    /// arm mid-event dooms. Call immediately before dispatching an event.
    pub fn pre_event(&mut self) {
        self.stats.events += 1;
        if self.rng.chance(self.config.collect_prob) {
            self.stats.forced_collects += 1;
            self.heap.collect();
        }
        if self.rng.chance(self.config.doom_prob) {
            let unreachable = self.heap.unreachable_objects();
            let mut doomed = Vec::new();
            for id in unreachable {
                if self.rng.chance(self.config.kill_prob) {
                    doomed.push(id);
                }
            }
            if !doomed.is_empty() {
                let fuse = self.rng.next_u64() % self.config.fuse_max.max(1);
                self.stats.dooms += 1;
                self.stats.doomed_objects += doomed.len() as u64;
                self.heap.arm_doom(fuse, doomed);
            }
        }
    }

    /// Post-event injection point: finalize any armed dooms (the doomed
    /// objects really are unreachable, so a collection reclaims them) and
    /// maybe inject an allocation-pressure spike. Call right after the
    /// event was dispatched.
    pub fn post_event(&mut self) {
        if self.heap.doom_armed() {
            self.heap.collect();
        }
        if self.rng.chance(self.config.spike_prob) {
            self.stats.spikes += 1;
            self.spike();
        }
    }

    /// Allocates and immediately drops a burst of garbage objects.
    fn spike(&mut self) {
        let cls = match self.scratch_class {
            Some(c) => c,
            None => {
                let c = self.heap.register_class("ChaosGarbage");
                self.scratch_class = Some(c);
                c
            }
        };
        let f = self.heap.enter_frame();
        for _ in 0..self.config.spike_size {
            let _ = self.heap.alloc(cls);
        }
        self.heap.exit_frame(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_spread() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys, "same seed, same stream");
        let mut c = SplitMix64::new(43);
        assert_ne!(xs[0], c.next_u64(), "different seed diverges");
        let f = SplitMix64::new(7).next_f64();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn chaos_runs_are_seed_reproducible() {
        let run = |seed: u64| {
            let mut ch = ChaosHeap::new(seed);
            let cls = ch.heap_mut().register_class("Obj");
            let _f = ch.heap_mut().enter_frame();
            for i in 0..200 {
                ch.pre_event();
                if i % 3 == 0 {
                    let g = ch.heap_mut().enter_frame();
                    let _ = ch.heap_mut().alloc(cls);
                    ch.heap_mut().exit_frame(g);
                }
                ch.post_event();
            }
            ch.stats()
        };
        assert_eq!(run(1), run(1), "same seed, same injections");
        assert_ne!(run(1), run(2), "different seeds diverge");
        let s = run(1);
        assert!(s.dooms > 0 && s.forced_collects > 0 && s.spikes > 0, "{s:?}");
    }

    #[test]
    fn doomed_objects_are_only_ever_unreachable_ones() {
        let mut ch =
            ChaosHeap::with_config(9, ChaosConfig { doom_prob: 1.0, ..Default::default() });
        let cls = ch.heap_mut().register_class("Obj");
        let _f = ch.heap_mut().enter_frame();
        let pinned = ch.heap_mut().alloc(cls);
        ch.heap_mut().pin(pinned);
        for _ in 0..100 {
            ch.pre_event();
            // However the dice land, a reachable object never dies.
            assert!(ch.heap().is_alive(pinned));
            ch.post_event();
            assert!(ch.heap().is_alive(pinned));
        }
    }
}
