//! Object handles, class tags, and weak references.

use std::fmt;

use crate::heap::Heap;

/// A handle to a heap object.
///
/// Handles are *generational*: a slot index plus the generation counter of
/// the slot at allocation time. A stale handle (whose object was swept, even
/// if the slot was reused) can therefore be detected in O(1), which is what
/// makes [`WeakRef`] death observable without a finalizer registry.
///
/// An `ObjId` by itself does **not** keep the object alive; liveness is
/// determined solely by reachability from the heap's roots.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId {
    pub(crate) index: u32,
    pub(crate) generation: u32,
}

impl ObjId {
    /// The slot index of this handle. Stable for the object's lifetime and
    /// usable as a dense key while the object is known to be alive.
    #[must_use]
    pub fn index(self) -> u32 {
        self.index
    }

    /// The allocation generation of this handle.
    #[must_use]
    pub fn generation(self) -> u32 {
        self.generation
    }

    /// Packs the handle into a single `u64`, suitable for hashing or as a
    /// key in external tables. Distinct live objects always pack distinctly.
    #[must_use]
    pub fn to_bits(self) -> u64 {
        (u64::from(self.index) << 32) | u64::from(self.generation)
    }

    /// Reconstructs a handle packed by [`ObjId::to_bits`]. The result may
    /// be stale; check with [`Heap::is_alive`](crate::Heap::is_alive).
    #[must_use]
    pub fn from_bits(bits: u64) -> ObjId {
        ObjId { index: (bits >> 32) as u32, generation: bits as u32 }
    }
}

impl fmt::Debug for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ObjId({}g{})", self.index, self.generation)
    }
}

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}g{}", self.index, self.generation)
    }
}

/// A class tag for heap objects (e.g. `Collection`, `Iterator`).
///
/// Classes are registered on the [`Heap`] with [`Heap::register_class`] and
/// only carry a debug name; the monitoring layers treat objects uniformly.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ClassId(pub(crate) u16);

impl ClassId {
    /// The raw index of this class in the heap's class registry.
    #[must_use]
    pub fn as_u16(self) -> u16 {
        self.0
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "class{}", self.0)
    }
}

/// A weak reference to a heap object.
///
/// A `WeakRef` never keeps its referent alive. After the sweep that reclaims
/// the referent, [`WeakRef::upgrade`] returns `None` and
/// [`WeakRef::is_alive`] returns `false` — the analogue of a Java
/// `WeakReference` whose referent was cleared.
///
/// `WeakRef` hashes and compares by the *identity of the original referent*
/// (its generational handle), so it remains a stable map key even after the
/// referent dies — exactly what the paper's `RVMap` weak keys require.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct WeakRef {
    pub(crate) target: ObjId,
}

impl WeakRef {
    /// The handle this weak reference was created from. The handle may be
    /// stale; check [`WeakRef::is_alive`] before treating it as live.
    #[must_use]
    pub fn target(self) -> ObjId {
        self.target
    }

    /// Returns the referent if it is still alive on `heap`.
    #[must_use]
    pub fn upgrade(self, heap: &Heap) -> Option<ObjId> {
        heap.is_alive(self.target).then_some(self.target)
    }

    /// Whether the referent is still alive on `heap`.
    #[must_use]
    pub fn is_alive(self, heap: &Heap) -> bool {
        heap.is_alive(self.target)
    }
}

impl From<WeakRef> for ObjId {
    fn from(w: WeakRef) -> ObjId {
        w.target
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::{Heap, HeapConfig};

    #[test]
    fn obj_id_packs_uniquely() {
        let a = ObjId { index: 1, generation: 2 };
        let b = ObjId { index: 2, generation: 1 };
        assert_ne!(a.to_bits(), b.to_bits());
        assert_eq!(a.index(), 1);
        assert_eq!(a.generation(), 2);
    }

    #[test]
    fn debug_and_display_are_nonempty() {
        let a = ObjId { index: 3, generation: 7 };
        assert_eq!(format!("{a:?}"), "ObjId(3g7)");
        assert_eq!(format!("{a}"), "#3g7");
        assert_eq!(format!("{}", ClassId(4)), "class4");
    }

    #[test]
    fn weak_ref_identity_survives_death() {
        let mut heap = Heap::new(HeapConfig::default());
        let c = heap.register_class("C");
        let f = heap.enter_frame();
        let o = heap.alloc(c);
        let w1 = heap.weak_ref(o);
        let w2 = heap.weak_ref(o);
        assert_eq!(w1, w2);
        heap.exit_frame(f);
        heap.collect();
        assert_eq!(w1, w2);
        assert!(w1.upgrade(&heap).is_none());
    }
}
