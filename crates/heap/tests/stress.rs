//! Stress and boundary tests for the managed heap: slot reuse under heavy
//! churn, deep reference chains, automatic-collection cadence, and weak
//! reference semantics across generations.

use rv_heap::{Heap, HeapConfig, WeakRef};

#[test]
fn heavy_churn_reuses_slots_without_confusing_handles() {
    let mut heap = Heap::new(HeapConfig::manual());
    let cls = heap.register_class("Obj");
    let _outer = heap.enter_frame();
    let mut stale: Vec<WeakRef> = Vec::new();
    for round in 0..200 {
        let frame = heap.enter_frame();
        let batch: Vec<_> = (0..50).map(|_| heap.alloc(cls)).collect();
        for &o in &batch {
            stale.push(heap.weak_ref(o));
        }
        heap.exit_frame(frame);
        heap.collect();
        // Every previously captured weak ref must be dead, even though its
        // slot has been reused many times.
        for w in &stale {
            assert!(!w.is_alive(&heap), "round {round}: stale weak ref resurrected");
        }
        assert_eq!(heap.live_count(), 0);
    }
    let stats = heap.stats();
    assert_eq!(stats.allocations, 200 * 50);
    assert_eq!(stats.swept, 200 * 50);
    assert!(stats.peak_live <= 50);
}

#[test]
fn deep_chains_survive_through_a_single_root() {
    let mut heap = Heap::new(HeapConfig::manual());
    let cls = heap.register_class("Node");
    let _outer = heap.enter_frame();
    // Build a 10_000-deep chain rooted only at the head.
    let frame = heap.enter_frame();
    let head = heap.alloc(cls);
    let mut prev = head;
    let mut tail = head;
    for _ in 0..10_000 {
        let inner = heap.enter_frame();
        let n = heap.alloc(cls);
        heap.add_edge(prev, n);
        heap.exit_frame(inner);
        prev = n;
        tail = n;
    }
    heap.exit_frame(frame);
    heap.push_root(head);
    let weak_tail = heap.weak_ref(tail);
    heap.collect();
    assert!(weak_tail.is_alive(&heap), "the whole chain hangs off the root");
    assert_eq!(heap.live_count(), 10_001);
}

#[test]
fn automatic_collection_keeps_pace_with_garbage() {
    let mut heap = Heap::new(HeapConfig::auto(64));
    let cls = heap.register_class("Obj");
    let _outer = heap.enter_frame();
    let keeper = heap.alloc(cls);
    heap.pin(keeper);
    for _ in 0..10_000 {
        let frame = heap.enter_frame();
        let _ = heap.alloc(cls);
        heap.exit_frame(frame);
    }
    // The heap never accumulates more than roughly one GC period of
    // garbage.
    assert!(heap.live_count() <= 66, "live: {}", heap.live_count());
    assert!(heap.stats().collections >= 10_000 / 64);
    assert!(heap.is_alive(keeper));
}

#[test]
fn edges_to_long_dead_objects_cannot_be_added() {
    let mut heap = Heap::new(HeapConfig::manual());
    let cls = heap.register_class("Obj");
    let _outer = heap.enter_frame();
    let a = heap.alloc(cls);
    let frame = heap.enter_frame();
    let b = heap.alloc(cls);
    heap.exit_frame(frame);
    heap.collect();
    // `b` is dead; `remove_edge` tolerates it, `add_edge` must panic.
    assert!(!heap.remove_edge(a, b));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        heap.add_edge(a, b);
    }));
    assert!(result.is_err(), "add_edge to a dead target must panic");
}

#[test]
fn weak_refs_distinguish_generations_of_the_same_slot() {
    let mut heap = Heap::new(HeapConfig::manual());
    let cls = heap.register_class("Obj");
    let _outer = heap.enter_frame();
    let frame = heap.enter_frame();
    let first = heap.alloc(cls);
    let w_first = heap.weak_ref(first);
    heap.exit_frame(frame);
    heap.collect();
    let second = heap.alloc(cls); // reuses the slot
    let w_second = heap.weak_ref(second);
    assert_eq!(first.index(), second.index());
    assert_ne!(w_first, w_second);
    assert!(!w_first.is_alive(&heap));
    assert!(w_second.is_alive(&heap));
    assert_eq!(w_second.upgrade(&heap), Some(second));
}

#[test]
fn class_tags_are_preserved_across_collections() {
    let mut heap = Heap::new(HeapConfig::manual());
    let coll_cls = heap.register_class("Collection");
    let iter_cls = heap.register_class("Iterator");
    let _outer = heap.enter_frame();
    let c = heap.alloc(coll_cls);
    let i = heap.alloc(iter_cls);
    heap.collect();
    assert_eq!(heap.class_of(c), coll_cls);
    assert_eq!(heap.class_of(i), iter_cls);
    assert_eq!(heap.class_name(heap.class_of(c)), "Collection");
    assert_eq!(heap.class_name(heap.class_of(i)), "Iterator");
}
