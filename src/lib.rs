//! **rv-monitor** — parametric runtime monitoring with coenable-set
//! monitor garbage collection.
//!
//! A from-scratch Rust reproduction of *"Garbage Collection for Monitoring
//! Parametric Properties"* (Jin, Meredith, Griffith, Roșu — PLDI 2011),
//! including every substrate the paper depends on: a simulated managed
//! heap with weak references ([`heap`]), the four property formalisms and
//! their coenable-set analyses ([`logic`]), a specification language
//! ([`spec`]), the parametric monitoring engine with lazy monitor GC
//! ([`core`]), a Tracematches-style baseline ([`tracematches`]), the
//! paper's property library ([`props`]), and DaCapo-like synthetic
//! workloads ([`workloads`]).
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for the paper-vs-measured comparison.
//!
//! # Quickstart
//!
//! ```
//! use rv_monitor::core::{Binding, Engine, EngineConfig};
//! use rv_monitor::heap::{Heap, HeapConfig};
//! use rv_monitor::props::{compiled, Property};
//! use rv_monitor::logic::ParamId;
//!
//! // Compile the paper's UNSAFEITER spec and monitor a violation.
//! let spec = compiled(Property::UnsafeIter)?;
//! let prop = &spec.properties[0];
//! let mut engine = Engine::new(
//!     prop.formalism.clone(),
//!     spec.event_def.clone(),
//!     prop.goal,
//!     EngineConfig::default(),
//! );
//!
//! let mut heap = Heap::new(HeapConfig::manual());
//! let cls = heap.register_class("Object");
//! let frame = heap.enter_frame();
//! let coll = heap.alloc(cls);
//! let iter = heap.alloc(cls);
//! let (c, i) = (ParamId(0), ParamId(1));
//! let ev = |n: &str| spec.alphabet.lookup(n).unwrap();
//! engine.process(&heap, ev("create"), Binding::from_pairs(&[(c, coll), (i, iter)]));
//! engine.process(&heap, ev("update"), Binding::from_pairs(&[(c, coll)]));
//! engine.process(&heap, ev("next"), Binding::from_pairs(&[(i, iter)]));
//! assert_eq!(engine.stats().triggers, 1);
//! heap.exit_frame(frame);
//! # Ok::<(), rv_monitor::spec::Diagnostic>(())
//! ```

pub use rv_core as core;
pub use rv_heap as heap;
pub use rv_logic as logic;
pub use rv_props as props;
pub use rv_spec as spec;
pub use rv_tracematches as tracematches;
pub use rv_workloads as workloads;
