//! `rvmon` — command-line front end for the RV spec language.
//!
//! ```text
//! rvmon check   <spec.rv>   parse + compile, report diagnostics
//! rvmon analyze <spec.rv>   print coenable sets, parameter lifts, ALIVENESS
//! rvmon fmt     <spec.rv>   pretty-print the spec in canonical form
//! rvmon dfa     <spec.rv>   dump the compiled automaton of each block
//! rvmon prune   <spec.rv> <ev1,ev2,…>
//!                           instrumentation plan, given the events the
//!                           target program can emit
//! rvmon trace   <spec.rv> <events-file> [--kind K] [--event E]
//!               [--binding-contains S]
//!                           replay a textual event trace through the
//!                           monitoring engine, dumping JSONL lifecycle
//!                           records and a JSON metrics snapshot; the
//!                           filter flags keep only records of kind K
//!                           (event, created, flagged, …), records that
//!                           reference event E, or records whose binding
//!                           rendering contains S
//! rvmon explain <spec.rv> <events-file> [--binding SUBSTR] [--summary]
//!                           monitor provenance: replay the trace with a
//!                           provenance ledger on every block, printing
//!                           the full life story (created / flagged with
//!                           cause / collected, with sweep attribution)
//!                           of each monitor whose binding contains
//!                           SUBSTR, and/or the Fig. 10 E/M/FM/CM row
//!                           re-derived from the per-instance records —
//!                           always cross-checked against the engine's
//!                           own statistics as an accounting identity
//!                           (exit 1 on mismatch)
//! rvmon serve   <spec.rv> <events-file> [--port N] [--once]
//!                           run the trace with metrics + phase-profiler
//!                           observers attached, then serve the merged
//!                           Prometheus text exposition over a std-only
//!                           HTTP endpoint on 127.0.0.1 (port 0 — the
//!                           default — picks an ephemeral port, printed
//!                           on stdout; --once answers one request and
//!                           exits, for smoke tests)
//! rvmon top     <journal-dir>
//!                           one-shot cost table for a journaled run:
//!                           re-execute the journal with profiler
//!                           observers and print per-phase span counts,
//!                           p50/p95/p99 and totals, plus the E/M/FM/CM
//!                           counters
//! rvmon chaos   <spec.rv> [--seed N] [--events M] [--shards K]
//!                           deterministic fault-injection differential:
//!                           every property block under every GC policy on
//!                           a chaos heap, checked against the reference
//!                           oracle (seed-reproducible; default seed 1,
//!                           512 events); with `--shards K` (K > 1) the
//!                           battery also runs the sharded engine against
//!                           the sequential engine and the oracle
//! rvmon run     <spec.rv> <events-file> --journal DIR
//!                           [--checkpoint-every N] [--shards K]
//!                           like `trace`, but crash-consistent: every
//!                           event, directive, and goal report is written
//!                           ahead to a checksummed journal in DIR, with a
//!                           full engine checkpoint every N events
//!                           (default 32); with `--shards K` (K > 1) the
//!                           trace runs on the sharded parallel engine
//!                           (checkpoints disabled — recovery replays the
//!                           journal from sequence 0)
//! rvmon recover <journal-dir>
//!                           crash recovery: restore the latest usable
//!                           checkpoint, truncate the torn journal tail,
//!                           replay the durable suffix (suppressing goal
//!                           reports already delivered), and write a fresh
//!                           checkpoint
//! rvmon replay  <journal-dir>
//!                           audit a journal by re-executing it from
//!                           sequence 0, printing triggers and statistics
//! rvmon gc-log  <journal-dir>
//!                           GC observatory: decode the journal's GC-cycle
//!                           telemetry records into a per-cycle table
//!                           (kind, reason, pause, scanned/reclaimed,
//!                           occupancy before→after), per-kind totals,
//!                           and an MMU (minimum mutator utilization)
//!                           summary at several window sizes
//! rvmon timeline <spec.rv> <events-file> [--out FILE]
//!                           run the trace with span-log observers and
//!                           export one Chrome trace-event JSON timeline
//!                           (Perfetto-loadable): one lane per property
//!                           block carrying its phase spans and GC
//!                           cycles; written to FILE or stdout
//! rvmon timeline --daemon <dump.rvfr> [--out FILE]
//!                           convert an rvmond flight-recorder dump into
//!                           the same Chrome trace-event JSON: one lane
//!                           per tenant carrying its request stage spans,
//!                           plus GC cycles, rejects, restarts and
//!                           reloads as instant/complete events
//! rvmon flight  <dump.rvfr>
//!                           render an rvmond flight-recorder dump
//!                           (written on tenant failure, circuit-break,
//!                           or SIGQUIT) as a black-box narrative: the
//!                           event tail plus per-trace stage breakdowns
//! ```
//!
//! The `trace` event file is line-oriented: `event obj…` dispatches an
//! event (objects are named and allocated on first mention), `!free obj`
//! lets an object become garbage, `!gc` runs a heap collection, `!sweep`
//! runs a monitor GC sweep; `#` starts a comment.
//!
//! Exit status: 0 on success, 1 on diagnostics, 2 on usage/IO errors.

use std::process::ExitCode;

use rv_monitor::logic::{AnyFormalism, Formalism as _};
use rv_monitor::spec::{compile, parse, print, CompiledSpec};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `recover`, `replay`, `top`, and `gc-log` operate on a journal
    // directory, not a spec file — dispatch them before the spec-reading
    // path below.
    // `netchaos` is a pure network tool — no spec file, no journal.
    if args.first().map(String::as_str) == Some("netchaos") {
        return netchaos(&args[1..]);
    }
    // `flight` and `timeline --daemon` operate on a flight-recorder dump
    // file, not a spec — dispatch them before the spec-reading path too.
    if args.first().map(String::as_str) == Some("flight") {
        return flight(&args[1..]);
    }
    if args.len() >= 2 && args[0] == "timeline" && args[1] == "--daemon" {
        return timeline_daemon(&args[2..]);
    }
    if let Some(cmd @ ("recover" | "replay" | "top" | "gc-log")) = args.first().map(String::as_str)
    {
        let [_, dir] = args.as_slice() else {
            eprintln!("usage: rvmon {cmd} <journal-dir>");
            return ExitCode::from(2);
        };
        let dir = std::path::Path::new(dir);
        return match cmd {
            "recover" => recover(dir),
            "replay" => replay(dir),
            "gc-log" => gc_log(dir),
            _ => top(dir),
        };
    }
    let (cmd, path, rest) = match args.as_slice() {
        [cmd, path, rest @ ..] => (cmd.as_str(), path.as_str(), rest),
        _ => {
            eprintln!(
                "usage: rvmon <check|analyze|fmt|dfa|prune|trace|explain|serve|timeline|chaos|run> \
                 <spec-file> [emitted-events|events-file|--seed N --events M|--journal DIR] \
                 | rvmon <recover|replay|top|gc-log> <journal-dir>"
            );
            return ExitCode::from(2);
        }
    };
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("rvmon: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let extra = rest.first().map(String::as_str);
    match cmd {
        "check" | "analyze" | "fmt" | "dfa" if !rest.is_empty() => {
            eprintln!("usage: rvmon {cmd} <spec-file>");
            ExitCode::from(2)
        }
        "check" => check(path, &source),
        "analyze" => analyze(path, &source),
        "fmt" => fmt(path, &source),
        "dfa" => dfa(path, &source),
        "prune" => prune(path, &source, extra),
        "trace" => trace(path, &source, rest),
        "explain" => explain(path, &source, rest),
        "serve" => serve(path, &source, rest),
        "timeline" => timeline(path, &source, rest),
        "chaos" => chaos(path, &source, rest),
        "run" => run(path, &source, rest),
        other => {
            eprintln!("rvmon: unknown command `{other}`");
            ExitCode::from(2)
        }
    }
}

/// `rvmon netchaos` — a deterministic seeded TCP fault-injection proxy
/// between a wire client and an rvmond ingest listener. Prints the
/// proxied listen address on stdout (scrape it like rvmond's banner),
/// runs until `--duration-ms` elapses or stdin reaches EOF, then prints
/// the fault counters as JSON.
fn netchaos(rest: &[String]) -> ExitCode {
    use rv_monitor::core::{ChaosProfile, ChaosProxy};

    let usage = || {
        eprintln!(
            "usage: rvmon netchaos --upstream HOST:PORT [--profile k=v,...] [--duration-ms N]\n\
             profile keys: drop dup corrupt truncate reset partition delay (permille), \
             delay_ms, seed"
        );
        ExitCode::from(2)
    };
    let mut upstream: Option<&str> = None;
    let mut profile = ChaosProfile::default();
    let mut duration_ms: u64 = 0;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--upstream" => match it.next() {
                Some(v) => upstream = Some(v),
                None => return usage(),
            },
            "--profile" => match it.next().map(|s| ChaosProfile::parse(s)) {
                Some(Ok(p)) => profile = p,
                Some(Err(e)) => {
                    eprintln!("rvmon: bad chaos profile: {e}");
                    return ExitCode::from(2);
                }
                None => return usage(),
            },
            "--duration-ms" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => duration_ms = n,
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let Some(upstream) = upstream else {
        return usage();
    };
    let mut proxy = match ChaosProxy::start(upstream, profile) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("rvmon: cannot start netchaos proxy: {e}");
            return ExitCode::from(2);
        }
    };
    println!("netchaos listening on {} -> {upstream}", proxy.addr());
    let _ = std::io::Write::flush(&mut std::io::stdout());
    if duration_ms > 0 {
        std::thread::sleep(std::time::Duration::from_millis(duration_ms));
    } else {
        // Foreground mode: live until the parent closes our stdin.
        let mut sink = String::new();
        while std::io::stdin().read_line(&mut sink).map_or(false, |n| n > 0) {
            sink.clear();
        }
    }
    proxy.shutdown();
    println!("{}", proxy.stats().to_json());
    ExitCode::SUCCESS
}

/// The deterministic fault-injection differential: every property block of
/// the spec, under every GC policy, driven over a seed-reproducible random
/// workload on a chaos heap and compared against the Figure 5 oracle.
fn chaos(path: &str, source: &str, rest: &[String]) -> ExitCode {
    use rv_monitor::core::{differential_run, run_block, GcPolicy, ShardConfig};

    let mut seed: u64 = 1;
    let mut events: usize = 512;
    let mut shards: usize = 1;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        let value = |v: Option<&String>| v.and_then(|s| s.parse::<u64>().ok());
        match arg.as_str() {
            "--seed" => match value(it.next()) {
                Some(n) => seed = n,
                None => {
                    eprintln!("rvmon: error: --seed takes a numeric argument");
                    return ExitCode::from(2);
                }
            },
            "--events" => match value(it.next()) {
                Some(n) => events = n as usize,
                None => {
                    eprintln!("rvmon: error: --events takes a numeric argument");
                    return ExitCode::from(2);
                }
            },
            "--shards" => match value(it.next()).filter(|&n| n > 0) {
                Some(n) => shards = n as usize,
                None => {
                    eprintln!("rvmon: error: --shards takes a positive numeric argument");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!(
                    "usage: rvmon chaos <spec-file> [--seed N] [--events M] [--shards K]; \
                     got `{other}`"
                );
                return ExitCode::from(2);
            }
        }
    }
    let spec = match compile_or_report(path, source) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let mut failures = 0u32;
    for block in 0..spec.properties.len() {
        for policy in [GcPolicy::None, GcPolicy::AllParamsDead, GcPolicy::CoenableLazy] {
            match run_block(&spec, block, policy, seed, events) {
                Ok(out) if out.verdicts_match() => println!(
                    "block {} {policy:?} seed {seed}: OK — {} event(s), {} trigger(s), \
                     {} doom(s), {} forced collect(s), {} spike(s)",
                    block + 1,
                    out.trace_len,
                    out.engine_triggers.len(),
                    out.chaos.dooms,
                    out.chaos.forced_collects,
                    out.chaos.spikes
                ),
                Ok(out) => {
                    failures += 1;
                    eprintln!(
                        "block {} {policy:?} seed {seed}: error: VERDICT MISMATCH — \
                         engine reported {:?} but the oracle expected {:?}",
                        block + 1,
                        out.engine_triggers,
                        out.oracle_triggers
                    );
                }
                Err(e) => {
                    failures += 1;
                    eprintln!("block {} {policy:?} seed {seed}: error: {e}", block + 1);
                }
            }
        }
    }
    // With `--shards K`, run the whole-spec sharded differential on top of
    // the per-block battery: sequential engine vs sharded engine vs oracle.
    if shards > 1 {
        for policy in [GcPolicy::None, GcPolicy::AllParamsDead, GcPolicy::CoenableLazy] {
            let cfg = ShardConfig::with_shards(shards);
            match differential_run(&spec, policy, cfg, seed, events) {
                Ok(out) if out.matches() => println!(
                    "sharded {policy:?} x{shards} seed {seed}: OK — {} event(s), \
                     {} trigger(s), {} routed, {} broadcast",
                    out.trace_len,
                    out.report.triggers.len(),
                    out.report.routed_events,
                    out.report.broadcast_events
                ),
                Ok(out) => {
                    failures += 1;
                    eprintln!(
                        "sharded {policy:?} x{shards} seed {seed}: error: \
                         DIFFERENTIAL MISMATCH\n{}",
                        out.mismatches.join("\n")
                    );
                }
                Err(e) => {
                    failures += 1;
                    eprintln!("sharded {policy:?} x{shards} seed {seed}: error: {e}");
                }
            }
        }
    }
    if failures > 0 {
        eprintln!("rvmon chaos: {failures} failing run(s)");
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

/// Drives a textual event trace through `monitor` — the shared core of
/// `trace`, `explain`, and `serve`. Grammar: `event obj…` dispatches an
/// event (objects are named and allocated pinned, in a throwaway frame,
/// on first mention), `!free obj…` unpins, `!gc` collects the heap,
/// `!sweep` runs a monitor-GC sweep on every block; `#` starts a comment.
///
/// Errors carry the `file:line: error: message` rendering ready to print.
fn drive_trace<O: rv_monitor::core::EngineObserver>(
    monitor: &mut rv_monitor::core::PropertyMonitor<O>,
    heap: &mut rv_monitor::heap::Heap,
    events_path: &str,
    events: &str,
) -> Result<(), String> {
    use rv_monitor::core::Binding;

    let alphabet = monitor.spec().alphabet.clone();
    let event_params = monitor.spec().event_params.clone();
    let class = heap.register_class("Obj");
    let mut objects: std::collections::HashMap<String, rv_monitor::heap::ObjId> =
        std::collections::HashMap::new();
    for (lineno, raw) in events.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut words = line.split_whitespace();
        // invariant: `line` is non-empty after trimming, so there is at
        // least one word — but degrade to skipping the line regardless.
        let Some(head) = words.next() else {
            continue;
        };
        let report_err = |msg: String| format!("{events_path}:{}: error: {msg}", lineno + 1);
        match head {
            "!gc" => {
                heap.collect();
            }
            "!sweep" => {
                for engine in monitor.engines_mut() {
                    engine.full_sweep(heap);
                }
            }
            "!free" => {
                for name in words {
                    match objects.get(name) {
                        Some(&obj) => heap.unpin(obj),
                        None => return Err(report_err(format!("unknown object `{name}`"))),
                    }
                }
            }
            event_name => {
                let Some(event) = alphabet.lookup(event_name) else {
                    return Err(report_err(format!(
                        "`{event_name}` is not an event of this spec \
                         (directives are !free, !gc, !sweep)"
                    )));
                };
                let params = &event_params[event.as_usize()];
                let names: Vec<&str> = words.collect();
                if names.len() != params.len() {
                    return Err(report_err(format!(
                        "event `{event_name}` takes {} object(s), got {}",
                        params.len(),
                        names.len()
                    )));
                }
                let pairs: Vec<_> = params
                    .iter()
                    .zip(&names)
                    .map(|(&p, &name)| {
                        let obj = *objects.entry(name.to_owned()).or_insert_with(|| {
                            // Allocate in a throwaway frame so the pin is
                            // the object's only root: `!free` then `!gc`
                            // really reclaims it.
                            let frame = heap.enter_frame();
                            let o = heap.alloc(class);
                            heap.pin(o);
                            heap.exit_frame(frame);
                            o
                        });
                        (p, obj)
                    })
                    .collect();
                if let Err(e) = monitor.try_process(heap, event, Binding::from_pairs(&pairs)) {
                    return Err(report_err(format!("engine error: {e}")));
                }
            }
        }
    }
    Ok(())
}

/// Replays a textual event trace against the compiled spec with a
/// `TraceRecorder` and a `MetricsRegistry` attached to every property
/// block, then dumps what they observed — optionally keeping only the
/// records that pass the `--kind` / `--event` / `--binding-contains`
/// filters (conjunctive when combined).
fn trace(path: &str, source: &str, rest: &[String]) -> ExitCode {
    use rv_monitor::core::{EngineConfig, MetricsRegistry, PropertyMonitor, TraceRecorder};
    use rv_monitor::heap::{Heap, HeapConfig};

    let usage = || {
        eprintln!(
            "usage: rvmon trace <spec-file> <events-file> [--kind K] [--event E] \
             [--binding-contains S]"
        );
        ExitCode::from(2)
    };
    let mut events_path: Option<&str> = None;
    let mut kind: Option<&str> = None;
    let mut event: Option<&str> = None;
    let mut binding_contains: Option<&str> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--kind" => match it.next() {
                Some(v) => kind = Some(v.as_str()),
                None => return usage(),
            },
            "--event" => match it.next() {
                Some(v) => event = Some(v.as_str()),
                None => return usage(),
            },
            "--binding-contains" => match it.next() {
                Some(v) => binding_contains = Some(v.as_str()),
                None => return usage(),
            },
            other if events_path.is_none() && !other.starts_with("--") => {
                events_path = Some(other);
            }
            _ => return usage(),
        }
    }
    let Some(events_path) = events_path else {
        return usage();
    };
    let spec = match compile_or_report(path, source) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let events = match std::fs::read_to_string(events_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("rvmon: cannot read {events_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let alphabet = spec.alphabet.clone();
    let event_def = spec.event_def.clone();
    let config = EngineConfig::default();
    let mut monitor = PropertyMonitor::with_observers(spec, &config, |_| {
        (
            TraceRecorder::new(65_536).with_names(alphabet.clone(), event_def.clone()),
            MetricsRegistry::new(),
        )
    });

    let mut heap = Heap::new(HeapConfig::manual());
    if let Err(msg) = drive_trace(&mut monitor, &mut heap, events_path, &events) {
        eprintln!("{msg}");
        return ExitCode::from(1);
    }
    // Final sweep so CM reflects everything the engines let go of.
    monitor.finish(&heap);

    // The filters work on the rendered JSONL: every record carries its
    // `"kind"` tag, event references appear as `"name"`/`"last_event"`,
    // and bindings as `"binding"`/`"key"` — stable, hand-rolled shapes.
    let filters_on = kind.is_some() || event.is_some() || binding_contains.is_some();
    let keep = |line: &str| -> bool {
        if let Some(k) = kind {
            if !line.contains(&format!("\"kind\":\"{k}\"")) {
                return false;
            }
        }
        if let Some(e) = event {
            let named = |field: &str| {
                line.split(field).nth(1).and_then(|r| r.split('"').next()).is_some_and(|v| v == e)
            };
            if !(named("\"name\":\"") || named("\"last_event\":\"")) {
                return false;
            }
        }
        if let Some(s) = binding_contains {
            let within = |field: &str| {
                line.split(field)
                    .nth(1)
                    .and_then(|r| r.split('"').next())
                    .is_some_and(|v| v.contains(s))
            };
            if !(within("\"binding\":\"") || within("\"key\":\"")) {
                return false;
            }
        }
        true
    };

    let heap_stats = heap.stats();
    for (i, engine) in monitor.engines_mut().iter_mut().enumerate() {
        let stats = engine.stats();
        let (recorder, metrics) = engine.observer_mut();
        let lines: Vec<String> =
            recorder.records().iter().map(|r| recorder.record_json(r)).collect();
        let kept: Vec<&String> = lines.iter().filter(|l| keep(l)).collect();
        if filters_on {
            println!(
                "# block {} trace ({} records, {} dropped, {} filtered out)",
                i + 1,
                kept.len(),
                recorder.dropped(),
                lines.len() - kept.len()
            );
        } else {
            println!(
                "# block {} trace ({} records, {} dropped)",
                i + 1,
                lines.len(),
                recorder.dropped()
            );
        }
        for line in kept {
            println!("{line}");
        }
        println!("# block {} metrics", i + 1);
        println!("{}", metrics.snapshot_json_with(Some(&stats), Some(&heap_stats)));
    }
    ExitCode::SUCCESS
}

/// `rvmon explain` — monitor provenance. Replays the events file with a
/// [`ProvenanceLedger`](rv_monitor::core::ProvenanceLedger) on every
/// property block, then prints the life story of each monitor whose
/// binding rendering contains the `--binding` substring and/or the
/// Fig. 10 E/M/FM/CM row re-derived from the per-instance records
/// (`--summary`; also the default with no flags). Either way, the
/// re-derived row is cross-checked against the engine's own statistics:
/// a mismatch is an accounting bug and exits 1.
fn explain(path: &str, source: &str, rest: &[String]) -> ExitCode {
    use rv_monitor::core::{EngineConfig, PropertyMonitor, ProvenanceLedger};
    use rv_monitor::heap::{Heap, HeapConfig};

    let usage = || {
        eprintln!("usage: rvmon explain <spec-file> <events-file> [--binding SUBSTR] [--summary]");
        ExitCode::from(2)
    };
    let mut events_path: Option<&str> = None;
    let mut binding: Option<&str> = None;
    let mut summary = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--binding" => match it.next() {
                Some(v) => binding = Some(v.as_str()),
                None => return usage(),
            },
            "--summary" => summary = true,
            other if events_path.is_none() && !other.starts_with("--") => {
                events_path = Some(other);
            }
            _ => return usage(),
        }
    }
    let Some(events_path) = events_path else {
        return usage();
    };
    let spec = match compile_or_report(path, source) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let events = match std::fs::read_to_string(events_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("rvmon: cannot read {events_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let alphabet = spec.alphabet.clone();
    let event_def = spec.event_def.clone();
    let config = EngineConfig::default();
    let mut monitor = PropertyMonitor::with_observers(spec, &config, |_| {
        ProvenanceLedger::new().with_names(alphabet.clone(), event_def.clone())
    });
    let mut heap = Heap::new(HeapConfig::manual());
    if let Err(msg) = drive_trace(&mut monitor, &mut heap, events_path, &events) {
        eprintln!("{msg}");
        return ExitCode::from(1);
    }
    monitor.finish(&heap);

    let mut mismatches = 0u32;
    for (i, engine) in monitor.engines().iter().enumerate() {
        let stats = engine.stats();
        let ledger = engine.observer();
        let s = ledger.summary();
        if summary || binding.is_none() {
            println!(
                "block {}: E={} M={} FM={} CM={} ({} still live)",
                i + 1,
                s.events,
                s.created,
                s.flagged,
                s.collected,
                s.created - s.collected
            );
        }
        if let Some(needle) = binding {
            let hits = ledger.find(needle);
            if hits.is_empty() {
                println!("block {}: no monitor instance matches `{needle}`", i + 1);
            }
            for r in hits {
                print!("{}", ledger.story(r));
            }
        }
        // The accounting identity: per-instance records must re-derive
        // the engine's own E/M/FM/CM exactly (ISSUE acceptance check).
        let engine_row = (
            stats.events,
            stats.monitors_created,
            stats.monitors_flagged,
            stats.monitors_collected,
        );
        let ledger_row = (s.events, s.created, s.flagged, s.collected);
        if ledger_row != engine_row {
            mismatches += 1;
            eprintln!(
                "block {}: error: provenance accounting mismatch — ledger E/M/FM/CM {ledger_row:?} \
                 vs engine {engine_row:?}",
                i + 1
            );
        }
    }
    if mismatches > 0 {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

/// `rvmon serve` — run the events file with a `MetricsRegistry` and a
/// `PhaseProfiler` on every property block, then serve the merged
/// Prometheus text exposition over a std-only HTTP endpoint
/// (`std::net::TcpListener`; any path answers `text/plain; version=0.0.4`,
/// except `/healthz`, which answers a plain-text liveness summary).
fn serve(path: &str, source: &str, rest: &[String]) -> ExitCode {
    use std::io::{Read as _, Write as _};

    use rv_monitor::core::{
        prometheus_text, EngineConfig, MetricsRegistry, PhaseProfiler, PropertyMonitor,
    };
    use rv_monitor::heap::{Heap, HeapConfig};

    let usage = || {
        eprintln!(
            "usage: rvmon serve <spec-file> <events-file> [--port N] [--once] [--timeout-ms N]"
        );
        ExitCode::from(2)
    };
    let mut events_path: Option<&str> = None;
    let mut port: u16 = 0;
    let mut once = false;
    let mut timeout_ms: u64 = 2_000;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--port" => match it.next().and_then(|s| s.parse::<u16>().ok()) {
                Some(n) => port = n,
                None => return usage(),
            },
            "--once" => once = true,
            "--timeout-ms" => match it.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(n) if n > 0 => timeout_ms = n,
                _ => return usage(),
            },
            other if events_path.is_none() && !other.starts_with("--") => {
                events_path = Some(other);
            }
            _ => return usage(),
        }
    }
    let Some(events_path) = events_path else {
        return usage();
    };
    let spec = match compile_or_report(path, source) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let events = match std::fs::read_to_string(events_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("rvmon: cannot read {events_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let spec_name = spec.name.clone();
    let config = EngineConfig::default();
    let mut monitor = PropertyMonitor::with_observers(spec, &config, |i| {
        (
            MetricsRegistry::new(),
            PhaseProfiler::new().with_label(&format!("{spec_name}/block{}", i + 1)),
        )
    });
    let mut heap = Heap::new(HeapConfig::manual());
    if let Err(msg) = drive_trace(&mut monitor, &mut heap, events_path, &events) {
        eprintln!("{msg}");
        return ExitCode::from(1);
    }
    monitor.finish(&heap);

    // Merge the per-block registries into one; profilers stay per-block
    // (the exposition labels each by property).
    let mut merged = MetricsRegistry::new();
    let mut profilers = Vec::new();
    for engine in monitor.engines() {
        let (metrics, profiler) = engine.observer();
        merged.merge_from(metrics);
        profilers.push(profiler.clone());
    }
    let body = prometheus_text(&merged, &profilers);
    // `/healthz` liveness: the engine finished the trace, so report what
    // it processed — a scraper that sees this body knows the monitor is
    // alive and did real work, without parsing the full exposition.
    let stats = monitor.stats();
    let health = format!(
        "ok\nblocks {}\nevents {}\ntriggers {}\nmonitors_live {}\n",
        monitor.engines().len(),
        stats.events,
        stats.triggers,
        stats.monitors_created - stats.monitors_collected
    );

    let listener = match std::net::TcpListener::bind(("127.0.0.1", port)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("rvmon: cannot bind 127.0.0.1:{port}: {e}");
            return ExitCode::from(2);
        }
    };
    let addr = match listener.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("rvmon: cannot resolve listener address: {e}");
            return ExitCode::from(2);
        }
    };
    // The actual port goes to stdout (flushed) so harnesses that asked
    // for port 0 can scrape it before connecting.
    println!(
        "serving metrics on http://{addr}/metrics{}",
        if once { " (one request)" } else { "" }
    );
    let _ = std::io::stdout().flush();
    let peer_timeout = Some(std::time::Duration::from_millis(timeout_ms));
    for stream in listener.incoming() {
        let Ok(mut stream) = stream else { continue };
        // The accept loop is serial, so a peer that connects and then
        // stalls must not wedge `/healthz` for everyone behind it: bound
        // both directions and drop the connection on any timeout.
        if stream.set_read_timeout(peer_timeout).is_err()
            || stream.set_write_timeout(peer_timeout).is_err()
        {
            continue;
        }
        // Drain the request head and pull the path out of the request
        // line; the same exposition answers any path except `/healthz`.
        // Requests may arrive in several segments, so keep reading until
        // the blank line ends the head (or the buffer fills / EOF).
        let mut buf = [0u8; 4096];
        let mut n = 0;
        let mut reaped = false;
        while n < buf.len() {
            match stream.read(&mut buf[n..]) {
                Ok(0) => break,
                Err(_) => {
                    // Timeout or reset: reap the peer without answering
                    // (a `--once` serve keeps waiting for a real client).
                    reaped = true;
                    break;
                }
                Ok(read) => {
                    n += read;
                    if buf[..n].windows(4).any(|w| w == b"\r\n\r\n") {
                        break;
                    }
                }
            }
        }
        if reaped || n == 0 {
            let _ = stream.shutdown(std::net::Shutdown::Both);
            continue;
        }
        let head = String::from_utf8_lossy(&buf[..n]);
        let req_path =
            head.lines().next().and_then(|line| line.split_whitespace().nth(1)).unwrap_or("/");
        let (content_type, payload) = if req_path == "/healthz" {
            ("text/plain; charset=utf-8", health.as_str())
        } else {
            ("text/plain; version=0.0.4; charset=utf-8", body.as_str())
        };
        let response = format!(
            "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{payload}",
            payload.len()
        );
        let _ = stream.write_all(response.as_bytes());
        let _ = stream.shutdown(std::net::Shutdown::Both);
        if once {
            break;
        }
    }
    ExitCode::SUCCESS
}

/// `rvmon timeline` — run the events file with a [`SpanLog`] observer on
/// every property block, then export the whole run as one Chrome
/// trace-event JSON timeline (loadable in Perfetto or `chrome://tracing`):
/// one lane per block, carrying its engine phase spans and GC cycles
/// (monitor sweeps, plus the heap's own collections on the first lane).
///
/// [`SpanLog`]: rv_monitor::core::SpanLog
fn timeline(path: &str, source: &str, rest: &[String]) -> ExitCode {
    use rv_monitor::core::{chrome_trace_json, EngineConfig, PropertyMonitor, SpanLog};
    use rv_monitor::heap::{Heap, HeapConfig};

    let usage = || {
        eprintln!("usage: rvmon timeline <spec-file> <events-file> [--out FILE]");
        ExitCode::from(2)
    };
    let mut events_path: Option<&str> = None;
    let mut out_path: Option<&str> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(v) => out_path = Some(v.as_str()),
                None => return usage(),
            },
            other if events_path.is_none() && !other.starts_with("--") => {
                events_path = Some(other);
            }
            _ => return usage(),
        }
    }
    let Some(events_path) = events_path else {
        return usage();
    };
    let spec = match compile_or_report(path, source) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let events = match std::fs::read_to_string(events_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("rvmon: cannot read {events_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let spec_name = spec.name.clone();
    let config = EngineConfig::default();
    let mut monitor = PropertyMonitor::with_observers(spec, &config, |_| SpanLog::new());
    let mut heap = Heap::new(HeapConfig::manual());
    if let Err(msg) = drive_trace(&mut monitor, &mut heap, events_path, &events) {
        eprintln!("{msg}");
        return ExitCode::from(1);
    }
    // Heap collections accumulated over the trace land on the first lane
    // (the heap is shared, so exactly one lane may consume its log).
    monitor.observe_heap_cycles(&mut heap);
    monitor.finish(&heap);

    let lanes: Vec<(String, &SpanLog)> = monitor
        .engines()
        .iter()
        .enumerate()
        .map(|(i, e)| (format!("{spec_name}/block{}", i + 1), e.observer()))
        .collect();
    let dropped: u64 = lanes.iter().map(|(_, log)| log.dropped()).sum();
    if dropped > 0 {
        eprintln!("rvmon: note: {dropped} span(s) beyond the per-lane cap were dropped");
    }
    let trace_json = chrome_trace_json(&lanes);
    match out_path {
        Some(file) => {
            if let Err(e) = std::fs::write(file, &trace_json) {
                eprintln!("rvmon: cannot write {file}: {e}");
                return ExitCode::from(2);
            }
            let spans: usize = lanes.iter().map(|(_, log)| log.spans().len()).sum();
            println!(
                "wrote Chrome trace ({} byte(s), {} lane(s), {} span(s)) to {file}",
                trace_json.len(),
                lanes.len(),
                spans
            );
        }
        None => println!("{trace_json}"),
    }
    ExitCode::SUCCESS
}

/// `rvmon flight` — renders an rvmond flight-recorder dump (the
/// `flight-*.rvfr` black box written on tenant failure, circuit-break,
/// or SIGQUIT) as a human narrative: dump metadata, the bounded event
/// tail, and per-request stage breakdowns for the captured exemplars.
fn flight(rest: &[String]) -> ExitCode {
    use rv_monitor::core::FlightDump;

    let [path] = rest else {
        eprintln!("usage: rvmon flight <dump.rvfr>");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("rvmon: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    match FlightDump::parse(&text) {
        Ok(dump) => {
            print!("{}", dump.render_text());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("rvmon: {path} is not a flight dump: {e}");
            ExitCode::from(2)
        }
    }
}

/// `rvmon timeline --daemon` — converts a flight-recorder dump into the
/// same Chrome trace-event JSON the spec-driven `timeline` emits: one
/// lane per tenant carrying its request stage spans, with GC cycles,
/// rejects, restarts, reloads and state changes as timeline events.
fn timeline_daemon(rest: &[String]) -> ExitCode {
    use rv_monitor::core::FlightDump;

    let usage = || {
        eprintln!("usage: rvmon timeline --daemon <dump.rvfr> [--out FILE]");
        ExitCode::from(2)
    };
    let mut dump_path: Option<&str> = None;
    let mut out_path: Option<&str> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(v) => out_path = Some(v.as_str()),
                None => return usage(),
            },
            other if dump_path.is_none() && !other.starts_with("--") => {
                dump_path = Some(other);
            }
            _ => return usage(),
        }
    }
    let Some(dump_path) = dump_path else {
        return usage();
    };
    let text = match std::fs::read_to_string(dump_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("rvmon: cannot read {dump_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let dump = match FlightDump::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("rvmon: {dump_path} is not a flight dump: {e}");
            return ExitCode::from(2);
        }
    };
    let trace_json = dump.chrome_trace();
    match out_path {
        Some(file) => {
            if let Err(e) = std::fs::write(file, &trace_json) {
                eprintln!("rvmon: cannot write {file}: {e}");
                return ExitCode::from(2);
            }
            println!(
                "wrote Chrome trace ({} byte(s), {} event(s), {} trace(s)) to {file}",
                trace_json.len(),
                dump.events.len(),
                dump.traces.len()
            );
        }
        None => println!("{trace_json}"),
    }
    ExitCode::SUCCESS
}

/// `rvmon top` — one-shot cost table for a journaled run: re-executes
/// the journal from sequence 0 with metrics + profiler observers and
/// prints per-phase span counts, p50/p95/p99 and totals, plus the
/// E/M/FM/CM counters.
fn top(dir: &std::path::Path) -> ExitCode {
    use rv_monitor::core::journal::AUX_GC_CYCLE;
    use rv_monitor::core::{
        read_journal, EngineConfig, GcCycleRecord, MetricsRegistry, Phase, PhaseProfiler,
        PropertyMonitor, Record,
    };

    // A daemon root has no journal of its own — each tenant subdirectory
    // carries one. Attribute costs per tenant instead of erroring out
    // (or, worse, folding every tenant into one row).
    if !dir.join("journal-00000000").exists() {
        let mut tenants: Vec<(String, std::path::PathBuf)> = std::fs::read_dir(dir)
            .map(|rd| {
                rd.filter_map(Result::ok)
                    .map(|e| e.path())
                    .filter(|p| p.join("journal-00000000").exists())
                    .filter_map(|p| {
                        p.file_name().map(|n| (n.to_string_lossy().into_owned(), p.clone()))
                    })
                    .collect()
            })
            .unwrap_or_default();
        tenants.sort();
        if !tenants.is_empty() {
            return top_daemon(dir, &tenants);
        }
    }

    let fail = |msg: String| {
        eprintln!("rvmon: error: {msg}");
        ExitCode::from(2)
    };
    let scan = match read_journal(dir) {
        Ok(s) => s,
        Err(e) => return fail(e.to_string()),
    };
    let spec = match spec_from_scan(dir, &scan) {
        Ok(s) => s,
        Err(msg) => return fail(msg),
    };
    let event_params = spec.event_params.clone();
    let spec_name = spec.name.clone();
    let config = EngineConfig { record_triggers: true, ..EngineConfig::default() };
    let mut monitor = PropertyMonitor::with_observers(spec, &config, |i| {
        (
            MetricsRegistry::new(),
            PhaseProfiler::new().with_label(&format!("{spec_name}/block{}", i + 1)),
        )
    });
    let outcome = match replay_records(&scan, &event_params, &mut monitor, 0, None) {
        Ok(o) => o,
        Err(msg) => return fail(msg),
    };
    monitor.finish(&outcome.heap);

    let mut merged = PhaseProfiler::new().with_label("ALL");
    for engine in monitor.engines() {
        let (_, profiler) = engine.observer();
        merged.merge_from(profiler);
    }
    let stats = monitor.stats();
    println!(
        "rvmon top — {} event(s) replayed from {} durable record(s) in {}",
        outcome.replayed_events,
        scan.records.len(),
        dir.display()
    );
    println!(
        "{:<18} {:>8} {:>12} {:>12} {:>12} {:>14}",
        "phase", "spans", "p50 ns", "p95 ns", "p99 ns", "total ns"
    );
    for p in Phase::ALL {
        let h = merged.phase(p);
        if h.count() == 0 {
            continue;
        }
        println!(
            "{:<18} {:>8} {:>12.0} {:>12.0} {:>12.0} {:>14}",
            p.label(),
            h.count(),
            h.quantile(0.50),
            h.quantile(0.95),
            h.quantile(0.99),
            h.sum()
        );
    }
    println!(
        "E={} M={} FM={} CM={} triggers={}",
        stats.events,
        stats.monitors_created,
        stats.monitors_flagged,
        stats.monitors_collected,
        stats.triggers
    );
    // The journaled GC telemetry, if the run recorded any — one line
    // here, the full per-cycle table under `rvmon gc-log`.
    let gc: Vec<GcCycleRecord> = scan
        .records
        .iter()
        .filter_map(|sr| match &sr.record {
            Record::Aux { tag, bytes } if *tag == AUX_GC_CYCLE => GcCycleRecord::from_bytes(bytes),
            _ => None,
        })
        .collect();
    if !gc.is_empty() {
        let pause: u64 = gc.iter().map(|c| c.pause_ns).sum();
        let reclaimed: u64 = gc.iter().map(|c| c.reclaimed).sum();
        println!(
            "gc: {} journaled cycle(s), {} ns total pause, {} reclaimed — `rvmon gc-log` \
             has the table",
            gc.len(),
            pause,
            reclaimed
        );
    }
    ExitCode::SUCCESS
}

/// `rvmon top` over a daemon root: one cost table per tenant, each row
/// tagged with the tenant name. The engine phases come from a per-tenant
/// replay; the `journal_append` row comes from re-appending that
/// tenant's decoded records to a throwaway scratch journal, so the
/// write-ahead cost is attributed per tenant rather than folded across
/// the daemon.
fn top_daemon(root: &std::path::Path, tenants: &[(String, std::path::PathBuf)]) -> ExitCode {
    use rv_monitor::core::{
        read_journal, EngineConfig, JournalWriter, MetricsRegistry, Phase, PhaseProfiler,
        PropertyMonitor,
    };

    println!("rvmon top — daemon root {} with {} tenant(s)", root.display(), tenants.len());
    println!(
        "{:<12} {:<18} {:>8} {:>12} {:>12} {:>12} {:>14}",
        "tenant", "phase", "spans", "p50 ns", "p95 ns", "p99 ns", "total ns"
    );
    let mut failures = 0usize;
    for (name, dir) in tenants {
        let result = (|| -> Result<(), String> {
            let scan = read_journal(dir).map_err(|e| e.to_string())?;
            let spec = spec_from_scan(dir, &scan)?;
            let event_params = spec.event_params.clone();
            let config = EngineConfig { record_triggers: true, ..EngineConfig::default() };
            let mut monitor = PropertyMonitor::with_observers(spec, &config, |i| {
                (
                    MetricsRegistry::new(),
                    PhaseProfiler::new().with_label(&format!("{name}/block{}", i + 1)),
                )
            });
            let outcome = replay_records(&scan, &event_params, &mut monitor, 0, None)?;
            monitor.finish(&outcome.heap);
            let mut merged = PhaseProfiler::new().with_label(name);
            for engine in monitor.engines() {
                let (_, profiler) = engine.observer();
                merged.merge_from(profiler);
            }
            // Scratch re-append: same records, fresh journal, timed spans.
            let scratch =
                std::env::temp_dir().join(format!("rvmon-top-{}-{name}", std::process::id()));
            let _ = std::fs::remove_dir_all(&scratch);
            let mut journal = JournalWriter::create(&scratch)
                .map_err(|e| format!("cannot create scratch journal: {e}"))?;
            for sr in &scan.records {
                let span = merged.enter(Phase::JournalAppend);
                journal.append(&sr.record).map_err(|e| format!("scratch append failed: {e}"))?;
                merged.exit(span);
            }
            drop(journal);
            let _ = std::fs::remove_dir_all(&scratch);
            for p in Phase::ALL {
                let h = merged.phase(p);
                if h.count() == 0 {
                    continue;
                }
                println!(
                    "{:<12} {:<18} {:>8} {:>12.0} {:>12.0} {:>12.0} {:>14}",
                    name,
                    p.label(),
                    h.count(),
                    h.quantile(0.50),
                    h.quantile(0.95),
                    h.quantile(0.99),
                    h.sum()
                );
            }
            let stats = monitor.stats();
            println!(
                "{:<12} E={} M={} FM={} CM={} triggers={} ({} event(s) from {} record(s))",
                name,
                stats.events,
                stats.monitors_created,
                stats.monitors_flagged,
                stats.monitors_collected,
                stats.triggers,
                outcome.replayed_events,
                scan.records.len()
            );
            Ok(())
        })();
        if let Err(msg) = result {
            eprintln!("rvmon: tenant `{name}`: {msg}");
            failures += 1;
        }
    }
    if failures == tenants.len() {
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}

/// `rvmon run` — the journaled twin of `trace`: every event, directive,
/// and goal report is written ahead to a checksummed journal before (or
/// as) it takes effect, and a full engine checkpoint is written every
/// `--checkpoint-every` events, so `rvmon recover` can resurrect the run
/// after a crash at any byte.
fn run(path: &str, source: &str, rest: &[String]) -> ExitCode {
    match run_inner(path, source, rest) {
        Ok(code) => code,
        Err((code, msg)) => {
            eprintln!("rvmon: error: {msg}");
            ExitCode::from(code)
        }
    }
}

/// The journal-append retry policy for this run, set once from
/// `--journal-retries`/`--journal-backoff-ms` before the journal opens;
/// the defaults apply when the flags are absent.
static JOURNAL_RETRY: std::sync::OnceLock<rv_monitor::core::RetryPolicy> =
    std::sync::OnceLock::new();

/// Appends `r` under a [`Phase::JournalAppend`] profiler span, so the
/// journaled paths report where their write-ahead time goes.
fn append_timed(
    journal: &mut rv_monitor::core::JournalWriter,
    prof: &mut rv_monitor::core::PhaseProfiler,
    r: &rv_monitor::core::Record,
) -> std::io::Result<u64> {
    let span = prof.enter(rv_monitor::core::Phase::JournalAppend);
    // Transient faults (EINTR and friends) are retried with backoff;
    // only a persistent failure (typed `EngineError::Journal`) surfaces.
    let retry = JOURNAL_RETRY.get().copied().unwrap_or_default();
    let res = journal.append_retry(r, &retry).map_err(std::io::Error::other);
    prof.exit(span);
    res
}

#[allow(clippy::too_many_lines)]
fn run_inner(path: &str, source: &str, rest: &[String]) -> Result<ExitCode, (u8, String)> {
    use rv_monitor::core::journal::{AUX_FREE, AUX_GC, AUX_GC_CYCLE, AUX_SPEC, AUX_SWEEP};
    use rv_monitor::core::snapshot::write_checkpoint;
    use rv_monitor::core::{
        Binding, EngineConfig, EngineObserver as _, GcCycleRecord, GcReason, JournalWriter,
        MetricsRegistry, PropertyMonitor, Record,
    };
    use rv_monitor::heap::{Heap, HeapConfig};

    let mut events_path: Option<&str> = None;
    let mut journal_dir: Option<&str> = None;
    let mut checkpoint_every: Option<usize> = None;
    let mut shards: usize = 1;
    let mut journal_retries: Option<u32> = None;
    let mut journal_backoff_ms: Option<u64> = None;
    let usage = || {
        (
            2u8,
            "usage: rvmon run <spec-file> <events-file> --journal DIR [--checkpoint-every N] \
             [--shards K] [--journal-retries N] [--journal-backoff-ms N]"
                .to_owned(),
        )
    };
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--journal" => journal_dir = Some(it.next().ok_or_else(usage)?.as_str()),
            "--journal-retries" => {
                journal_retries = Some(
                    it.next()
                        .and_then(|s| s.parse::<u32>().ok())
                        .filter(|&n| n > 0)
                        .ok_or_else(usage)?,
                );
            }
            "--journal-backoff-ms" => {
                journal_backoff_ms =
                    Some(it.next().and_then(|s| s.parse::<u64>().ok()).ok_or_else(usage)?);
            }
            "--checkpoint-every" => {
                checkpoint_every = Some(
                    it.next()
                        .and_then(|s| s.parse::<usize>().ok())
                        .filter(|&n| n > 0)
                        .ok_or_else(usage)?,
                );
            }
            "--shards" => {
                shards = it
                    .next()
                    .and_then(|s| s.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                    .ok_or_else(usage)?;
            }
            other if events_path.is_none() && !other.starts_with("--") => {
                events_path = Some(other);
            }
            _ => return Err(usage()),
        }
    }
    let (Some(events_path), Some(journal_dir)) = (events_path, journal_dir) else {
        return Err(usage());
    };
    if journal_retries.is_some() || journal_backoff_ms.is_some() {
        let mut rp = rv_monitor::core::RetryPolicy::default();
        if let Some(n) = journal_retries {
            rp.max_attempts = n;
        }
        if let Some(ms) = journal_backoff_ms {
            rp.backoff = std::time::Duration::from_millis(ms);
        }
        let _ = JOURNAL_RETRY.set(rp);
    }
    let journal_dir = std::path::Path::new(journal_dir);
    let events = std::fs::read_to_string(events_path)
        .map_err(|e| (2, format!("cannot read {events_path}: {e}")))?;
    let spec = match compile_or_report(path, source) {
        Ok(s) => s,
        Err(code) => return Ok(code),
    };
    if shards > 1 {
        if checkpoint_every.is_some() {
            eprintln!(
                "rvmon: note: --checkpoint-every is ignored with --shards > 1 — worker-private \
                 engine state is not checkpointed; recovery replays the journal from sequence 0"
            );
        }
        return run_sharded(source, spec, events_path, &events, journal_dir, shards);
    }
    let checkpoint_every = checkpoint_every.unwrap_or(32);
    let alphabet = spec.alphabet.clone();
    let event_params = spec.event_params.clone();
    let config = EngineConfig { record_triggers: true, ..EngineConfig::default() };
    // A metrics observer on every block turns the GC telemetry on: with
    // it enabled, sweeps hand back per-cycle records the journal keeps as
    // AUX_GC_CYCLE payloads for `rvmon gc-log` to decode.
    let mut monitor = PropertyMonitor::with_observers(spec, &config, |_| MetricsRegistry::new());

    let io = |e: std::io::Error| (2u8, format!("journal write failed: {e}"));
    let mut journal = JournalWriter::create(journal_dir).map_err(io)?;
    // Journal appends are timed as `journal_append` spans; the profile is
    // part of the final stats line.
    let mut jprof = rv_monitor::core::PhaseProfiler::new().with_label("journal");
    // Sequence 0 carries the spec source, so `recover` and `replay` are
    // self-contained: the journal directory alone reconstitutes the run.
    append_timed(
        &mut journal,
        &mut jprof,
        &Record::Aux { tag: AUX_SPEC, bytes: source.as_bytes().to_vec() },
    )
    .map_err(io)?;

    let mut heap = Heap::new(HeapConfig::manual());
    let class = heap.register_class("Obj");
    let mut objects: std::collections::HashMap<String, rv_monitor::heap::ObjId> =
        std::collections::HashMap::new();
    let mut events_since_checkpoint = 0usize;
    let mut generation = 0u64;
    for (lineno, raw) in events.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut words = line.split_whitespace();
        let Some(head) = words.next() else {
            continue;
        };
        let report_err = |msg: String| (1u8, format!("{events_path}:{}: {msg}", lineno + 1));
        match head {
            "!gc" => {
                append_timed(
                    &mut journal,
                    &mut jprof,
                    &Record::Aux { tag: AUX_GC, bytes: Vec::new() },
                )
                .map_err(io)?;
                heap.collect();
                // The collection just finished is in the heap's cycle
                // log: journal it as telemetry and deliver it to the
                // first block's observer (one consumer per shared heap).
                for c in heap.drain_cycles() {
                    let rec = GcCycleRecord::from_heap_cycle(&c);
                    append_timed(
                        &mut journal,
                        &mut jprof,
                        &Record::Aux { tag: AUX_GC_CYCLE, bytes: rec.to_bytes() },
                    )
                    .map_err(io)?;
                    if let Some(first) = monitor.engines_mut().first_mut() {
                        first.observer_mut().gc_cycle(&rec);
                    }
                }
            }
            "!sweep" => {
                append_timed(
                    &mut journal,
                    &mut jprof,
                    &Record::Aux { tag: AUX_SWEEP, bytes: Vec::new() },
                )
                .map_err(io)?;
                for engine in monitor.engines_mut() {
                    if let Some(rec) = engine.full_sweep_with(&heap, GcReason::Forced) {
                        append_timed(
                            &mut journal,
                            &mut jprof,
                            &Record::Aux { tag: AUX_GC_CYCLE, bytes: rec.to_bytes() },
                        )
                        .map_err(io)?;
                    }
                }
            }
            "!free" => {
                let mut freed = Vec::new();
                let mut payload = Vec::new();
                for name in words {
                    let Some(&obj) = objects.get(name) else {
                        return Err(report_err(format!("unknown object `{name}`")));
                    };
                    payload.extend_from_slice(&obj.to_bits().to_le_bytes());
                    freed.push(obj);
                }
                append_timed(
                    &mut journal,
                    &mut jprof,
                    &Record::Aux { tag: AUX_FREE, bytes: payload },
                )
                .map_err(io)?;
                for obj in freed {
                    heap.unpin(obj);
                }
            }
            event_name => {
                let Some(event) = alphabet.lookup(event_name) else {
                    return Err(report_err(format!(
                        "`{event_name}` is not an event of this spec \
                         (directives are !free, !gc, !sweep)"
                    )));
                };
                let params = &event_params[event.as_usize()];
                let names: Vec<&str> = words.collect();
                if names.len() != params.len() {
                    return Err(report_err(format!(
                        "event `{event_name}` takes {} object(s), got {}",
                        params.len(),
                        names.len()
                    )));
                }
                let pairs: Vec<_> = params
                    .iter()
                    .zip(&names)
                    .map(|(&p, &name)| {
                        let obj = *objects.entry(name.to_owned()).or_insert_with(|| {
                            let frame = heap.enter_frame();
                            let o = heap.alloc(class);
                            heap.pin(o);
                            heap.exit_frame(frame);
                            o
                        });
                        (p, obj)
                    })
                    .collect();
                let binding = Binding::from_pairs(&pairs);
                let seq = append_timed(&mut journal, &mut jprof, &Record::Event { event, binding })
                    .map_err(io)?;
                let before: Vec<usize> =
                    monitor.engines().iter().map(|e| e.triggers().len()).collect();
                monitor
                    .try_process(&heap, event, binding)
                    .map_err(|e| report_err(format!("engine error: {e}")))?;
                // Goal reports are journaled with a global per-event
                // ordinal across blocks, in engine order — the duplicate
                // suppression key recovery uses.
                let mut ordinal = 0u32;
                let fired: Vec<Record> = monitor
                    .engines()
                    .iter()
                    .enumerate()
                    .flat_map(|(bi, engine)| {
                        engine.triggers()[before[bi]..].iter().map(move |t| (bi, *t))
                    })
                    .map(|(bi, t)| {
                        let r = Record::Trigger {
                            event_seq: seq,
                            ordinal,
                            block: bi as u16,
                            step: t.step as u64,
                            verdict: t.verdict,
                            binding: t.binding,
                        };
                        ordinal += 1;
                        r
                    })
                    .collect();
                for r in &fired {
                    append_timed(&mut journal, &mut jprof, r).map_err(io)?;
                }
                events_since_checkpoint += 1;
                if events_since_checkpoint >= checkpoint_every {
                    events_since_checkpoint = 0;
                    journal.sync().map_err(io)?;
                    if let Some(payload) = monitor.snapshot_bytes() {
                        let covered = journal.next_seq();
                        write_checkpoint(journal_dir, generation, covered, &payload)
                            .map_err(|e| (2, format!("checkpoint write failed: {e}")))?;
                        append_timed(
                            &mut journal,
                            &mut jprof,
                            &Record::CheckpointMark { generation, seq: covered },
                        )
                        .map_err(io)?;
                        generation += 1;
                    }
                }
            }
        }
    }
    monitor.finish(&heap);
    journal.sync().map_err(io)?;
    // A final checkpoint makes `recover` on a cleanly finished run a
    // near-instant restore.
    if let Some(payload) = monitor.snapshot_bytes() {
        let covered = journal.next_seq();
        write_checkpoint(journal_dir, generation, covered, &payload)
            .map_err(|e| (2, format!("checkpoint write failed: {e}")))?;
        append_timed(
            &mut journal,
            &mut jprof,
            &Record::CheckpointMark { generation, seq: covered },
        )
        .map_err(io)?;
        journal.sync().map_err(io)?;
    }
    let jstats = journal.stats();
    println!(
        "journaled run: {} record(s), {} byte(s), {} checkpoint(s) in {}",
        jstats.records,
        jstats.bytes,
        generation + 1,
        journal_dir.display()
    );
    println!(
        "{{\"engine\":{},\"journal\":{},\"profile\":{}}}",
        monitor.stats().to_json(),
        jstats.to_json(),
        jprof.to_json()
    );
    Ok(ExitCode::SUCCESS)
}

/// `rvmon run --shards K` (K > 1): the journaled run on the sharded
/// parallel engine.
///
/// Events are written ahead to the journal exactly as in the sequential
/// path; goal reports are appended at each quiesce point (heap directive
/// or end of trace) with their deterministic `(event_seq, ordinal)` keys,
/// where `event_seq` is the journal sequence of the event record. Heap
/// mutation — collection, unpinning, and first-mention allocation — only
/// happens while every worker is quiescent; allocations are hoisted to
/// the start of each directive-free run of events, which hands out the
/// same `ObjId`s as allocating at first mention because the free list
/// only changes at a collection. Checkpoints are not written: recovery
/// replays the journal from sequence 0 on the sequential engine, which is
/// verdict-equivalent.
#[allow(clippy::too_many_lines)]
fn run_sharded(
    source: &str,
    spec: CompiledSpec,
    events_path: &str,
    events: &str,
    journal_dir: &std::path::Path,
    shards: usize,
) -> Result<ExitCode, (u8, String)> {
    use rv_monitor::core::journal::{AUX_FREE, AUX_GC, AUX_GC_CYCLE, AUX_SPEC, AUX_SWEEP};
    use rv_monitor::core::{
        Binding, EngineConfig, GcCycleRecord, JournalWriter, Record, ShardConfig, ShardTrigger,
        ShardedMonitor,
    };
    use rv_monitor::heap::{Heap, HeapConfig, ObjId};
    use rv_monitor::logic::EventId;

    enum Step<'a> {
        Gc,
        Sweep,
        Free { names: Vec<&'a str>, lineno: usize },
        Event { event: EventId, names: Vec<&'a str> },
    }

    let alphabet = spec.alphabet.clone();
    let event_params = spec.event_params.clone();

    // Tokenize the whole trace up front (no heap effects yet) so runs of
    // event lines between directives are known before a session opens.
    let mut steps = Vec::new();
    for (lineno, raw) in events.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut words = line.split_whitespace();
        let Some(head) = words.next() else {
            continue;
        };
        let report_err = |msg: String| (1u8, format!("{events_path}:{}: {msg}", lineno + 1));
        match head {
            "!gc" => steps.push(Step::Gc),
            "!sweep" => steps.push(Step::Sweep),
            "!free" => steps.push(Step::Free { names: words.collect(), lineno }),
            event_name => {
                let Some(event) = alphabet.lookup(event_name) else {
                    return Err(report_err(format!(
                        "`{event_name}` is not an event of this spec \
                         (directives are !free, !gc, !sweep)"
                    )));
                };
                let names: Vec<&str> = words.collect();
                let arity = event_params[event.as_usize()].len();
                if names.len() != arity {
                    return Err(report_err(format!(
                        "event `{event_name}` takes {arity} object(s), got {}",
                        names.len()
                    )));
                }
                steps.push(Step::Event { event, names });
            }
        }
    }

    let io = |e: std::io::Error| (2u8, format!("journal write failed: {e}"));
    let mut journal = JournalWriter::create(journal_dir).map_err(io)?;
    let mut jprof = rv_monitor::core::PhaseProfiler::new().with_label("journal");
    append_timed(
        &mut journal,
        &mut jprof,
        &Record::Aux { tag: AUX_SPEC, bytes: source.as_bytes().to_vec() },
    )
    .map_err(io)?;

    let config = EngineConfig { record_triggers: true, ..EngineConfig::default() };
    let mut sharded = ShardedMonitor::new(spec, &config, ShardConfig::with_shards(shards));
    let mut heap = Heap::new(HeapConfig::manual());
    let class = heap.register_class("Obj");
    let mut objects: std::collections::HashMap<String, ObjId> = std::collections::HashMap::new();
    // Maps the sharded engine's 0-based event index to the journal
    // sequence of that event's record — the key trigger records carry.
    let mut seq_of_event: Vec<u64> = Vec::new();
    let mut trigger_records = 0u64;

    fn append_triggers(
        journal: &mut JournalWriter,
        jprof: &mut rv_monitor::core::PhaseProfiler,
        triggers: Vec<ShardTrigger>,
        seq_of_event: &[u64],
    ) -> std::io::Result<u64> {
        let mut written = 0u64;
        for t in triggers {
            append_timed(
                journal,
                jprof,
                &Record::Trigger {
                    event_seq: seq_of_event[t.event_seq as usize],
                    ordinal: t.ordinal,
                    block: t.block as u16,
                    step: t.event_seq,
                    verdict: t.verdict,
                    binding: t.binding,
                },
            )?;
            written += 1;
        }
        Ok(written)
    }

    let engine_failed = |e: &rv_monitor::core::EngineError| (1u8, format!("engine error: {e}"));
    let mut i = 0usize;
    while i < steps.len() {
        match &steps[i] {
            Step::Gc => {
                append_timed(
                    &mut journal,
                    &mut jprof,
                    &Record::Aux { tag: AUX_GC, bytes: Vec::new() },
                )
                .map_err(io)?;
                heap.collect();
                // Heap-collection telemetry is journaled at the quiesce
                // point, same as the sequential path. (Worker-private
                // monitor sweeps stay off the journal: their clocks live
                // on the shard threads.)
                for c in heap.drain_cycles() {
                    let rec = GcCycleRecord::from_heap_cycle(&c);
                    append_timed(
                        &mut journal,
                        &mut jprof,
                        &Record::Aux { tag: AUX_GC_CYCLE, bytes: rec.to_bytes() },
                    )
                    .map_err(io)?;
                }
                i += 1;
            }
            Step::Sweep => {
                append_timed(
                    &mut journal,
                    &mut jprof,
                    &Record::Aux { tag: AUX_SWEEP, bytes: Vec::new() },
                )
                .map_err(io)?;
                sharded.sweep(&heap);
                i += 1;
            }
            Step::Free { names, lineno } => {
                let mut freed = Vec::new();
                let mut payload = Vec::new();
                for name in names {
                    let Some(&obj) = objects.get(*name) else {
                        return Err((
                            1,
                            format!("{events_path}:{}: unknown object `{name}`", lineno + 1),
                        ));
                    };
                    payload.extend_from_slice(&obj.to_bits().to_le_bytes());
                    freed.push(obj);
                }
                append_timed(
                    &mut journal,
                    &mut jprof,
                    &Record::Aux { tag: AUX_FREE, bytes: payload },
                )
                .map_err(io)?;
                for obj in freed {
                    heap.unpin(obj);
                }
                i += 1;
            }
            Step::Event { .. } => {
                let mut j = i;
                while j < steps.len() && matches!(steps[j], Step::Event { .. }) {
                    j += 1;
                }
                // Allocate this run's first-mention objects while the
                // workers are still quiescent.
                for step in &steps[i..j] {
                    let Step::Event { names, .. } = step else { unreachable!() };
                    for name in names {
                        objects.entry((*name).to_owned()).or_insert_with(|| {
                            let frame = heap.enter_frame();
                            let o = heap.alloc(class);
                            heap.pin(o);
                            heap.exit_frame(frame);
                            o
                        });
                    }
                }
                {
                    let mut session = sharded.session(&heap);
                    for step in &steps[i..j] {
                        let Step::Event { event, names } = step else { unreachable!() };
                        let pairs: Vec<_> = event_params[event.as_usize()]
                            .iter()
                            .zip(names)
                            .map(|(&p, &name)| (p, objects[name]))
                            .collect();
                        let binding = Binding::from_pairs(&pairs);
                        let seq = append_timed(
                            &mut journal,
                            &mut jprof,
                            &Record::Event { event: *event, binding },
                        )
                        .map_err(io)?;
                        seq_of_event.push(seq);
                        session.process(*event, binding);
                    }
                } // drop quiesces: every trigger of this run has arrived
                if let Some(e) = sharded.last_error() {
                    return Err(engine_failed(e));
                }
                trigger_records += append_triggers(
                    &mut journal,
                    &mut jprof,
                    sharded.drain_triggers(),
                    &seq_of_event,
                )
                .map_err(io)?;
                i = j;
            }
        }
    }

    let report = sharded.finish(&heap);
    if let Some(e) = report.error {
        return Err(engine_failed(&e));
    }
    trigger_records +=
        append_triggers(&mut journal, &mut jprof, report.triggers, &seq_of_event).map_err(io)?;
    journal.sync().map_err(io)?;
    // Fold the coordinator's routing spans (compiled out on the no-op
    // observer path, so empty here) into the run profile for one merged
    // figure — the same merge discipline shard aggregation uses.
    jprof.merge_from(&report.route_profile);
    let jstats = journal.stats();
    println!(
        "journaled sharded run: {} record(s), {} byte(s), {} shard(s), no checkpoints in {}",
        jstats.records,
        jstats.bytes,
        shards,
        journal_dir.display()
    );
    println!(
        "shards: {} event(s) — {} routed, {} broadcast, {} deliveries, {} goal report(s)",
        report.events,
        report.routed_events,
        report.broadcast_events,
        report.deliveries,
        trigger_records
    );
    println!(
        "{{\"engine\":{},\"journal\":{},\"shards\":{{\"shards\":{},\"events\":{},\"routed\":{},\
         \"broadcast\":{},\"deliveries\":{}}},\"profile\":{}}}",
        report.stats.to_json(),
        jstats.to_json(),
        shards,
        report.events,
        report.routed_events,
        report.broadcast_events,
        report.deliveries,
        jprof.to_json()
    );
    Ok(ExitCode::SUCCESS)
}

/// Shared replay core for `recover` and `replay`: rebuilds the heap from
/// the durable record prefix (identical `ObjId`s, because allocation
/// order is replayed exactly) and feeds events with sequence ≥
/// `replay_from` to the monitor, suppressing goal reports at or below the
/// durable high-water mark.
struct ReplayOutcome {
    replayed_events: u64,
    suppressed_triggers: u64,
    heap: rv_monitor::heap::Heap,
}

fn replay_records<O: rv_monitor::core::EngineObserver>(
    scan: &rv_monitor::core::JournalScan,
    event_params: &[Vec<rv_monitor::logic::ParamId>],
    monitor: &mut rv_monitor::core::PropertyMonitor<O>,
    replay_from: u64,
    hwm: Option<(u64, u32)>,
) -> Result<ReplayOutcome, String> {
    use rv_monitor::core::journal::{AUX_FREE, AUX_GC, AUX_OBJ, AUX_SLINE, AUX_SPEC, AUX_SWEEP};
    use rv_monitor::core::{Binding, Record};
    use rv_monitor::heap::{Heap, HeapConfig, ObjId};

    let mut heap = Heap::new(HeapConfig::manual());
    let class = heap.register_class("Obj");
    let mut known: std::collections::HashSet<u64> = std::collections::HashSet::new();
    // Daemon journals name objects (`AUX_OBJ`) and carry session-stamped
    // raw lines (`AUX_SLINE`) instead of pre-bound `Event` records; the
    // name → ObjId map makes those replayable here too.
    let mut objects: std::collections::HashMap<String, ObjId> = std::collections::HashMap::new();
    let mut replayed_events = 0u64;
    let mut suppressed_triggers = 0u64;
    for sr in &scan.records {
        match &sr.record {
            Record::Aux { tag, bytes } if *tag == AUX_OBJ => {
                let Some(bits) =
                    bytes.get(..8).and_then(|b| b.try_into().ok().map(u64::from_le_bytes))
                else {
                    return Err(format!("journal record {}: truncated AUX_OBJ", sr.seq));
                };
                let name = String::from_utf8_lossy(bytes.get(8..).unwrap_or(&[])).into_owned();
                let frame = heap.enter_frame();
                let fresh = heap.alloc(class);
                heap.pin(fresh);
                heap.exit_frame(frame);
                if fresh.to_bits() != bits {
                    return Err(format!(
                        "heap replay diverged at record {}: journal names object {bits:#x} \
                         but the rebuilt heap allocated {:#x}",
                        sr.seq,
                        fresh.to_bits()
                    ));
                }
                known.insert(bits);
                objects.insert(name, fresh);
            }
            Record::Aux { tag, bytes } if *tag == AUX_SLINE => {
                if bytes.len() < 16 {
                    return Err(format!("journal record {}: truncated AUX_SLINE", sr.seq));
                }
                let line = String::from_utf8_lossy(&bytes[16..]).into_owned();
                let mut words = line.split_whitespace();
                match words.next() {
                    Some("!gc") => {
                        heap.collect();
                    }
                    Some("!sweep") if sr.seq >= replay_from => {
                        for engine in monitor.engines_mut() {
                            engine.full_sweep(&heap);
                        }
                    }
                    Some("!free") => {
                        for name in words {
                            let Some(&obj) = objects.get(name) else {
                                return Err(format!(
                                    "journal record {} frees unknown object `{name}`",
                                    sr.seq
                                ));
                            };
                            heap.unpin(obj);
                        }
                    }
                    Some(directive) if directive.starts_with('!') => {}
                    Some(event_name) => {
                        let Some(event) = monitor.spec().alphabet.lookup(event_name) else {
                            return Err(format!(
                                "journal record {}: unknown event `{event_name}`",
                                sr.seq
                            ));
                        };
                        let params = &event_params[event.as_usize()];
                        let mut pairs = Vec::with_capacity(params.len());
                        for (&p, name) in params.iter().zip(words) {
                            let Some(&obj) = objects.get(name) else {
                                return Err(format!(
                                    "journal record {} names unknown object `{name}`",
                                    sr.seq
                                ));
                            };
                            pairs.push((p, obj));
                        }
                        if pairs.len() != params.len() {
                            return Err(format!(
                                "journal record {}: event `{event_name}` is missing parameters",
                                sr.seq
                            ));
                        }
                        if sr.seq >= replay_from {
                            let binding = Binding::from_pairs(&pairs);
                            let before: Vec<usize> =
                                monitor.engines().iter().map(|e| e.triggers().len()).collect();
                            monitor
                                .try_process(&heap, event, binding)
                                .map_err(|e| format!("engine error at record {}: {e}", sr.seq))?;
                            let fired: usize = monitor
                                .engines()
                                .iter()
                                .enumerate()
                                .map(|(bi, e)| e.triggers().len() - before[bi])
                                .sum();
                            for ord in 0..fired as u32 {
                                if hwm.is_some_and(|h| (sr.seq, ord) <= h) {
                                    suppressed_triggers += 1;
                                }
                            }
                            replayed_events += 1;
                        }
                    }
                    None => {}
                }
            }
            Record::Aux { tag, .. } if *tag == AUX_SPEC || *tag == AUX_GC => {
                if *tag == AUX_GC {
                    heap.collect();
                }
            }
            Record::Aux { tag, bytes } if *tag == AUX_FREE => {
                for chunk in bytes.chunks_exact(8) {
                    let bits = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
                    if !known.contains(&bits) {
                        return Err(format!(
                            "journal record {} frees object {bits:#x} never seen in an event",
                            sr.seq
                        ));
                    }
                    heap.unpin(ObjId::from_bits(bits));
                }
            }
            Record::Aux { tag, .. } if *tag == AUX_SWEEP => {
                if sr.seq >= replay_from {
                    for engine in monitor.engines_mut() {
                        engine.full_sweep(&heap);
                    }
                }
            }
            Record::Event { event, binding } => {
                // Allocate first-mention objects in the event's declared
                // parameter order — the same order the original run used —
                // so the rebuilt heap hands out identical ObjIds.
                for &p in &event_params[event.as_usize()] {
                    let Some(obj) = binding.get(p) else {
                        return Err(format!(
                            "journal record {} binds a different parameter set than \
                             event {} declares",
                            sr.seq,
                            event.as_usize()
                        ));
                    };
                    if known.insert(obj.to_bits()) {
                        let frame = heap.enter_frame();
                        let fresh = heap.alloc(class);
                        heap.pin(fresh);
                        heap.exit_frame(frame);
                        if fresh != obj {
                            return Err(format!(
                                "heap replay diverged at record {}: journal names object \
                                 {:#x} but the rebuilt heap allocated {:#x}",
                                sr.seq,
                                obj.to_bits(),
                                fresh.to_bits()
                            ));
                        }
                    }
                }
                if sr.seq >= replay_from {
                    let before: Vec<usize> =
                        monitor.engines().iter().map(|e| e.triggers().len()).collect();
                    monitor
                        .try_process(&heap, *event, *binding)
                        .map_err(|e| format!("engine error at record {}: {e}", sr.seq))?;
                    let fired: usize = monitor
                        .engines()
                        .iter()
                        .enumerate()
                        .map(|(bi, e)| e.triggers().len() - before[bi])
                        .sum();
                    for ord in 0..fired as u32 {
                        if hwm.is_some_and(|h| (sr.seq, ord) <= h) {
                            suppressed_triggers += 1;
                        }
                    }
                    replayed_events += 1;
                }
            }
            _ => {}
        }
    }
    Ok(ReplayOutcome { replayed_events, suppressed_triggers, heap })
}

/// Compiles the spec carried in the journal's sequence-0 record.
fn spec_from_scan(
    dir: &std::path::Path,
    scan: &rv_monitor::core::JournalScan,
) -> Result<CompiledSpec, String> {
    use rv_monitor::core::journal::AUX_SPEC;
    use rv_monitor::core::Record;

    let Some(first) = scan.records.first() else {
        return Err(format!("journal at {} holds no durable records", dir.display()));
    };
    let Record::Aux { tag, bytes } = &first.record else {
        return Err("journal does not begin with a spec record".to_owned());
    };
    if *tag != AUX_SPEC {
        return Err("journal does not begin with a spec record".to_owned());
    }
    let source = String::from_utf8(bytes.clone())
        .map_err(|_| "spec record is not valid UTF-8".to_owned())?;
    CompiledSpec::from_source(&source)
        .map_err(|d| format!("journaled spec no longer compiles: {}", d.message))
}

/// `rvmon recover` — crash recovery over a journal directory.
fn recover(dir: &std::path::Path) -> ExitCode {
    use rv_monitor::core::snapshot::{list_checkpoints, write_checkpoint};
    use rv_monitor::core::{
        load_latest_checkpoint, read_journal, EngineConfig, JournalWriter, PropertyMonitor, Record,
    };

    let fail = |msg: String| {
        eprintln!("rvmon: error: {msg}");
        ExitCode::from(2)
    };
    let scan = match read_journal(dir) {
        Ok(s) => s,
        Err(e) => return fail(e.to_string()),
    };
    let spec = match spec_from_scan(dir, &scan) {
        Ok(s) => s,
        Err(msg) => return fail(msg),
    };
    let event_params = spec.event_params.clone();
    let config = EngineConfig { record_triggers: true, ..EngineConfig::default() };
    let mut monitor = PropertyMonitor::new(spec, &config);

    let (checkpoint, skipped) = load_latest_checkpoint(dir, scan.next_seq);
    for reason in &skipped {
        eprintln!("rvmon: warning: skipping checkpoint: {reason}");
    }
    let mut replay_from = 0u64;
    if let Some(cp) = &checkpoint {
        if let Err(e) = monitor.restore_snapshot(&cp.payload, &cp.file) {
            return fail(e.to_string());
        }
        replay_from = cp.seq;
    }
    let hwm = scan.trigger_high_water_mark();
    let outcome = match replay_records(&scan, &event_params, &mut monitor, replay_from, hwm) {
        Ok(o) => o,
        Err(msg) => return fail(msg),
    };
    // Dead keys whose deaths predate the checkpoint go back through the
    // ALIVENESS flagging path, then the recovered state must pass the
    // structural invariant check before we touch the journal.
    let reflagged = monitor.reflag_dead_keys(&outcome.heap);
    if let Err(e) = monitor.check_invariants(&outcome.heap) {
        return fail(e.to_string());
    }
    let mut journal = match JournalWriter::resume(dir, &scan) {
        Ok(j) => j,
        Err(e) => return fail(format!("cannot resume journal: {e}")),
    };
    let generation = list_checkpoints(dir).last().map_or(0, |g| g + 1);
    if let Some(payload) = monitor.snapshot_bytes() {
        let covered = journal.next_seq();
        if let Err(e) = write_checkpoint(dir, generation, covered, &payload) {
            return fail(format!("checkpoint write failed: {e}"));
        }
        if let Err(e) = journal
            .append(&Record::CheckpointMark { generation, seq: covered })
            .and_then(|_| journal.sync())
        {
            return fail(format!("journal write failed: {e}"));
        }
    }

    println!("recovered {} durable record(s) from {}", scan.records.len(), dir.display());
    match &scan.truncation {
        Some(t) => println!(
            "truncated torn tail: {} at byte {} — {} byte(s) discarded ({})",
            t.file, t.offset, t.lost_bytes, t.reason
        ),
        None => println!("journal tail was clean (no torn records)"),
    }
    match checkpoint {
        Some(cp) => println!(
            "restored checkpoint generation {} (covers seq < {}), replayed {} event(s)",
            cp.generation, cp.seq, outcome.replayed_events
        ),
        None => {
            println!("no usable checkpoint — full replay of {} event(s)", outcome.replayed_events)
        }
    }
    println!(
        "suppressed {} already-delivered goal report(s); re-flagged {} monitor(s)",
        outcome.suppressed_triggers, reflagged
    );
    println!("stats: {}", monitor.stats());
    ExitCode::SUCCESS
}

/// `rvmon replay` — audit a journal by re-executing it from sequence 0.
fn replay(dir: &std::path::Path) -> ExitCode {
    use rv_monitor::core::{read_journal, EngineConfig, PropertyMonitor};

    let fail = |msg: String| {
        eprintln!("rvmon: error: {msg}");
        ExitCode::from(2)
    };
    let scan = match read_journal(dir) {
        Ok(s) => s,
        Err(e) => return fail(e.to_string()),
    };
    let spec = match spec_from_scan(dir, &scan) {
        Ok(s) => s,
        Err(msg) => return fail(msg),
    };
    let event_params = spec.event_params.clone();
    let config = EngineConfig { record_triggers: true, ..EngineConfig::default() };
    let mut monitor = PropertyMonitor::new(spec, &config);
    let outcome = match replay_records(&scan, &event_params, &mut monitor, 0, None) {
        Ok(o) => o,
        Err(msg) => return fail(msg),
    };
    monitor.finish(&outcome.heap);
    if let Err(e) = monitor.check_invariants(&outcome.heap) {
        return fail(e.to_string());
    }
    println!(
        "replayed {} event(s) from {} durable record(s) in {}",
        outcome.replayed_events,
        scan.records.len(),
        dir.display()
    );
    if let Some(t) = &scan.truncation {
        println!(
            "note: torn tail at {} byte {} — {} byte(s) ignored ({})",
            t.file, t.offset, t.lost_bytes, t.reason
        );
    }
    for (i, engine) in monitor.engines().iter().enumerate() {
        for t in engine.triggers() {
            println!("block {}: {:?} at step {} for {:?}", i + 1, t.verdict, t.step, t.binding);
        }
    }
    println!("stats: {}", monitor.stats());
    ExitCode::SUCCESS
}

/// `rvmon gc-log` — the GC observatory over a journaled run: decodes the
/// journal's [`AUX_GC_CYCLE`] telemetry records into a per-cycle table
/// (kind, reason, pause, scanned/reclaimed/flagged, occupancy
/// before→after), per-kind totals, and an MMU (minimum mutator
/// utilization) summary at several window sizes.
///
/// [`AUX_GC_CYCLE`]: rv_monitor::core::journal::AUX_GC_CYCLE
fn gc_log(dir: &std::path::Path) -> ExitCode {
    use rv_monitor::core::journal::AUX_GC_CYCLE;
    use rv_monitor::core::{mmu_curve, read_journal, GcCycleRecord, GcKind, Record};

    let fail = |msg: String| {
        eprintln!("rvmon: error: {msg}");
        ExitCode::from(2)
    };
    let scan = match read_journal(dir) {
        Ok(s) => s,
        Err(e) => return fail(e.to_string()),
    };
    let mut cycles: Vec<GcCycleRecord> = Vec::new();
    for sr in &scan.records {
        if let Record::Aux { tag, bytes } = &sr.record {
            if *tag == AUX_GC_CYCLE {
                match GcCycleRecord::from_bytes(bytes) {
                    Some(r) => cycles.push(r),
                    None => {
                        return fail(format!(
                            "journal record {} carries a malformed GC-cycle payload \
                             ({} byte(s))",
                            sr.seq,
                            bytes.len()
                        ))
                    }
                }
            }
        }
    }
    println!(
        "rvmon gc-log — {} GC cycle(s) among {} durable record(s) in {}",
        cycles.len(),
        scan.records.len(),
        dir.display()
    );
    if cycles.is_empty() {
        println!("no GC-cycle telemetry — journals written by `rvmon run` record one");
        println!("cycle per !gc heap collection and per-engine !sweep");
        return ExitCode::SUCCESS;
    }
    println!(
        "{:<5} {:<14} {:<12} {:>12} {:>11} {:>9} {:>10} {:>8} {:>16}",
        "cycle",
        "kind",
        "reason",
        "end ns",
        "pause ns",
        "scanned",
        "reclaimed",
        "flagged",
        "occupancy"
    );
    for (i, c) in cycles.iter().enumerate() {
        println!(
            "{:<5} {:<14} {:<12} {:>12} {:>11} {:>9} {:>10} {:>8} {:>9}\u{2192}{}",
            i + 1,
            c.kind.label(),
            c.reason.label(),
            c.end_ns,
            c.pause_ns,
            c.scanned,
            c.reclaimed,
            c.flagged,
            c.occupancy_before,
            c.occupancy_after
        );
    }
    for kind in [GcKind::HeapCollect, GcKind::MonitorSweep] {
        let of_kind: Vec<&GcCycleRecord> = cycles.iter().filter(|c| c.kind == kind).collect();
        if of_kind.is_empty() {
            continue;
        }
        let total_pause: u64 = of_kind.iter().map(|c| c.pause_ns).sum();
        let max_pause = of_kind.iter().map(|c| c.pause_ns).max().unwrap_or(0);
        let scanned: u64 = of_kind.iter().map(|c| c.scanned).sum();
        let reclaimed: u64 = of_kind.iter().map(|c| c.reclaimed).sum();
        println!(
            "{}: {} cycle(s), {} ns total pause ({} ns max), {} scanned, {} reclaimed ({:.1}%)",
            kind.label(),
            of_kind.len(),
            total_pause,
            max_pause,
            scanned,
            reclaimed,
            if scanned == 0 { 0.0 } else { 100.0 * reclaimed as f64 / scanned as f64 }
        );
    }
    // MMU over the union of pause intervals. Heap and engine cycle clocks
    // start within the same run setup, so one merged timeline is a fair
    // utilization picture; span is the last recorded cycle end.
    let pauses: Vec<(u64, u64)> = cycles.iter().map(|c| (c.end_ns, c.pause_ns)).collect();
    let span = pauses.iter().map(|&(end, _)| end).max().unwrap_or(0);
    let mut windows: Vec<u64> =
        [1_000u64, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000, 1_000_000_000]
            .into_iter()
            .filter(|&w| w < span)
            .collect();
    windows.push(span);
    println!("mmu (span {span} ns):");
    for (w, u) in mmu_curve(&pauses, span, &windows) {
        println!("  window {w:>12} ns: {:.3}", u);
    }
    ExitCode::SUCCESS
}

/// The §6 instrumentation-pruning analysis: which probes are needed given
/// the events the program can emit at all.
fn prune(path: &str, source: &str, emitted: Option<&str>) -> ExitCode {
    let spec = match compile_or_report(path, source) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let mut set = rv_monitor::logic::EventSet::EMPTY;
    match emitted {
        None => set = spec.alphabet.universe(),
        Some(list) => {
            for name in list.split(',').filter(|n| !n.is_empty()) {
                match spec.alphabet.lookup(name) {
                    Some(e) => set = set.with(e),
                    None => {
                        eprintln!("rvmon: `{name}` is not an event of {}", spec.name);
                        return ExitCode::from(2);
                    }
                }
            }
        }
    }
    println!("program emits: {}", set.display(&spec.alphabet));
    for (i, prop) in spec.properties.iter().enumerate() {
        let rv_monitor::logic::AnyFormalism::Dfa(d) = &prop.formalism else {
            println!("block {}: CFG — pruning analysis is finite-state only", i + 1);
            continue;
        };
        let plan = rv_monitor::logic::instrument::plan(d, prop.goal, set);
        if !plan.can_trigger {
            println!("block {}: can never trigger — remove ALL instrumentation for it", i + 1);
        } else {
            println!("block {}: instrument {}", i + 1, plan.required.display(&spec.alphabet));
        }
    }
    ExitCode::SUCCESS
}

fn compile_or_report(path: &str, source: &str) -> Result<CompiledSpec, ExitCode> {
    match CompiledSpec::from_source(source) {
        Ok(spec) => Ok(spec),
        Err(diag) => {
            let (line, col) = diag.span.line_col(source);
            eprintln!(
                "{path}:{line}:{col}: error: {}{}",
                diag.message,
                diag_squiggle(source, &diag)
            );
            Err(ExitCode::from(1))
        }
    }
}

/// A one-line context snippet under the diagnostic.
fn diag_squiggle(source: &str, diag: &rv_monitor::spec::Diagnostic) -> String {
    let start = diag.span.start.min(source.len());
    let line_start = source[..start].rfind('\n').map_or(0, |i| i + 1);
    let line_end = source[start..].find('\n').map_or(source.len(), |i| start + i);
    format!("\n    {}", &source[line_start..line_end])
}

fn check(path: &str, source: &str) -> ExitCode {
    match compile_or_report(path, source) {
        Ok(spec) => {
            println!(
                "{path}: ok — spec `{}`, {} parameter(s), {} event(s), {} property block(s)",
                spec.name,
                spec.param_classes.len(),
                spec.alphabet.len(),
                spec.properties.len()
            );
            for (i, prop) in spec.properties.iter().enumerate() {
                let gc = if prop.coenable.is_some() {
                    "coenable GC available"
                } else {
                    "coenable GC unavailable for this goal (falls back to all-params-dead)"
                };
                println!("  block {}: {:?}, goal {}, {gc}", i + 1, prop.kind, prop.goal);
            }
            ExitCode::SUCCESS
        }
        Err(code) => code,
    }
}

fn analyze(path: &str, source: &str) -> ExitCode {
    let spec = match compile_or_report(path, source) {
        Ok(s) => s,
        Err(code) => return code,
    };
    println!("=== {} ===", spec.name);
    for (i, prop) in spec.properties.iter().enumerate() {
        println!("-- block {} ({:?}, goal {}) --", i + 1, prop.kind, prop.goal);
        let Some(co) = &prop.coenable else {
            println!("(no coenable sets for this goal)");
            continue;
        };
        print!("{}", co.display(&spec.alphabet));
        // Coenable sets are only computed together with ALIVENESS, but a
        // bad spec should degrade to a message, not a panic.
        let Some(aliveness) = prop.aliveness.as_ref() else {
            println!("(coenable sets present but ALIVENESS missing — internal inconsistency)");
            continue;
        };
        for e in spec.alphabet.iter() {
            let masks: Vec<String> = aliveness
                .masks(e)
                .iter()
                .map(|ps| {
                    let names: Vec<String> = ps
                        .iter()
                        .map(|p| format!("live_{}", spec.event_def.param_name(p)))
                        .collect();
                    if names.is_empty() {
                        "true".into()
                    } else {
                        names.join(" ∧ ")
                    }
                })
                .collect();
            println!(
                "ALIVENESS({}) = {}",
                spec.alphabet.name(e),
                if masks.is_empty() { "false".into() } else { masks.join(" ∨ ") }
            );
        }
    }
    ExitCode::SUCCESS
}

fn fmt(path: &str, source: &str) -> ExitCode {
    match parse(source) {
        Ok(ast) => {
            // Validate before printing so `fmt` never launders a broken spec.
            if let Err(diag) = compile(&ast) {
                {
                    let (line, col) = diag.span.line_col(source);
                    eprintln!("{path}:{line}:{col}: error: {}", diag.message);
                }
                return ExitCode::from(1);
            }
            print!("{}", print(&ast));
            ExitCode::SUCCESS
        }
        Err(diag) => {
            {
                let (line, col) = diag.span.line_col(source);
                eprintln!("{path}:{line}:{col}: error: {}", diag.message);
            }
            ExitCode::from(1)
        }
    }
}

fn dfa(path: &str, source: &str) -> ExitCode {
    let spec = match compile_or_report(path, source) {
        Ok(s) => s,
        Err(code) => return code,
    };
    for (i, prop) in spec.properties.iter().enumerate() {
        println!("-- block {} ({:?}) --", i + 1, prop.kind);
        match &prop.formalism {
            AnyFormalism::Dfa(d) => print!("{d}"),
            AnyFormalism::Cfg(c) => {
                let g = c.grammar();
                println!("reduced grammar with {} production(s):", g.productions().len());
                for p in g.productions() {
                    let rhs: Vec<String> = p
                        .rhs
                        .iter()
                        .map(|s| match s {
                            rv_monitor::logic::cfg::Symbol::T(e) => {
                                spec.alphabet.name(*e).to_owned()
                            }
                            rv_monitor::logic::cfg::Symbol::Nt(n) => {
                                g.nonterminal_names()[*n as usize].clone()
                            }
                        })
                        .collect();
                    println!(
                        "  {} -> {}",
                        g.nonterminal_names()[p.lhs as usize],
                        if rhs.is_empty() { "epsilon".into() } else { rhs.join(" ") }
                    );
                }
                let mut st = c.initial_state();
                let _ = &mut st;
                println!("(monitored by an incremental Earley recognizer)");
            }
        }
        let _ = prop.formalism.alphabet();
    }
    ExitCode::SUCCESS
}
