//! `rvmon` — command-line front end for the RV spec language.
//!
//! ```text
//! rvmon check   <spec.rv>   parse + compile, report diagnostics
//! rvmon analyze <spec.rv>   print coenable sets, parameter lifts, ALIVENESS
//! rvmon fmt     <spec.rv>   pretty-print the spec in canonical form
//! rvmon dfa     <spec.rv>   dump the compiled automaton of each block
//! rvmon prune   <spec.rv> <ev1,ev2,…>
//!                           instrumentation plan, given the events the
//!                           target program can emit
//! rvmon trace   <spec.rv> <events-file>
//!                           replay a textual event trace through the
//!                           monitoring engine, dumping JSONL lifecycle
//!                           records and a JSON metrics snapshot
//! rvmon chaos   <spec.rv> [--seed N] [--events M]
//!                           deterministic fault-injection differential:
//!                           every property block under every GC policy on
//!                           a chaos heap, checked against the reference
//!                           oracle (seed-reproducible; default seed 1,
//!                           512 events)
//! ```
//!
//! The `trace` event file is line-oriented: `event obj…` dispatches an
//! event (objects are named and allocated on first mention), `!free obj`
//! lets an object become garbage, `!gc` runs a heap collection, `!sweep`
//! runs a monitor GC sweep; `#` starts a comment.
//!
//! Exit status: 0 on success, 1 on diagnostics, 2 on usage/IO errors.

use std::process::ExitCode;

use rv_monitor::logic::{AnyFormalism, Formalism as _};
use rv_monitor::spec::{compile, parse, print, CompiledSpec};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, path, rest) = match args.as_slice() {
        [cmd, path, rest @ ..] => (cmd.as_str(), path.as_str(), rest),
        _ => {
            eprintln!(
                "usage: rvmon <check|analyze|fmt|dfa|prune|trace|chaos> <spec-file> \
                 [emitted-events|events-file|--seed N --events M]"
            );
            return ExitCode::from(2);
        }
    };
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("rvmon: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let extra = rest.first().map(String::as_str);
    match cmd {
        "check" | "analyze" | "fmt" | "dfa" if !rest.is_empty() => {
            eprintln!("usage: rvmon {cmd} <spec-file>");
            ExitCode::from(2)
        }
        "check" => check(path, &source),
        "analyze" => analyze(path, &source),
        "fmt" => fmt(path, &source),
        "dfa" => dfa(path, &source),
        "prune" => prune(path, &source, extra),
        "trace" => trace(path, &source, extra),
        "chaos" => chaos(path, &source, rest),
        other => {
            eprintln!("rvmon: unknown command `{other}`");
            ExitCode::from(2)
        }
    }
}

/// The deterministic fault-injection differential: every property block of
/// the spec, under every GC policy, driven over a seed-reproducible random
/// workload on a chaos heap and compared against the Figure 5 oracle.
fn chaos(path: &str, source: &str, rest: &[String]) -> ExitCode {
    use rv_monitor::core::{run_block, GcPolicy};

    let mut seed: u64 = 1;
    let mut events: usize = 512;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        let value = |v: Option<&String>| v.and_then(|s| s.parse::<u64>().ok());
        match arg.as_str() {
            "--seed" => match value(it.next()) {
                Some(n) => seed = n,
                None => {
                    eprintln!("rvmon: error: --seed takes a numeric argument");
                    return ExitCode::from(2);
                }
            },
            "--events" => match value(it.next()) {
                Some(n) => events = n as usize,
                None => {
                    eprintln!("rvmon: error: --events takes a numeric argument");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("usage: rvmon chaos <spec-file> [--seed N] [--events M]; got `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let spec = match compile_or_report(path, source) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let mut failures = 0u32;
    for block in 0..spec.properties.len() {
        for policy in [GcPolicy::None, GcPolicy::AllParamsDead, GcPolicy::CoenableLazy] {
            match run_block(&spec, block, policy, seed, events) {
                Ok(out) if out.verdicts_match() => println!(
                    "block {} {policy:?} seed {seed}: OK — {} event(s), {} trigger(s), \
                     {} doom(s), {} forced collect(s), {} spike(s)",
                    block + 1,
                    out.trace_len,
                    out.engine_triggers.len(),
                    out.chaos.dooms,
                    out.chaos.forced_collects,
                    out.chaos.spikes
                ),
                Ok(out) => {
                    failures += 1;
                    eprintln!(
                        "block {} {policy:?} seed {seed}: error: VERDICT MISMATCH — \
                         engine reported {:?} but the oracle expected {:?}",
                        block + 1,
                        out.engine_triggers,
                        out.oracle_triggers
                    );
                }
                Err(e) => {
                    failures += 1;
                    eprintln!("block {} {policy:?} seed {seed}: error: {e}", block + 1);
                }
            }
        }
    }
    if failures > 0 {
        eprintln!("rvmon chaos: {failures} failing run(s)");
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

/// Replays a textual event trace against the compiled spec with a
/// `TraceRecorder` and a `MetricsRegistry` attached to every property
/// block, then dumps what they observed.
fn trace(path: &str, source: &str, events_path: Option<&str>) -> ExitCode {
    use rv_monitor::core::{
        Binding, EngineConfig, MetricsRegistry, PropertyMonitor, TraceRecorder,
    };
    use rv_monitor::heap::{Heap, HeapConfig};

    let Some(events_path) = events_path else {
        eprintln!("usage: rvmon trace <spec-file> <events-file>");
        return ExitCode::from(2);
    };
    let spec = match compile_or_report(path, source) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let events = match std::fs::read_to_string(events_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("rvmon: cannot read {events_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let alphabet = spec.alphabet.clone();
    let event_def = spec.event_def.clone();
    let event_params = spec.event_params.clone();
    let config = EngineConfig::default();
    let mut monitor = PropertyMonitor::with_observers(spec, &config, |_| {
        (
            TraceRecorder::new(65_536).with_names(alphabet.clone(), event_def.clone()),
            MetricsRegistry::new(),
        )
    });

    let mut heap = Heap::new(HeapConfig::manual());
    let class = heap.register_class("Obj");
    let mut objects: std::collections::HashMap<String, rv_monitor::heap::ObjId> =
        std::collections::HashMap::new();
    for (lineno, raw) in events.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut words = line.split_whitespace();
        // invariant: `line` is non-empty after trimming, so there is at
        // least one word — but degrade to skipping the line regardless.
        let Some(head) = words.next() else {
            continue;
        };
        let report_err = |msg: String| {
            eprintln!("{events_path}:{}: error: {msg}", lineno + 1);
            ExitCode::from(1)
        };
        match head {
            "!gc" => {
                heap.collect();
            }
            "!sweep" => {
                for engine in monitor.engines_mut() {
                    engine.full_sweep(&heap);
                }
            }
            "!free" => {
                for name in words {
                    match objects.get(name) {
                        Some(&obj) => heap.unpin(obj),
                        None => return report_err(format!("unknown object `{name}`")),
                    }
                }
            }
            event_name => {
                let Some(event) = alphabet.lookup(event_name) else {
                    return report_err(format!(
                        "`{event_name}` is not an event of this spec \
                         (directives are !free, !gc, !sweep)"
                    ));
                };
                let params = &event_params[event.as_usize()];
                let names: Vec<&str> = words.collect();
                if names.len() != params.len() {
                    return report_err(format!(
                        "event `{event_name}` takes {} object(s), got {}",
                        params.len(),
                        names.len()
                    ));
                }
                let pairs: Vec<_> = params
                    .iter()
                    .zip(&names)
                    .map(|(&p, &name)| {
                        let obj = *objects.entry(name.to_owned()).or_insert_with(|| {
                            // Allocate in a throwaway frame so the pin is
                            // the object's only root: `!free` then `!gc`
                            // really reclaims it.
                            let frame = heap.enter_frame();
                            let o = heap.alloc(class);
                            heap.pin(o);
                            heap.exit_frame(frame);
                            o
                        });
                        (p, obj)
                    })
                    .collect();
                if let Err(e) = monitor.try_process(&heap, event, Binding::from_pairs(&pairs)) {
                    return report_err(format!("engine error: {e}"));
                }
            }
        }
    }
    // Final sweep so CM reflects everything the engines let go of.
    monitor.finish(&heap);

    let heap_stats = heap.stats();
    for (i, engine) in monitor.engines_mut().iter_mut().enumerate() {
        let stats = engine.stats();
        let (recorder, metrics) = engine.observer_mut();
        println!(
            "# block {} trace ({} records, {} dropped)",
            i + 1,
            recorder.records().len(),
            recorder.dropped()
        );
        print!("{}", recorder.dump_jsonl());
        println!("# block {} metrics", i + 1);
        println!("{}", metrics.snapshot_json_with(Some(&stats), Some(&heap_stats)));
    }
    ExitCode::SUCCESS
}

/// The §6 instrumentation-pruning analysis: which probes are needed given
/// the events the program can emit at all.
fn prune(path: &str, source: &str, emitted: Option<&str>) -> ExitCode {
    let spec = match compile_or_report(path, source) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let mut set = rv_monitor::logic::EventSet::EMPTY;
    match emitted {
        None => set = spec.alphabet.universe(),
        Some(list) => {
            for name in list.split(',').filter(|n| !n.is_empty()) {
                match spec.alphabet.lookup(name) {
                    Some(e) => set = set.with(e),
                    None => {
                        eprintln!("rvmon: `{name}` is not an event of {}", spec.name);
                        return ExitCode::from(2);
                    }
                }
            }
        }
    }
    println!("program emits: {}", set.display(&spec.alphabet));
    for (i, prop) in spec.properties.iter().enumerate() {
        let rv_monitor::logic::AnyFormalism::Dfa(d) = &prop.formalism else {
            println!("block {}: CFG — pruning analysis is finite-state only", i + 1);
            continue;
        };
        let plan = rv_monitor::logic::instrument::plan(d, prop.goal, set);
        if !plan.can_trigger {
            println!("block {}: can never trigger — remove ALL instrumentation for it", i + 1);
        } else {
            println!("block {}: instrument {}", i + 1, plan.required.display(&spec.alphabet));
        }
    }
    ExitCode::SUCCESS
}

fn compile_or_report(path: &str, source: &str) -> Result<CompiledSpec, ExitCode> {
    match CompiledSpec::from_source(source) {
        Ok(spec) => Ok(spec),
        Err(diag) => {
            let (line, col) = diag.span.line_col(source);
            eprintln!(
                "{path}:{line}:{col}: error: {}{}",
                diag.message,
                diag_squiggle(source, &diag)
            );
            Err(ExitCode::from(1))
        }
    }
}

/// A one-line context snippet under the diagnostic.
fn diag_squiggle(source: &str, diag: &rv_monitor::spec::Diagnostic) -> String {
    let start = diag.span.start.min(source.len());
    let line_start = source[..start].rfind('\n').map_or(0, |i| i + 1);
    let line_end = source[start..].find('\n').map_or(source.len(), |i| start + i);
    format!("\n    {}", &source[line_start..line_end])
}

fn check(path: &str, source: &str) -> ExitCode {
    match compile_or_report(path, source) {
        Ok(spec) => {
            println!(
                "{path}: ok — spec `{}`, {} parameter(s), {} event(s), {} property block(s)",
                spec.name,
                spec.param_classes.len(),
                spec.alphabet.len(),
                spec.properties.len()
            );
            for (i, prop) in spec.properties.iter().enumerate() {
                let gc = if prop.coenable.is_some() {
                    "coenable GC available"
                } else {
                    "coenable GC unavailable for this goal (falls back to all-params-dead)"
                };
                println!("  block {}: {:?}, goal {}, {gc}", i + 1, prop.kind, prop.goal);
            }
            ExitCode::SUCCESS
        }
        Err(code) => code,
    }
}

fn analyze(path: &str, source: &str) -> ExitCode {
    let spec = match compile_or_report(path, source) {
        Ok(s) => s,
        Err(code) => return code,
    };
    println!("=== {} ===", spec.name);
    for (i, prop) in spec.properties.iter().enumerate() {
        println!("-- block {} ({:?}, goal {}) --", i + 1, prop.kind, prop.goal);
        let Some(co) = &prop.coenable else {
            println!("(no coenable sets for this goal)");
            continue;
        };
        print!("{}", co.display(&spec.alphabet));
        // Coenable sets are only computed together with ALIVENESS, but a
        // bad spec should degrade to a message, not a panic.
        let Some(aliveness) = prop.aliveness.as_ref() else {
            println!("(coenable sets present but ALIVENESS missing — internal inconsistency)");
            continue;
        };
        for e in spec.alphabet.iter() {
            let masks: Vec<String> = aliveness
                .masks(e)
                .iter()
                .map(|ps| {
                    let names: Vec<String> = ps
                        .iter()
                        .map(|p| format!("live_{}", spec.event_def.param_name(p)))
                        .collect();
                    if names.is_empty() {
                        "true".into()
                    } else {
                        names.join(" ∧ ")
                    }
                })
                .collect();
            println!(
                "ALIVENESS({}) = {}",
                spec.alphabet.name(e),
                if masks.is_empty() { "false".into() } else { masks.join(" ∨ ") }
            );
        }
    }
    ExitCode::SUCCESS
}

fn fmt(path: &str, source: &str) -> ExitCode {
    match parse(source) {
        Ok(ast) => {
            // Validate before printing so `fmt` never launders a broken spec.
            if let Err(diag) = compile(&ast) {
                {
                    let (line, col) = diag.span.line_col(source);
                    eprintln!("{path}:{line}:{col}: error: {}", diag.message);
                }
                return ExitCode::from(1);
            }
            print!("{}", print(&ast));
            ExitCode::SUCCESS
        }
        Err(diag) => {
            {
                let (line, col) = diag.span.line_col(source);
                eprintln!("{path}:{line}:{col}: error: {}", diag.message);
            }
            ExitCode::from(1)
        }
    }
}

fn dfa(path: &str, source: &str) -> ExitCode {
    let spec = match compile_or_report(path, source) {
        Ok(s) => s,
        Err(code) => return code,
    };
    for (i, prop) in spec.properties.iter().enumerate() {
        println!("-- block {} ({:?}) --", i + 1, prop.kind);
        match &prop.formalism {
            AnyFormalism::Dfa(d) => print!("{d}"),
            AnyFormalism::Cfg(c) => {
                let g = c.grammar();
                println!("reduced grammar with {} production(s):", g.productions().len());
                for p in g.productions() {
                    let rhs: Vec<String> = p
                        .rhs
                        .iter()
                        .map(|s| match s {
                            rv_monitor::logic::cfg::Symbol::T(e) => {
                                spec.alphabet.name(*e).to_owned()
                            }
                            rv_monitor::logic::cfg::Symbol::Nt(n) => {
                                g.nonterminal_names()[*n as usize].clone()
                            }
                        })
                        .collect();
                    println!(
                        "  {} -> {}",
                        g.nonterminal_names()[p.lhs as usize],
                        if rhs.is_empty() { "epsilon".into() } else { rhs.join(" ") }
                    );
                }
                let mut st = c.initial_state();
                let _ = &mut st;
                println!("(monitored by an incremental Earley recognizer)");
            }
        }
        let _ = prop.formalism.alphabet();
    }
    ExitCode::SUCCESS
}
