//! `rvmond` — the long-running multi-tenant monitoring daemon.
//!
//! A thin TCP shell around [`rv_monitor::core::Service`]: one framed
//! ingest listener (clients speak the `FRAME_*` protocol, one tenant per
//! connection), one plain-text HTTP listener for `/healthz` and
//! `/metrics`, a `SIGTERM`/`SIGINT` handler that drains every tenant to
//! a checkpoint before exiting 0, and start-up recovery that rebuilds
//! every tenant directory found under the root — so a `kill -9` loses
//! nothing but the un-fsynced tail and a restart is a checkpoint restore
//! away from serving again.
//!
//! Self-healing: `--restart-budget` arms the in-service supervisor
//! (restart Failed tenants with backoff, circuit-break after the budget
//! is spent inside the window), and `SIGHUP` hot-reloads every tenant's
//! spec from `--spec-dir` (default: the service root) without dropping
//! an acknowledged event — the old engine drains to a checkpoint at its
//! exact journal tail and the new spec cuts over atomically.
//!
//! Observability: every ingested line is traced through the wire →
//! admission → queue → engine → journal → trigger pipeline (scraped as
//! `rvmond_stage_*` and `rvmond_slo_*` on `/metrics`), `--slo` sets the
//! per-tenant latency/availability objectives, and `SIGQUIT` dumps the
//! always-on flight recorder to `flight-sigquit-N.rvfr` under the root
//! without disturbing the daemon (render it with `rvmon flight`).
//!
//! ```text
//! rvmond --root DIR [--port N] [--http-port N] [--max-tenants N]
//!        [--max-conns N] [--queue N] [--shed] [--checkpoint-every N]
//!        [--idle-ms N] [--max-live-monitors N]
//!        [--restart-budget N] [--restart-window-ms N] [--restart-backoff-ms N]
//!        [--spec-dir DIR] [--slo SPEC] [--trace-ring N] [--trace-exemplars K]
//! ```

use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rv_monitor::core::{serve_connection, Backpressure, Service, ServiceConfig, SloConfig};

/// Set by the signal handler; the accept loops poll it.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);
/// Set by SIGHUP; the ingest loop performs the spec reload.
static RELOAD: AtomicBool = AtomicBool::new(false);
/// Set by SIGQUIT; the ingest loop dumps the flight recorder.
static FLIGHT: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(sig: i32) {
    if sig == SIGHUP {
        RELOAD.store(true, Ordering::SeqCst);
    } else if sig == SIGQUIT {
        FLIGHT.store(true, Ordering::SeqCst);
    } else {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }
}

// std links libc on every supported platform; `signal(2)` is enough for
// a drain flag and avoids growing a dependency for sigaction niceties.
extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

const SIGHUP: i32 = 1;
const SIGINT: i32 = 2;
const SIGQUIT: i32 = 3;
const SIGTERM: i32 = 15;

fn install_signal_handlers() {
    let handler = on_signal as extern "C" fn(i32);
    unsafe {
        signal(SIGTERM, handler as usize);
        signal(SIGINT, handler as usize);
        signal(SIGHUP, handler as usize);
        signal(SIGQUIT, handler as usize);
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: rvmond --root DIR [--port N] [--http-port N] [--max-tenants N] \
         [--max-conns N] [--queue N] [--shed] [--checkpoint-every N] [--idle-ms N] \
         [--restart-budget N] [--restart-window-ms N] [--restart-backoff-ms N] \
         [--spec-dir DIR] [--slo SPEC] [--trace-ring N] [--trace-exemplars K]"
    );
    ExitCode::from(2)
}

/// FNV-1a over the spec text: the SIGHUP reload's idempotency token, so
/// re-sending the signal with an unchanged file is a no-op cutover.
fn content_token(tenant: &str, source: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in tenant.bytes().chain([0u8]).chain(source.trim().bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h | 1
}

/// SIGHUP handler body: every live tenant whose `<name>.spec` exists
/// under `spec_dir` is hot-reloaded to that file's contents.
fn reload_from_dir(service: &Service, spec_dir: &std::path::Path) {
    for name in service.tenant_names() {
        let path = spec_dir.join(format!("{name}.spec"));
        let source = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(_) => {
                eprintln!(
                    "rvmond: reload: no spec at {} — tenant `{name}` unchanged",
                    path.display()
                );
                continue;
            }
        };
        match service.reload(&name, content_token(&name, &source), &source) {
            Ok(version) => eprintln!("rvmond: reloaded tenant `{name}` to spec v{version}"),
            Err((code, msg)) => {
                eprintln!("rvmond: reload of tenant `{name}` rejected ({code}): {msg}");
            }
        }
    }
}

#[allow(clippy::too_many_lines)]
fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ServiceConfig::default();
    let mut port: u16 = 0;
    let mut http_port: u16 = 0;
    let mut idle_ms: u64 = 5_000;
    let mut spec_dir: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(v) => config.root = v.into(),
                None => return usage(),
            },
            "--port" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => port = n,
                None => return usage(),
            },
            "--http-port" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => http_port = n,
                None => return usage(),
            },
            "--max-tenants" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => config.max_tenants = n,
                _ => return usage(),
            },
            "--max-conns" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => config.max_conns_per_tenant = n,
                _ => return usage(),
            },
            "--queue" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => config.queue_depth = n,
                _ => return usage(),
            },
            "--shed" => config.backpressure = Backpressure::Shed,
            "--block" => config.backpressure = Backpressure::Block,
            "--checkpoint-every" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => config.checkpoint_every = n,
                _ => return usage(),
            },
            "--idle-ms" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => idle_ms = n,
                _ => return usage(),
            },
            "--max-live-monitors" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => config.engine.max_live_monitors = Some(n),
                _ => return usage(),
            },
            "--restart-budget" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => config.supervisor.max_restarts = n,
                None => return usage(),
            },
            "--restart-window-ms" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => config.supervisor.window = Duration::from_millis(n),
                _ => return usage(),
            },
            "--restart-backoff-ms" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => config.supervisor.backoff = Duration::from_millis(n),
                _ => return usage(),
            },
            "--spec-dir" => match it.next() {
                Some(v) => spec_dir = Some(v.into()),
                None => return usage(),
            },
            "--slo" => match it.next().map(|s| SloConfig::parse(s)) {
                Some(Ok(slo)) => config.slo = slo,
                Some(Err(e)) => {
                    eprintln!("rvmond: bad --slo spec: {e}");
                    return ExitCode::from(2);
                }
                None => return usage(),
            },
            "--trace-ring" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => config.trace_ring = n,
                None => return usage(),
            },
            "--trace-exemplars" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => config.trace_exemplars = n,
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let spec_dir = spec_dir.unwrap_or_else(|| config.root.clone());

    // Fail fast on bound ports: claim both listeners *before* the
    // (possibly slow) service-root recovery, so a misconfigured port is
    // a crisp exit-2 naming the port, not a panic after seconds of
    // replay work.
    let ingest = match TcpListener::bind(("127.0.0.1", port)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("rvmond: error[port-bound]: cannot bind ingest port {port}: {e}");
            return ExitCode::from(2);
        }
    };
    let http = match TcpListener::bind(("127.0.0.1", http_port)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("rvmond: error[port-bound]: cannot bind http port {http_port}: {e}");
            return ExitCode::from(2);
        }
    };

    install_signal_handlers();
    // Build identity for `rvmond_build_info` and flight-dump headers.
    // The commit comes from the environment at compile time (CI sets
    // RVMOND_COMMIT); a plain `cargo build` reports "unknown".
    config.version = env!("CARGO_PKG_VERSION").to_owned();
    config.commit = option_env!("RVMOND_COMMIT").unwrap_or("unknown").to_owned();
    let service = match Service::new(config) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!("rvmond: cannot create service root: {e}");
            return ExitCode::from(2);
        }
    };

    // Start-up recovery: every tenant directory under the root comes
    // back before the listeners open, so the first client request sees
    // the post-crash state, never a half-recovered one.
    match service.recover_all() {
        Ok((recovered, failed)) => {
            for name in &recovered {
                eprintln!("rvmond: recovered tenant `{name}`");
            }
            for (name, (code, msg)) in &failed {
                eprintln!("rvmond: tenant `{name}` failed recovery ({code}): {msg}");
            }
        }
        Err(e) => {
            eprintln!("rvmond: cannot scan service root: {e}");
            return ExitCode::from(2);
        }
    }

    let (Ok(ingest_addr), Ok(http_addr)) = (ingest.local_addr(), http.local_addr()) else {
        eprintln!("rvmond: cannot resolve listener addresses");
        return ExitCode::from(2);
    };
    // The resolved addresses go to stdout (flushed) so harnesses that
    // asked for port 0 can scrape them before connecting.
    println!("rvmond ingest on {ingest_addr} http on http://{http_addr}/healthz");
    let _ = std::io::stdout().flush();

    // Nonblocking accept loops so both listeners poll the drain flag.
    if ingest.set_nonblocking(true).is_err() || http.set_nonblocking(true).is_err() {
        eprintln!("rvmond: cannot switch listeners to nonblocking accepts");
        return ExitCode::from(2);
    }

    let http_service = Arc::clone(&service);
    let http_thread = std::thread::spawn(move || loop {
        match http.accept() {
            Ok((stream, _)) => serve_http(&http_service, stream),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if SHUTDOWN.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    });

    let idle = Duration::from_millis(idle_ms);
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        match ingest.accept() {
            Ok((stream, _)) => {
                // Per-connection read/write timeouts: a stalled peer is
                // reaped by the connection loop, not left holding a slot.
                let _ = stream.set_read_timeout(Some(idle));
                let _ = stream.set_write_timeout(Some(idle));
                let _ = stream.set_nodelay(true);
                let svc = Arc::clone(&service);
                conns.push(std::thread::spawn(move || {
                    let mut stream = stream;
                    let _ = serve_connection(&svc, &mut stream);
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                }));
                conns.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if SHUTDOWN.load(Ordering::SeqCst) {
                    break;
                }
                if RELOAD.swap(false, Ordering::SeqCst) {
                    reload_from_dir(&service, &spec_dir);
                }
                if FLIGHT.swap(false, Ordering::SeqCst) {
                    match service.dump_flight("sigquit") {
                        Ok(path) => eprintln!("rvmond: flight dump at {}", path.display()),
                        Err(e) => eprintln!("rvmond: flight dump failed: {e}"),
                    }
                }
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }

    // Graceful drain: stop admissions, checkpoint every tenant, join the
    // workers — the restart path is a checkpoint restore, not a replay.
    eprintln!("rvmond: draining");
    let drained = service.drain();
    for h in conns {
        let _ = h.join();
    }
    let _ = http_thread.join();
    eprintln!("rvmond: drained {drained} tenant(s), exiting");
    ExitCode::SUCCESS
}

/// One serial HTTP exchange: `/healthz` answers the liveness summary,
/// anything else the Prometheus exposition. Timeouts bound both
/// directions so a stalling scraper cannot wedge the health endpoint.
fn serve_http(service: &Service, mut stream: TcpStream) {
    use std::io::Read as _;

    let timeout = Some(Duration::from_millis(2_000));
    if stream.set_read_timeout(timeout).is_err() || stream.set_write_timeout(timeout).is_err() {
        return;
    }
    let mut buf = [0u8; 4096];
    let mut n = 0;
    while n < buf.len() {
        match stream.read(&mut buf[n..]) {
            Ok(0) | Err(_) => break,
            Ok(read) => {
                n += read;
                if buf[..n].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
        }
    }
    if n == 0 {
        return;
    }
    let head = String::from_utf8_lossy(&buf[..n]);
    let req_path =
        head.lines().next().and_then(|line| line.split_whitespace().nth(1)).unwrap_or("/");
    let (content_type, payload) = if req_path == "/healthz" {
        ("text/plain; charset=utf-8", service.healthz())
    } else {
        ("text/plain; version=0.0.4; charset=utf-8", service.prometheus())
    };
    let response = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{payload}",
        payload.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.shutdown(std::net::Shutdown::Both);
}
