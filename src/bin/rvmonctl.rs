//! `rvmonctl` — operator control for a running rvmond.
//!
//! Speaks the same framed wire protocol as loadgen, through
//! [`ResilientClient`], so control operations inherit the reconnect +
//! idempotency machinery: a `reload` interrupted by a dropped
//! connection retries with the same token and can never double-apply.
//!
//! ```text
//! rvmonctl reload --addr HOST:PORT --tenant NAME --spec FILE [--token N]
//! rvmonctl status --addr HOST:PORT --tenant NAME
//! rvmonctl slo    --addr HOST:PORT --tenant NAME
//! ```

use std::net::TcpStream;
use std::process::ExitCode;

use rv_monitor::core::{
    read_frame, write_frame, ClientStats, ReconnectPolicy, ResilientClient, TenantOptions,
};

const FRAME_HELLO: u8 = 0x01;
const FRAME_STATS: u8 = 0x04;
const FRAME_BYE: u8 = 0x05;
const FRAME_OK: u8 = 0x80;
const FRAME_STATS_REPLY: u8 = 0x82;
const FRAME_REJECT: u8 = 0x83;

fn usage() -> ExitCode {
    eprintln!(
        "usage: rvmonctl reload --addr HOST:PORT --tenant NAME --spec FILE [--token N]\n\
         \x20      rvmonctl status --addr HOST:PORT --tenant NAME\n\
         \x20      rvmonctl slo    --addr HOST:PORT --tenant NAME"
    );
    ExitCode::from(2)
}

/// FNV-1a over tenant + spec text — the default reload idempotency
/// token, matching rvmond's SIGHUP path: same file, same token, no-op.
fn content_token(tenant: &str, source: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in tenant.bytes().chain([0u8]).chain(source.trim().bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h | 1
}

struct Args {
    addr: String,
    tenant: String,
    spec: Option<String>,
    token: Option<u64>,
}

fn parse_args(rest: &[String]) -> Option<Args> {
    let mut out = Args { addr: String::new(), tenant: String::new(), spec: None, token: None };
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => out.addr = it.next()?.clone(),
            "--tenant" => out.tenant = it.next()?.clone(),
            "--spec" => out.spec = Some(it.next()?.clone()),
            "--token" => out.token = Some(it.next()?.parse().ok()?),
            _ => return None,
        }
    }
    if out.addr.is_empty() || out.tenant.is_empty() {
        return None;
    }
    Some(out)
}

fn cmd_reload(args: &Args) -> ExitCode {
    let Some(spec_path) = args.spec.as_deref() else {
        return usage();
    };
    let source = match std::fs::read_to_string(spec_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("rvmonctl: cannot read {spec_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let token = args.token.unwrap_or_else(|| content_token(&args.tenant, &source));
    // Attach with an empty spec: rvmonctl never creates tenants, and an
    // empty attach skips the spec-hash check so it works mid-upgrade.
    let mut client = match ResilientClient::connect(
        &args.addr,
        &args.tenant,
        "",
        TenantOptions::default(),
        token,
        ReconnectPolicy::default(),
    ) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("rvmonctl: cannot attach to `{}` at {}: {e}", args.tenant, args.addr);
            return ExitCode::FAILURE;
        }
    };
    match client.reload(token, &source) {
        Ok(version) => {
            println!("reloaded tenant `{}` to spec v{version} (token {token})", args.tenant);
            let _: ClientStats = client.bye();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("rvmonctl: reload failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// One shot, raw frames: HELLO (empty attach) then STATS.
fn fetch_stats(args: &Args) -> std::io::Result<String> {
    let mut s = TcpStream::connect(&args.addr)?;
    s.set_read_timeout(Some(std::time::Duration::from_secs(5)))?;
    let hello =
        rv_monitor::core::service::encode_hello(&args.tenant, "", &TenantOptions::default());
    write_frame(&mut s, FRAME_HELLO, &hello)?;
    match read_frame(&mut s)? {
        Some((FRAME_OK, _)) => {}
        Some((FRAME_REJECT, p)) => {
            let code = p.get(..2).and_then(|b| b.try_into().ok()).map_or(0, u16::from_le_bytes);
            let msg = String::from_utf8_lossy(p.get(2..).unwrap_or(&[])).into_owned();
            return Err(std::io::Error::other(format!("reject {code}: {msg}")));
        }
        _ => return Err(std::io::Error::other("unexpected HELLO reply")),
    }
    write_frame(&mut s, FRAME_STATS, &[])?;
    let reply = loop {
        match read_frame(&mut s)? {
            Some((FRAME_STATS_REPLY, p)) => break String::from_utf8_lossy(&p).into_owned(),
            Some(_) => {}
            None => return Err(std::io::Error::other("closed before STATS_REPLY")),
        }
    };
    let _ = write_frame(&mut s, FRAME_BYE, &[]);
    Ok(reply)
}

fn cmd_status(args: &Args) -> ExitCode {
    match fetch_stats(args) {
        Ok(json) => {
            println!("{json}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("rvmonctl: status failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Extracts the balanced `{...}` object value of `"key":` from the flat
/// hand-rolled STATS JSON (no strings containing braces).
fn json_object_field<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":{{");
    let start = json.find(&needle)? + needle.len() - 1;
    let mut depth = 0usize;
    for (i, b) in json[start..].bytes().enumerate() {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&json[start..=start + i]);
                }
            }
            _ => {}
        }
    }
    None
}

fn json_number_field(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let start = json.find(&needle)? + needle.len();
    let rest = &json[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// `rvmonctl slo` — renders the tenant's SLO budget and per-stage
/// latency attribution from the same STATS reply `status` dumps raw.
fn cmd_slo(args: &Args) -> ExitCode {
    let json = match fetch_stats(args) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("rvmonctl: slo failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(slo) = json_object_field(&json, "slo") else {
        eprintln!("rvmonctl: STATS reply carries no slo section (old server?)");
        return ExitCode::FAILURE;
    };
    let num = |key: &str| json_number_field(slo, key).unwrap_or(0.0);
    println!("tenant {}", args.tenant);
    println!("  latency objective: p{:.0} <= {:.0}us", num("latency_goal") * 100.0, {
        num("latency_target_us")
    });
    println!(
        "  latency budget:    {:.4} remaining (burn {:.2}x)",
        num("latency_budget_remaining"),
        num("latency_burn_rate")
    );
    println!("  availability:      goal {:.4}", num("availability_goal"));
    println!(
        "  avail budget:      {:.4} remaining (burn {:.2}x)",
        num("availability_budget_remaining"),
        num("availability_burn_rate")
    );
    println!("  requests:          good {:.0} bad {:.0}", num("good_total"), num("bad_total"));
    if let Some(stages) = json_object_field(&json, "stages") {
        println!("  {:<16} {:>9} {:>9} {:>9} {:>9}", "stage", "count", "p50us", "p99us", "maxus");
        for stage in [
            "wire_read",
            "admission",
            "queue_wait",
            "engine",
            "journal_append",
            "journal_fsync",
            "trigger_delivery",
        ] {
            let f = |suffix: &str| {
                json_number_field(stages, &format!("{stage}_{suffix}")).unwrap_or(0.0)
            };
            println!(
                "  {:<16} {:>9.0} {:>9.1} {:>9.1} {:>9.1}",
                stage,
                f("count"),
                f("p50_us"),
                f("p99_us"),
                f("max_us")
            );
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return usage();
    };
    let Some(parsed) = parse_args(rest) else {
        return usage();
    };
    match cmd.as_str() {
        "reload" => cmd_reload(&parsed),
        "status" => cmd_status(&parsed),
        "slo" => cmd_slo(&parsed),
        _ => usage(),
    }
}
