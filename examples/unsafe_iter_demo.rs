//! The paper's motivating scenario (Figure 3 + §1): monitoring
//! UNSAFEITER over a program whose collections outlive their iterators,
//! and watching the coenable-set garbage collector reclaim monitor
//! instances that the JavaMOP-style policy must retain.
//!
//! Run: `cargo run --example unsafe_iter_demo`

use rv_monitor::core::{Binding, Engine, EngineConfig, GcPolicy};
use rv_monitor::heap::{Heap, HeapConfig};
use rv_monitor::logic::{AnyFormalism, ParamId};
use rv_monitor::props::{compiled, Property};

const COLLECTIONS: usize = 5;
const ITERATORS_PER_COLLECTION: usize = 200;

fn run(policy: GcPolicy) -> (rv_monitor::core::EngineStats, u64) {
    let spec = compiled(Property::UnsafeIter).expect("bundled spec compiles");
    let prop = &spec.properties[0];
    let AnyFormalism::Dfa(_) = prop.formalism else { unreachable!("UNSAFEITER is an ERE") };
    let mut engine = Engine::new(
        prop.formalism.clone(),
        spec.event_def.clone(),
        prop.goal,
        EngineConfig { policy, ..EngineConfig::default() },
    );
    let (c, i) = (ParamId(0), ParamId(1));
    let ev = |n: &str| spec.alphabet.lookup(n).unwrap();

    let mut heap = Heap::new(HeapConfig::auto(64));
    let object = heap.register_class("Object");
    let program = heap.enter_frame();

    // Long-lived collections...
    let colls: Vec<_> = (0..COLLECTIONS).map(|_| heap.alloc(object)).collect();
    for &coll in &colls {
        // ...iterated over and over by short-lived iterators.
        for k in 0..ITERATORS_PER_COLLECTION {
            let inner = heap.enter_frame();
            let iter = heap.alloc(object);
            heap.add_edge(iter, coll); // JDK: Iterator → Collection
            engine.process(&heap, ev("create"), Binding::from_pairs(&[(c, coll), (i, iter)]));
            engine.process(&heap, ev("next"), Binding::from_pairs(&[(i, iter)]));
            // One in fifty iterations commits the classic mistake: update
            // the collection mid-iteration, then keep iterating.
            if k % 50 == 25 {
                engine.process(&heap, ev("update"), Binding::from_pairs(&[(c, coll)]));
                engine.process(&heap, ev("next"), Binding::from_pairs(&[(i, iter)]));
            }
            heap.exit_frame(inner); // the iterator dies here
        }
    }
    heap.exit_frame(program);
    (engine.stats(), engine.stats().triggers)
}

fn main() {
    println!(
        "UNSAFEITER over {COLLECTIONS} long-lived collections × \
         {ITERATORS_PER_COLLECTION} short-lived iterators each\n"
    );
    for (name, policy) in [
        ("RV (coenable-set lazy GC)  ", GcPolicy::CoenableLazy),
        ("JavaMOP (all params dead)  ", GcPolicy::AllParamsDead),
        ("no monitor GC              ", GcPolicy::None),
    ] {
        let (stats, triggers) = run(policy);
        println!(
            "{name}: created {:>5}, flagged {:>5}, collected {:>5}, still live {:>5}  \
             (violations caught: {triggers})",
            stats.monitors_created,
            stats.monitors_flagged,
            stats.monitors_collected,
            stats.live_monitors,
        );
    }
    println!(
        "\nThe paper's point, in miniature: every policy catches the same violations,\n\
         but only the coenable technique can tell that a monitor whose iterator died\n\
         will never match again — all-params-dead must wait for the collection too."
    );
}
