//! Extending the library: define a brand-new three-parameter property in
//! the spec language, inspect its coenable analysis, and monitor a custom
//! simulated program against it — nothing here uses the bundled property
//! catalog.
//!
//! The property: a connection handed to a worker must not be used after
//! the pool that owns it is closed, and every statement created from the
//! connection must be finalized before the connection is released.
//!
//! Run: `cargo run --example custom_property`

use rv_monitor::core::{Binding, EngineConfig, PropertyMonitor};
use rv_monitor::heap::{Heap, HeapConfig};
use rv_monitor::logic::ParamId;
use rv_monitor::spec::CompiledSpec;

const SPEC: &str = r#"
SafePool(Pool p, Connection c, Statement s) {
    event lease(p, c);
    event prepare(c, s);
    event execute(s);
    event closepool(p);
    ere: lease (prepare | execute)* closepool (prepare | execute)
    @match { report "pooled connection used after pool close!"; }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = CompiledSpec::from_source(SPEC).map_err(|e| e.render(SPEC))?;

    // The static analysis is available before any monitoring happens.
    let prop = &spec.properties[0];
    let aliveness = prop.aliveness.as_ref().expect("ERE properties have coenable sets");
    println!("coenable analysis for {}:", spec.name);
    for e in spec.alphabet.iter() {
        let masks: Vec<String> = aliveness
            .masks(e)
            .iter()
            .map(|ps| {
                ps.iter()
                    .map(|p| format!("live_{}", spec.event_def.param_name(p)))
                    .collect::<Vec<_>>()
                    .join(" ∧ ")
            })
            .collect();
        println!(
            "  ALIVENESS({:<9}) = {}",
            spec.alphabet.name(e),
            if masks.is_empty() { "false".into() } else { masks.join(" ∨ ") }
        );
    }

    // Monitor a small simulated program.
    let mut monitor = PropertyMonitor::new(
        spec,
        &EngineConfig { record_triggers: true, ..EngineConfig::default() },
    );
    let mut heap = Heap::new(HeapConfig::default());
    let class = heap.register_class("Object");
    let frame = heap.enter_frame();
    let pool = heap.alloc(class);
    let conn = heap.alloc(class);
    let stmt = heap.alloc(class);
    let (p, c, s) = (ParamId(0), ParamId(1), ParamId(2));

    // Healthy usage: lease, prepare, execute — pool still open.
    monitor.process_named(&heap, "lease", Binding::from_pairs(&[(p, pool), (c, conn)]));
    monitor.process_named(&heap, "prepare", Binding::from_pairs(&[(c, conn), (s, stmt)]));
    monitor.process_named(&heap, "execute", Binding::from_pairs(&[(s, stmt)]));
    assert_eq!(monitor.triggers(), 0);
    println!("\nhealthy phase: {} violations", monitor.triggers());

    // The bug: close the pool, then keep executing the prepared statement.
    monitor.process_named(&heap, "closepool", Binding::from_pairs(&[(p, pool)]));
    monitor.process_named(&heap, "execute", Binding::from_pairs(&[(s, stmt)]));
    println!("after use-after-close: {} violation(s)", monitor.triggers());
    assert_eq!(monitor.triggers(), 1);

    // And the GC story: once the statement dies, the monitors for its
    // bindings are flagged on the next maintenance pass.
    heap.exit_frame(frame);
    heap.collect();
    monitor.finish(&heap);
    let stats = monitor.stats();
    println!(
        "\nend of program: created {}, flagged {}, collected {}, live {}",
        stats.monitors_created,
        stats.monitors_flagged,
        stats.monitors_collected,
        stats.live_monitors
    );
    assert_eq!(stats.live_monitors, 0, "everything is collectable at exit");
    Ok(())
}
