//! The paper's Figure 4: SAFELOCK, a *context-free* property (balanced
//! acquire/release nested within balanced method begin/end), monitored by
//! the Earley-based CFG plugin — the case the paper highlights as beyond
//! state-based techniques like Tracematches ("the state space is
//! unbounded").
//!
//! Run: `cargo run --example safe_lock_cfg`

use rv_monitor::core::{Binding, EngineConfig, PropertyMonitor};
use rv_monitor::heap::{Heap, HeapConfig};
use rv_monitor::logic::ParamId;
use rv_monitor::props::{compiled, Property};

fn main() {
    let spec = compiled(Property::SafeLock).expect("bundled spec compiles");
    println!("grammar: S -> S begin S end | S acquire S release | epsilon\n");
    let mut monitor = PropertyMonitor::new(
        spec,
        &EngineConfig { record_triggers: true, ..EngineConfig::default() },
    );

    let mut heap = Heap::new(HeapConfig::manual());
    let class = heap.register_class("Object");
    let frame = heap.enter_frame();
    let lock = heap.alloc(class);
    let thread = heap.alloc(class);
    let (l, t) = (ParamId(0), ParamId(1));
    let lt = Binding::from_pairs(&[(l, lock), (t, thread)]);
    let only_t = Binding::from_pairs(&[(t, thread)]);

    // A well-nested phase: begin ( acquire ( begin end ) release ) end.
    for (event, binding) in [
        ("begin", only_t),
        ("acquire", lt),
        ("begin", only_t),
        ("end", only_t),
        ("release", lt),
        ("end", only_t),
    ] {
        monitor.process_named(&heap, event, binding);
    }
    println!("after the balanced phase: {} violations (expected 0)", monitor.triggers());
    assert_eq!(monitor.triggers(), 0);

    // The bug: a method returns while still holding the lock.
    monitor.process_named(&heap, "begin", only_t);
    monitor.process_named(&heap, "acquire", lt);
    monitor.process_named(&heap, "end", only_t); // ← improper nesting
    println!("after the leaky method:  {} violation(s)", monitor.triggers());
    assert_eq!(monitor.triggers(), 1);
    let handler = &monitor.spec().properties[0].handlers[0];
    println!("handler @{} says: {}", handler.name, handler.message.as_deref().unwrap());
    heap.exit_frame(frame);
}
