//! A tour of the evaluation stack: run one DaCapo-like workload under all
//! three systems (Tracematches-style, JavaMOP-style, RV) and print the
//! head-to-head numbers — a single row of the paper's Figures 9 and 10.
//!
//! Run: `cargo run --release --example dacapo_bench_tour [-- benchmark]`

use std::time::Instant;

use rv_monitor::workloads::{NullSink, Profile};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "pmd".to_owned());
    let profile = Profile::by_name(&name).unwrap_or_else(|| {
        let names: Vec<&str> = Profile::dacapo().iter().map(|p| p.name).collect();
        panic!("unknown benchmark `{name}`; choose one of {names:?}")
    });
    let scale = 1.0;

    // Bare run: the overhead denominator.
    let start = Instant::now();
    let report = rv_monitor::workloads::run(&profile, scale, &mut NullSink);
    let bare = start.elapsed();
    println!(
        "{name}: bare run {:.1} ms, {} allocations, {} heap collections\n",
        bare.as_secs_f64() * 1e3,
        report.heap.allocations,
        report.heap.collections
    );

    println!(
        "{:<28} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "system / property", "overhead", "events", "monitors", "flagged", "collected", "peak KiB"
    );
    for system in rv_bench::System::ALL {
        for property in [rv_props::Property::HasNext, rv_props::Property::UnsafeIter] {
            let mut sink = rv_bench::MonitorSink::new(system, &[property]);
            let start = Instant::now();
            let _ = rv_monitor::workloads::run(&profile, scale, &mut sink);
            let elapsed = start.elapsed();
            let overhead = ((elapsed.as_secs_f64() / bare.as_secs_f64().max(1e-9)) - 1.0) * 100.0;
            let (m, fm, cm) =
                sink.engine_stats()[0].1.map_or(("-".into(), "-".into(), "-".into()), |s| {
                    (
                        s.monitors_created.to_string(),
                        s.monitors_flagged.to_string(),
                        s.monitors_collected.to_string(),
                    )
                });
            println!(
                "{:<28} {:>8.0}% {:>9} {:>9} {:>9} {:>9} {:>10.1}",
                format!("{} / {}", system.label(), property.paper_name()),
                overhead,
                sink.events,
                m,
                fm,
                cm,
                sink.peak_bytes as f64 / 1024.0
            );
        }
    }
    println!("\n(TM exposes no monitor-instance stats: it keeps per-state disjunct sets)");
}
