//! Quickstart: write a spec, compile it, monitor a parametric event
//! stream, and watch the handler fire — the paper's Figure 2 HASNEXT
//! property end to end.
//!
//! Run: `cargo run --example quickstart`

use rv_monitor::core::{Binding, EngineConfig, PropertyMonitor};
use rv_monitor::heap::{Heap, HeapConfig};
use rv_monitor::logic::ParamId;
use rv_monitor::spec::CompiledSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The specification: Figure 2's HASNEXT, stated both as a finite
    //    state machine and as an LTL formula with the past operator (*).
    let source = r#"
        HasNext(Iterator i) {
            event hasnexttrue(i);
            event hasnextfalse(i);
            event next(i);
            fsm:
                unknown [
                    hasnexttrue -> more
                    hasnextfalse -> none
                    next -> error
                ]
                more [ hasnexttrue -> more  next -> unknown ]
                none [ hasnextfalse -> none  next -> error ]
                error []
            @error { report "improper Iterator use found!"; }
            ltl: [](next => (*) hasnexttrue)
            @violation { report "improper Iterator use found!"; }
        }
    "#;
    let spec = CompiledSpec::from_source(source).map_err(|e| e.render(source))?;
    println!("compiled spec `{}` with {} property blocks", spec.name, spec.properties.len());

    // 2. A monitor running both blocks over the same events.
    let mut monitor = PropertyMonitor::new(
        spec,
        &EngineConfig { record_triggers: true, ..EngineConfig::default() },
    );

    // 3. A simulated program: iterate safely, then overrun the iterator.
    let mut heap = Heap::new(HeapConfig::default());
    let iterator_class = heap.register_class("Iterator");
    let frame = heap.enter_frame();
    let it = heap.alloc(iterator_class);
    let i = ParamId(0);
    let theta = Binding::from_pairs(&[(i, it)]);

    monitor.process_named(&heap, "hasnexttrue", theta); // guard: ok
    monitor.process_named(&heap, "next", theta); //         consume: ok
    monitor.process_named(&heap, "next", theta); //         unchecked next!

    // 4. Both formalisms agree: one violation each.
    for (block, engine) in monitor.engines().iter().enumerate() {
        let handler = &monitor.spec().properties[block].handlers[0];
        for trigger in engine.triggers() {
            println!(
                "block {} (@{}) fired at event #{}: {}",
                block + 1,
                handler.name,
                trigger.step + 1,
                handler.message.as_deref().unwrap_or("(no message)")
            );
        }
    }
    assert_eq!(monitor.triggers(), 2, "FSM and LTL blocks each report once");
    heap.exit_frame(frame);
    println!("done: {} total reports", monitor.triggers());
    Ok(())
}
