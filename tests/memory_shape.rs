//! The Figure 9(B) memory-shape claims, as executable assertions on a
//! representative workload: the Tracematches baseline retains the least,
//! RV no more than JavaMOP, and the gap appears exactly where object
//! lifetimes skew.

use rv_bench::{MonitorSink, System};
use rv_monitor::workloads::Profile;
use rv_props::Property;

fn peak_kib(system: System, benchmark: &str, property: Property) -> f64 {
    let profile = Profile::by_name(benchmark).unwrap();
    let mut sink = MonitorSink::new(system, &[property]);
    let _ = rv_monitor::workloads::run(&profile, 0.5, &mut sink);
    sink.peak_bytes as f64 / 1024.0
}

#[test]
fn tracematches_memory_is_lowest_on_iterator_workloads() {
    // The paper (and our Fig. 9B): TM's per-state disjunct sets beat the
    // indexing-tree engines on memory, often by an order of magnitude.
    for bench in ["avrora", "pmd"] {
        let tm = peak_kib(System::Tm, bench, Property::UnsafeIter);
        let mop = peak_kib(System::Mop, bench, Property::UnsafeIter);
        let rv = peak_kib(System::Rv, bench, Property::UnsafeIter);
        assert!(tm < mop, "{bench}: TM {tm:.1} KiB vs MOP {mop:.1} KiB");
        assert!(tm < rv, "{bench}: TM {tm:.1} KiB vs RV {rv:.1} KiB");
    }
}

#[test]
fn rv_peak_memory_at_most_javamops_where_lifetimes_skew() {
    // bloat/pmd linger their collections: RV reclaims dead-iterator
    // monitors mid-run, MOP cannot.
    for bench in ["bloat", "pmd"] {
        let mop = peak_kib(System::Mop, bench, Property::UnsafeIter);
        let rv = peak_kib(System::Rv, bench, Property::UnsafeIter);
        assert!(rv <= mop * 1.05, "{bench}: RV {rv:.1} KiB should not exceed MOP {mop:.1} KiB");
    }
}

#[test]
fn short_lifetime_benchmarks_show_no_policy_gap() {
    // h2's collections die with their iterators: both policies collect at
    // the same pace (the paper's h2 row is nearly flat).
    let mop = peak_kib(System::Mop, "h2", Property::UnsafeIter);
    let rv = peak_kib(System::Rv, "h2", Property::UnsafeIter);
    let ratio = rv / mop.max(0.001);
    assert!(
        (0.5..=1.5).contains(&ratio),
        "h2 should be policy-insensitive: RV {rv:.1} vs MOP {mop:.1}"
    );
}
