//! `rvmon` error handling: malformed specs, bad arguments, and unreadable
//! paths must produce clean nonzero exits with spanned diagnostics — never
//! a panic (which would surface as exit code 101 and a `panicked at`
//! backtrace on stderr).

use std::process::Command;

fn rvmon() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rvmon"))
}

fn repo_path(rel: &str) -> String {
    format!("{}/{rel}", env!("CARGO_MANIFEST_DIR"))
}

/// Runs rvmon with `args` and returns (exit code, stdout, stderr).
fn run(args: &[&str]) -> (i32, String, String) {
    let out = rvmon().args(args).output().expect("run rvmon");
    (
        out.status.code().expect("rvmon terminated by signal"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// Every file in `specs/bad/` must fail every spec-consuming subcommand
/// with exit 1 and a spanned `error:` diagnostic — not a panic.
#[test]
fn bad_specs_produce_spanned_diagnostics_not_panics() {
    let dir = repo_path("specs/bad");
    let entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("specs/bad exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "rv"))
        .collect();
    assert!(entries.len() >= 6, "bad-spec corpus went missing: {entries:?}");
    for path in &entries {
        let p = path.to_str().expect("utf-8 path");
        for cmd in ["check", "analyze", "fmt", "dfa", "chaos"] {
            let (code, _out, err) = run(&[cmd, p]);
            assert_eq!(code, 1, "rvmon {cmd} {p}: expected exit 1, got {code}\nstderr: {err}");
            assert!(err.contains("error:"), "rvmon {cmd} {p}: no diagnostic on stderr: {err}");
            // A spanned diagnostic leads with file:line:col.
            assert!(
                err.contains(&format!("{p}:")),
                "rvmon {cmd} {p}: diagnostic not anchored to the file: {err}"
            );
            assert!(!err.contains("panicked"), "rvmon {cmd} {p} panicked: {err}");
        }
    }
}

#[test]
fn unreadable_spec_path_is_a_usage_error() {
    let (code, _out, err) = run(&["check", "specs/definitely_not_here.rv"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("cannot read"), "stderr: {err}");
    assert!(!err.contains("panicked"), "stderr: {err}");
}

#[test]
fn usage_errors_exit_2() {
    let good = repo_path("specs/unsafe_iter.rv");
    for args in [
        vec![],
        vec!["check"],
        vec!["frobnicate", good.as_str()],
        vec!["check", good.as_str(), "trailing-arg"],
        vec!["trace", good.as_str()],
        vec!["chaos", good.as_str(), "--seed", "not-a-number"],
        vec!["chaos", good.as_str(), "--unknown-flag"],
    ] {
        let (code, _out, err) = run(&args);
        assert_eq!(code, 2, "rvmon {args:?}: expected exit 2, got {code}\nstderr: {err}");
        assert!(!err.contains("panicked"), "rvmon {args:?} panicked: {err}");
    }
}

#[test]
fn trace_rejects_unknown_events_and_objects_cleanly() {
    let spec = repo_path("specs/unsafe_iter.rv");
    let dir = std::env::temp_dir();
    let bad_event = dir.join("rvmon_cli_errors_bad_event.events");
    std::fs::write(&bad_event, "zap o1\n").expect("write events file");
    let (code, _out, err) = run(&["trace", spec.as_str(), bad_event.to_str().expect("utf-8")]);
    assert_eq!(code, 1, "stderr: {err}");
    assert!(err.contains("error:"), "stderr: {err}");
    assert!(!err.contains("panicked"), "stderr: {err}");

    let bad_obj = dir.join("rvmon_cli_errors_bad_obj.events");
    std::fs::write(&bad_obj, "!free ghost\n").expect("write events file");
    let (code, _out, err) = run(&["trace", spec.as_str(), bad_obj.to_str().expect("utf-8")]);
    assert_eq!(code, 1, "stderr: {err}");
    assert!(err.contains("unknown object"), "stderr: {err}");
}

/// The chaos subcommand is seed-reproducible: identical invocations give
/// byte-identical reports, and a different seed gives a different report.
#[test]
fn chaos_subcommand_is_deterministic_per_seed() {
    let spec = repo_path("specs/unsafe_iter.rv");
    let (c1, out1, err1) = run(&["chaos", spec.as_str(), "--seed", "11", "--events", "128"]);
    assert_eq!(c1, 0, "stderr: {err1}");
    let (c2, out2, _) = run(&["chaos", spec.as_str(), "--seed", "11", "--events", "128"]);
    assert_eq!(c2, 0);
    assert_eq!(out1, out2, "same seed must reproduce the identical report");
    let (c3, out3, _) = run(&["chaos", spec.as_str(), "--seed", "12", "--events", "128"]);
    assert_eq!(c3, 0);
    assert_ne!(out1, out3, "different seeds must diverge");
    assert!(out1.contains("OK"), "report should mark passing runs: {out1}");
}
