//! End-to-end integration: spec source → compiler → engine → simulated
//! workload → statistics, crossing every crate in the workspace.

use rv_bench::{MonitorSink, System};
use rv_monitor::core::{EngineConfig, PropertyMonitor};
use rv_monitor::heap::Heap;
use rv_monitor::props::Property;
use rv_monitor::spec::CompiledSpec;
use rv_monitor::workloads::{EventSink, Profile, SimEvent};

/// A sink that monitors a *custom* (non-catalog) spec over the workload's
/// iterator events — proving the pipeline is open to user specs, not just
/// the bundled ten.
struct CustomSpecSink {
    monitor: PropertyMonitor,
}

impl EventSink for CustomSpecSink {
    fn emit(&mut self, heap: &Heap, event: &SimEvent) {
        // "Every iterator must be exhausted": hasnextfalse must eventually
        // follow every create. We just watch create/hasnextfalse pairs.
        let (name, iter) = match *event {
            SimEvent::CreateIter { iter, .. } => ("created", iter),
            SimEvent::HasNextFalse { iter } => ("exhausted", iter),
            _ => return,
        };
        if let Some(id) = self.monitor.event(name) {
            let params = &self.monitor.spec().event_params[id.as_usize()];
            let binding = rv_monitor::core::Binding::from_pairs(&[(params[0], iter)]);
            self.monitor.process(heap, id, binding);
        }
    }
}

#[test]
fn custom_spec_runs_over_a_workload() {
    let spec = CompiledSpec::from_source(
        r#"
        Exhausted(Iterator i) {
            event created(i);
            event exhausted(i);
            ere: created exhausted
            @match { report "iterator fully drained"; }
        }
        "#,
    )
    .expect("custom spec compiles");
    let mut sink = CustomSpecSink { monitor: PropertyMonitor::new(spec, &EngineConfig::default()) };
    let _ = rv_monitor::workloads::run(&Profile::pmd(), 0.5, &mut sink);
    assert!(sink.monitor.triggers() > 0, "plenty of iterators drain fully");
}

#[test]
fn every_catalog_property_survives_every_benchmark() {
    // Smoke the full matrix at a small scale: no panics, consistent stats.
    for profile in Profile::dacapo() {
        for property in Property::ALL {
            let mut sink = MonitorSink::new(System::Rv, &[property]);
            let _ = rv_monitor::workloads::run(&profile, 0.1, &mut sink);
            let stats = sink.engine_stats()[0].1.expect("engine stats");
            assert!(
                stats.live_monitors as u64 + stats.monitors_collected == stats.monitors_created,
                "{}/{property:?}: inconsistent counters {stats}",
                profile.name
            );
        }
    }
}

#[test]
fn rv_and_mop_and_tm_agree_on_violations_across_benchmarks() {
    for profile in ["bloat", "pmd", "avrora", "h2"] {
        let profile = Profile::by_name(profile).unwrap();
        for property in [Property::UnsafeIter, Property::HasNext, Property::UnsafeSyncColl] {
            let mut counts = Vec::new();
            for system in System::ALL {
                let mut sink = MonitorSink::new(system, &[property]);
                let _ = rv_monitor::workloads::run(&profile, 0.25, &mut sink);
                counts.push(sink.triggers());
            }
            // HasNext runs two blocks under RV/MOP but TM attaches only the
            // first: halve the engine counts for the comparison.
            let (tm, mop, rv) = (counts[0], counts[1], counts[2]);
            let factor = if property == Property::HasNext { 2 } else { 1 };
            assert_eq!(mop, rv, "{}/{property:?}", profile.name);
            assert_eq!(tm * factor, mop, "{}/{property:?}", profile.name);
        }
    }
}

#[test]
fn rv_retains_fewer_monitors_than_mop_wherever_lifetimes_skew() {
    // On every benchmark with lingering collections, RV's live-monitor
    // count at exit is no worse than MOP's, and strictly better on the
    // iterator-heavy ones.
    for (name, strictly) in [("bloat", true), ("pmd", true), ("avrora", true), ("batik", false)] {
        let profile = Profile::by_name(name).unwrap();
        let run = |system: System| {
            let mut sink = MonitorSink::new(system, &[Property::UnsafeIter]);
            let _ = rv_monitor::workloads::run(&profile, 0.5, &mut sink);
            sink.engine_stats()[0].1.unwrap()
        };
        let rv = run(System::Rv);
        let mop = run(System::Mop);
        assert!(
            rv.live_monitors <= mop.live_monitors,
            "{name}: rv {} vs mop {}",
            rv.live_monitors,
            mop.live_monitors
        );
        if strictly {
            assert!(
                rv.live_monitors < mop.live_monitors,
                "{name}: rv {} vs mop {}",
                rv.live_monitors,
                mop.live_monitors
            );
        }
    }
}

#[test]
fn all_five_properties_run_simultaneously() {
    // The paper's ALL column: five properties at once under RV.
    let mut sink = MonitorSink::new(System::Rv, &Property::EVALUATED);
    let _ = rv_monitor::workloads::run(&Profile::by_name("avrora").unwrap(), 0.5, &mut sink);
    assert!(sink.events > 0);
    let per_property = sink.engine_stats();
    assert_eq!(per_property.len(), 5);
    for (property, stats) in per_property {
        let stats = stats.expect("engine stats");
        assert!(stats.events > 0, "{property:?} saw no events");
    }
}
