//! End-to-end tests of `rvmon explain`: monitor provenance over the
//! shipped UNSAFEITER demo. The summary row must re-derive Figure 10's
//! E/M/FM/CM from per-instance records and agree with the engine's own
//! statistics (the command exits 1 on any accounting mismatch), and
//! `--binding` must print a full causal life story per matching monitor.

use std::process::Command;

fn rvmon() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rvmon"))
}

fn repo_path(rel: &str) -> String {
    format!("{}/{rel}", env!("CARGO_MANIFEST_DIR"))
}

fn demo_args(extra: &[&str]) -> Vec<String> {
    let mut args = vec![
        "explain".to_string(),
        repo_path("specs/unsafe_iter.rv"),
        repo_path("examples/unsafe_iter.events"),
    ];
    args.extend(extra.iter().map(ToString::to_string));
    args
}

/// The demo script (2 iterators, one freed mid-run, a GC and a sweep)
/// has a known Figure 10 row; the summary must reproduce it exactly and
/// pass the ledger-vs-engine cross-check (exit 0).
#[test]
fn explain_summary_reproduces_the_demo_figure10_row() {
    let out = rvmon().args(demo_args(&["--summary"])).output().expect("run rvmon");
    assert!(
        out.status.success(),
        "accounting identity must hold:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf-8");
    assert!(
        stdout.contains("block 1: E=7 M=3 FM=1 CM=2 (1 still live)"),
        "wrong summary row:\n{stdout}"
    );
}

/// With no flags at all, the summary is the default output.
#[test]
fn explain_defaults_to_the_summary() {
    let out = rvmon().args(demo_args(&[])).output().expect("run rvmon");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf-8");
    assert!(stdout.contains("E=7 M=3 FM=1 CM=2"), "no summary row:\n{stdout}");
}

/// `--binding` prints one life story per matching instance: creation,
/// every flagging with its cause and the dead parameter set, and the
/// collection point with its sweep attribution.
#[test]
fn explain_binding_prints_causal_life_stories() {
    // Bindings render with parameter names (`i=#2g0`), so `i=` matches
    // the two monitors that bind an iterator; the `update`-created
    // collection-only monitor is excluded.
    let out = rvmon().args(demo_args(&["--binding", "i="])).output().expect("run rvmon");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).expect("utf-8");
    assert_eq!(stdout.matches("monitor #").count(), 2, "two iterator monitors:\n{stdout}");
    assert_eq!(stdout.matches("  created   at event ").count(), 2, "{stdout}");
    // The freed iterator's monitor was flagged by the aliveness rule
    // under a sweep, then physically collected.
    assert!(stdout.contains("cause: aliveness"), "no aliveness flag:\n{stdout}");
    assert!(stdout.contains("sweep #1"), "flag not attributed to the sweep:\n{stdout}");
    assert!(stdout.contains("  collected at event "), "no collection line:\n{stdout}");
    // Without --summary, story mode prints stories only.
    assert!(!stdout.contains("E=7"), "story mode must not print the summary:\n{stdout}");

    // `c=` matches every monitor (all bind the collection), including
    // the one that outlives the run.
    let out = rvmon().args(demo_args(&["--binding", "c="])).output().expect("run rvmon");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf-8");
    assert_eq!(stdout.matches("monitor #").count(), 3, "all three monitors:\n{stdout}");
    assert!(stdout.contains("  still live"), "one monitor survives the run:\n{stdout}");
}

/// A substring matching no rendered binding says so rather than printing
/// nothing.
#[test]
fn explain_binding_reports_no_matches() {
    let out = rvmon().args(demo_args(&["--binding", "zebra="])).output().expect("run rvmon");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf-8");
    assert!(stdout.contains("block 1: no monitor instance matches `zebra=`"), "{stdout}");
}

/// Usage errors (missing events file, flag without a value) exit 2.
#[test]
fn explain_usage_errors_exit_2() {
    let missing_events = vec!["explain".to_string(), repo_path("specs/unsafe_iter.rv")];
    let flag_without_value = demo_args(&["--binding"]);
    for args in [missing_events, flag_without_value] {
        let out = rvmon().args(&args).output().expect("run rvmon");
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("usage: rvmon explain"), "args {args:?}: {stderr}");
    }
}
