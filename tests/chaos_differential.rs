//! The deterministic fault-injection differential suite: for every catalog
//! property, every property block, every GC policy, and a battery of fixed
//! seeds, drive the engine over a random workload on a [`ChaosHeap`]
//! (forced collections at adversarial points, early-but-legal weak-ref
//! deaths, allocation-pressure spikes) and assert
//!
//! 1. the engine's goal reports equal the Figure 5 reference oracle's on
//!    the recorded trace (Theorem 1: monitor GC never changes verdicts),
//!    and
//! 2. `Engine::check_invariants` holds after every injected fault (checked
//!    inside `run_block`).
//!
//! Runs on the default (offline) build — no external dependencies.

use rv_monitor::core::{run_block, ChaosOutcome, GcPolicy};
use rv_monitor::props::Property;

const SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 21, 34];
const EVENTS: usize = 192;

/// Runs the full seed battery for one policy across the whole catalog,
/// returning the outcomes for vacuity aggregation.
fn battery(policy: GcPolicy) -> Vec<ChaosOutcome> {
    let mut outcomes = Vec::new();
    for property in Property::ALL {
        let spec = rv_monitor::props::compiled(property).expect("catalog compiles");
        for block in 0..spec.properties.len() {
            for seed in SEEDS {
                let out = run_block(&spec, block, policy, seed, EVENTS)
                    .unwrap_or_else(|e| panic!("{property:?} block {block} seed {seed}: {e}"));
                assert!(
                    out.verdicts_match(),
                    "{property:?} block {block} {policy:?} seed {seed}: \
                     engine {:?} vs oracle {:?}",
                    out.engine_triggers,
                    out.oracle_triggers
                );
                assert_eq!(out.trace_len, EVENTS);
                outcomes.push(out);
            }
        }
    }
    outcomes
}

/// A battery is worthless if the dice never injected anything or the
/// properties never fired: check aggregates, not per-run luck.
fn assert_not_vacuous(outcomes: &[ChaosOutcome]) {
    let dooms: u64 = outcomes.iter().map(|o| o.chaos.dooms).sum();
    let collects: u64 = outcomes.iter().map(|o| o.chaos.forced_collects).sum();
    let spikes: u64 = outcomes.iter().map(|o| o.chaos.spikes).sum();
    let triggers: usize = outcomes.iter().map(|o| o.engine_triggers.len()).sum();
    assert!(dooms > 0, "no early weak-ref deaths were ever injected");
    assert!(collects > 0, "no forced collections were ever injected");
    assert!(spikes > 0, "no allocation spikes were ever injected");
    assert!(triggers > 0, "no property ever triggered — the workload is too tame");
}

#[test]
fn chaos_differential_policy_none() {
    assert_not_vacuous(&battery(GcPolicy::None));
}

#[test]
fn chaos_differential_policy_all_params_dead() {
    assert_not_vacuous(&battery(GcPolicy::AllParamsDead));
}

#[test]
fn chaos_differential_policy_coenable_lazy() {
    assert_not_vacuous(&battery(GcPolicy::CoenableLazy));
}

/// GC under chaos must actually collect monitors somewhere in the battery,
/// otherwise the differential isn't exercising the machinery it claims to.
#[test]
fn chaos_batteries_exercise_monitor_gc() {
    let outcomes = battery(GcPolicy::CoenableLazy);
    let collected: u64 = outcomes.iter().map(|o| o.stats.monitors_collected).sum();
    let flagged: u64 = outcomes.iter().map(|o| o.stats.monitors_flagged).sum();
    assert!(collected > 0, "no monitor was ever collected under chaos");
    assert!(flagged > 0, "no monitor was ever flagged under chaos");
}
