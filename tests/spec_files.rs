//! The `specs/` directory ships the property catalog as standalone `.rv`
//! files for the `rvmon` CLI; they must stay in sync with the bundled
//! sources in `rv-props`.

use rv_monitor::props::Property;
use rv_monitor::spec::CompiledSpec;

fn file_name(p: Property) -> &'static str {
    match p {
        Property::HasNext => "has_next",
        Property::UnsafeIter => "unsafe_iter",
        Property::UnsafeMapIter => "unsafe_map_iter",
        Property::UnsafeSyncColl => "unsafe_sync_coll",
        Property::UnsafeSyncMap => "unsafe_sync_map",
        Property::SafeLock => "safe_lock",
        Property::HashSet => "hash_set",
        Property::SafeEnum => "safe_enum",
        Property::SafeFile => "safe_file",
        Property::SafeFileWriter => "safe_file_writer",
    }
}

#[test]
fn every_shipped_spec_file_compiles_and_matches_the_catalog() {
    for p in Property::ALL {
        let path = format!("{}/specs/{}.rv", env!("CARGO_MANIFEST_DIR"), file_name(p));
        let source = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
        let from_file = CompiledSpec::from_source(&source)
            .unwrap_or_else(|e| panic!("{path}: {}", e.render(&source)));
        let bundled = rv_monitor::props::compiled(p).unwrap();
        assert_eq!(from_file.name, bundled.name, "{path}");
        assert_eq!(from_file.alphabet, bundled.alphabet, "{path}");
        assert_eq!(from_file.event_params, bundled.event_params, "{path}");
        assert_eq!(from_file.properties.len(), bundled.properties.len(), "{path}");
        for (a, b) in from_file.properties.iter().zip(&bundled.properties) {
            assert_eq!(a.goal, b.goal, "{path}");
            assert_eq!(a.coenable, b.coenable, "{path}");
        }
    }
}
