//! End-to-end test of `rvmon trace`: feed the shipped UNSAFEITER demo
//! through the real binary and check the emitted JSONL trace and metrics
//! snapshot — including that the snapshot's observer counters agree with
//! the engine's own E/M/FM/CM (the ISSUE acceptance criterion).
//!
//! The workspace is serde-free, so the assertions use small string-level
//! extractors over the known (hand-rolled, stable) JSON shapes.

use std::process::Command;

fn rvmon() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rvmon"))
}

fn repo_path(rel: &str) -> String {
    format!("{}/{rel}", env!("CARGO_MANIFEST_DIR"))
}

/// Extracts `"key":<u64>` from the object that starts at the first
/// occurrence of `section` in `json`.
fn field_u64(json: &str, section: &str, key: &str) -> u64 {
    let start = json.find(section).unwrap_or_else(|| panic!("no `{section}` in: {json}"));
    let after = &json[start + section.len()..];
    let needle = format!("\"{key}\":");
    let at = after.find(&needle).unwrap_or_else(|| panic!("no `{key}` after `{section}`"));
    let digits: String =
        after[at + needle.len()..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().unwrap_or_else(|_| panic!("`{key}` is not a u64 in: {json}"))
}

#[test]
fn trace_subcommand_emits_jsonl_and_matching_metrics() {
    let out = rvmon()
        .args([
            "trace",
            &repo_path("specs/unsafe_iter.rv"),
            &repo_path("examples/unsafe_iter.events"),
        ])
        .output()
        .expect("run rvmon");
    assert!(out.status.success(), "rvmon trace failed:\n{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");

    // One trace section and one metrics section for the single block.
    assert!(stdout.contains("# block 1 trace"), "missing trace header:\n{stdout}");
    assert!(stdout.contains("# block 1 metrics"), "missing metrics header:\n{stdout}");

    let mut in_trace = false;
    let mut metrics_line = None;
    let mut kinds: Vec<String> = Vec::new();
    for line in stdout.lines() {
        if line.starts_with("# block 1 trace") {
            in_trace = true;
        } else if line.starts_with("# block 1 metrics") {
            in_trace = false;
        } else if in_trace {
            // Every trace line is a self-contained JSON object with the
            // envelope fields and a kind tag.
            assert!(line.starts_with('{') && line.ends_with('}'), "bad JSONL: {line}");
            for envelope in ["\"seq\":", "\"t_ns\":", "\"event_index\":", "\"kind\":\""] {
                assert!(line.contains(envelope), "missing {envelope}: {line}");
            }
            let kind = line.split("\"kind\":\"").nth(1).unwrap();
            kinds.push(kind[..kind.find('"').unwrap()].to_string());
        } else if line.starts_with('{') {
            metrics_line = Some(line.to_string());
        }
    }

    // The demo script drives the full lifecycle: dispatch, creation, a
    // @match trigger, then object death → dead key → flag → collection
    // under a sweep.
    for expected in
        ["event", "created", "trigger", "dead_key", "flagged", "collected", "sweep_started"]
    {
        assert!(kinds.iter().any(|k| k == expected), "no `{expected}` record in {kinds:?}");
    }

    // Human-readable rendering: the flagged record names the dead
    // parameter and the aliveness cause from the coenable-set policy.
    assert!(
        stdout.contains("\"cause\":\"aliveness\""),
        "expected an aliveness-flag record:\n{stdout}"
    );

    // Observer counters == engine stats (E / M / FM / CM parity).
    let metrics = metrics_line.expect("metrics snapshot line");
    for key in ["events", "monitors_created", "monitors_flagged", "monitors_collected"] {
        assert_eq!(
            field_u64(&metrics, "\"counters\":", key),
            field_u64(&metrics, "\"engine\":", key),
            "counter `{key}` disagrees with engine stats: {metrics}"
        );
    }
    // The demo produces real activity, not a vacuous all-zero snapshot.
    assert!(field_u64(&metrics, "\"counters\":", "events") > 0);
    assert!(field_u64(&metrics, "\"counters\":", "monitors_created") > 0);
    assert!(field_u64(&metrics, "\"counters\":", "monitors_flagged") > 0);
    assert!(field_u64(&metrics, "\"counters\":", "monitors_collected") > 0);
    assert!(field_u64(&metrics, "\"counters\":", "triggers") > 0);
    // The snapshot also embeds the simulated-heap stats.
    assert!(field_u64(&metrics, "\"heap\":", "allocations") > 0);
}

#[test]
fn trace_subcommand_requires_an_events_file() {
    let out =
        rvmon().args(["trace", &repo_path("specs/unsafe_iter.rv")]).output().expect("run rvmon");
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage: rvmon trace"), "unexpected stderr: {stderr}");
}

#[test]
fn trace_subcommand_rejects_unknown_events() {
    let dir = std::env::temp_dir().join("rvmon-cli-trace-test");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.events");
    std::fs::write(&bad, "create c1 i1\nzap c1\n").unwrap();
    let out = rvmon()
        .args(["trace", &repo_path("specs/unsafe_iter.rv"), bad.to_str().unwrap()])
        .output()
        .expect("run rvmon");
    assert_eq!(out.status.code(), Some(1), "bad event names exit 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("zap"), "error should name the bad event: {stderr}");
}
