//! End-to-end test of `rvmon trace`: feed the shipped UNSAFEITER demo
//! through the real binary and check the emitted JSONL trace and metrics
//! snapshot — including that the snapshot's observer counters agree with
//! the engine's own E/M/FM/CM (the ISSUE acceptance criterion).
//!
//! The workspace is serde-free, so the assertions use small string-level
//! extractors over the known (hand-rolled, stable) JSON shapes.

use std::process::Command;

fn rvmon() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rvmon"))
}

fn repo_path(rel: &str) -> String {
    format!("{}/{rel}", env!("CARGO_MANIFEST_DIR"))
}

/// Extracts `"key":<u64>` from the object that starts at the first
/// occurrence of `section` in `json`.
fn field_u64(json: &str, section: &str, key: &str) -> u64 {
    let start = json.find(section).unwrap_or_else(|| panic!("no `{section}` in: {json}"));
    let after = &json[start + section.len()..];
    let needle = format!("\"{key}\":");
    let at = after.find(&needle).unwrap_or_else(|| panic!("no `{key}` after `{section}`"));
    let digits: String =
        after[at + needle.len()..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().unwrap_or_else(|_| panic!("`{key}` is not a u64 in: {json}"))
}

#[test]
fn trace_subcommand_emits_jsonl_and_matching_metrics() {
    let out = rvmon()
        .args([
            "trace",
            &repo_path("specs/unsafe_iter.rv"),
            &repo_path("examples/unsafe_iter.events"),
        ])
        .output()
        .expect("run rvmon");
    assert!(out.status.success(), "rvmon trace failed:\n{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");

    // One trace section and one metrics section for the single block.
    assert!(stdout.contains("# block 1 trace"), "missing trace header:\n{stdout}");
    assert!(stdout.contains("# block 1 metrics"), "missing metrics header:\n{stdout}");

    let mut in_trace = false;
    let mut metrics_line = None;
    let mut kinds: Vec<String> = Vec::new();
    for line in stdout.lines() {
        if line.starts_with("# block 1 trace") {
            in_trace = true;
        } else if line.starts_with("# block 1 metrics") {
            in_trace = false;
        } else if in_trace {
            // Every trace line is a self-contained JSON object with the
            // envelope fields and a kind tag.
            assert!(line.starts_with('{') && line.ends_with('}'), "bad JSONL: {line}");
            for envelope in ["\"seq\":", "\"t_ns\":", "\"event_index\":", "\"kind\":\""] {
                assert!(line.contains(envelope), "missing {envelope}: {line}");
            }
            let kind = line.split("\"kind\":\"").nth(1).unwrap();
            kinds.push(kind[..kind.find('"').unwrap()].to_string());
        } else if line.starts_with('{') {
            metrics_line = Some(line.to_string());
        }
    }

    // The demo script drives the full lifecycle: dispatch, creation, a
    // @match trigger, then object death → dead key → flag → collection
    // under a sweep.
    for expected in
        ["event", "created", "trigger", "dead_key", "flagged", "collected", "sweep_started"]
    {
        assert!(kinds.iter().any(|k| k == expected), "no `{expected}` record in {kinds:?}");
    }

    // Human-readable rendering: the flagged record names the dead
    // parameter and the aliveness cause from the coenable-set policy.
    assert!(
        stdout.contains("\"cause\":\"aliveness\""),
        "expected an aliveness-flag record:\n{stdout}"
    );

    // Observer counters == engine stats (E / M / FM / CM parity).
    let metrics = metrics_line.expect("metrics snapshot line");
    for key in ["events", "monitors_created", "monitors_flagged", "monitors_collected"] {
        assert_eq!(
            field_u64(&metrics, "\"counters\":", key),
            field_u64(&metrics, "\"engine\":", key),
            "counter `{key}` disagrees with engine stats: {metrics}"
        );
    }
    // The demo produces real activity, not a vacuous all-zero snapshot.
    assert!(field_u64(&metrics, "\"counters\":", "events") > 0);
    assert!(field_u64(&metrics, "\"counters\":", "monitors_created") > 0);
    assert!(field_u64(&metrics, "\"counters\":", "monitors_flagged") > 0);
    assert!(field_u64(&metrics, "\"counters\":", "monitors_collected") > 0);
    assert!(field_u64(&metrics, "\"counters\":", "triggers") > 0);
    // The snapshot also embeds the simulated-heap stats.
    assert!(field_u64(&metrics, "\"heap\":", "allocations") > 0);
}

/// Runs `rvmon trace` on the shipped demo with `extra` flags and returns
/// `(trace_lines, header)` for block 1.
fn traced(extra: &[&str]) -> (Vec<String>, String) {
    let mut args = vec![
        "trace".to_string(),
        repo_path("specs/unsafe_iter.rv"),
        repo_path("examples/unsafe_iter.events"),
    ];
    args.extend(extra.iter().map(ToString::to_string));
    let out = rvmon().args(&args).output().expect("run rvmon");
    assert!(out.status.success(), "rvmon trace failed:\n{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
    let mut header = String::new();
    let mut lines = Vec::new();
    let mut in_trace = false;
    for line in stdout.lines() {
        if line.starts_with("# block 1 trace") {
            header = line.to_string();
            in_trace = true;
        } else if line.starts_with("# block 1 metrics") {
            in_trace = false;
        } else if in_trace {
            lines.push(line.to_string());
        }
    }
    (lines, header)
}

#[test]
fn trace_kind_filter_keeps_only_that_kind_and_accounts_the_rest() {
    let (all, plain_header) = traced(&[]);
    assert!(!plain_header.contains("filtered out"), "no filter, no filter count: {plain_header}");
    let (kept, header) = traced(&["--kind", "flagged"]);
    assert!(!kept.is_empty(), "the demo flags a monitor");
    for line in &kept {
        assert!(line.contains("\"kind\":\"flagged\""), "foreign record passed the filter: {line}");
    }
    assert!(
        header.contains(&format!("({} records", kept.len())),
        "header counts kept records: {header}"
    );
    assert!(
        header.contains(&format!("{} filtered out", all.len() - kept.len())),
        "header accounts for the filtered remainder: {header}"
    );
}

#[test]
fn trace_event_filter_matches_dispatch_and_flag_records() {
    let (kept, _) = traced(&["--event", "next"]);
    assert!(!kept.is_empty(), "the demo dispatches `next`");
    for line in &kept {
        let named = |field: &str| {
            line.split(field).nth(1).and_then(|r| r.split('"').next()).is_some_and(|v| v == "next")
        };
        assert!(
            named("\"name\":\"") || named("\"last_event\":\""),
            "record does not reference `next`: {line}"
        );
    }
    // Exact-match semantics: `nex` is not an event name and matches nothing.
    let (none, _) = traced(&["--event", "nex"]);
    assert!(none.is_empty(), "event filter must be exact, got: {none:?}");
}

#[test]
fn trace_binding_filter_composes_with_kind() {
    // Bindings render as `param=#index g generation`; every created/flagged/
    // collected record for an iterator binds `i=`.
    let (kept, _) = traced(&["--kind", "created", "--binding-contains", "i="]);
    assert!(!kept.is_empty(), "the demo creates iterator monitors");
    for line in &kept {
        assert!(line.contains("\"kind\":\"created\""), "kind filter leaked: {line}");
        let bound = line
            .split("\"binding\":\"")
            .nth(1)
            .and_then(|r| r.split('"').next())
            .is_some_and(|v| v.contains("i="));
        assert!(bound, "binding filter leaked: {line}");
    }
    // A substring matching no rendered binding filters everything.
    let (none, header) = traced(&["--binding-contains", "zebra="]);
    assert!(none.is_empty(), "impossible binding must filter all: {none:?}");
    assert!(header.contains("(0 records"), "header shows zero kept: {header}");
}

#[test]
fn trace_filter_flags_require_values() {
    for flag in ["--kind", "--event", "--binding-contains"] {
        let out = rvmon()
            .args([
                "trace",
                &repo_path("specs/unsafe_iter.rv"),
                &repo_path("examples/unsafe_iter.events"),
                flag,
            ])
            .output()
            .expect("run rvmon");
        assert_eq!(out.status.code(), Some(2), "{flag} without a value exits 2");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("usage: rvmon trace"), "{flag}: unexpected stderr: {stderr}");
    }
}

#[test]
fn trace_subcommand_requires_an_events_file() {
    let out =
        rvmon().args(["trace", &repo_path("specs/unsafe_iter.rv")]).output().expect("run rvmon");
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage: rvmon trace"), "unexpected stderr: {stderr}");
}

#[test]
fn trace_subcommand_rejects_unknown_events() {
    let dir = std::env::temp_dir().join("rvmon-cli-trace-test");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.events");
    std::fs::write(&bad, "create c1 i1\nzap c1\n").unwrap();
    let out = rvmon()
        .args(["trace", &repo_path("specs/unsafe_iter.rv"), bad.to_str().unwrap()])
        .output()
        .expect("run rvmon");
    assert_eq!(out.status.code(), Some(1), "bad event names exit 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("zap"), "error should name the bad event: {stderr}");
}
