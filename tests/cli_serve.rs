//! Curl-less smoke test of `rvmon serve`: spawn the real binary on an
//! ephemeral port in `--once` mode, scrape the bound address from its
//! stdout, fetch `/metrics` over a raw [`std::net::TcpStream`], and
//! check the Prometheus text exposition — counters, phase histograms and
//! the well-formedness rules scrapers rely on.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Command, Stdio};
use std::time::Duration;

fn repo_path(rel: &str) -> String {
    format!("{}/{rel}", env!("CARGO_MANIFEST_DIR"))
}

/// Runs `rvmon serve --once --port 0` on the shipped demo and returns
/// the full HTTP response to a GET of `path`.
fn fetch_once(path: &str) -> String {
    let mut child = Command::new(env!("CARGO_BIN_EXE_rvmon"))
        .args([
            "serve",
            &repo_path("specs/unsafe_iter.rv"),
            &repo_path("examples/unsafe_iter.events"),
            "--port",
            "0",
            "--once",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn rvmon serve");

    // The first stdout line announces the bound ephemeral port:
    // `serving metrics on http://127.0.0.1:PORT/metrics (one request)`.
    let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut banner = String::new();
    stdout.read_line(&mut banner).expect("read serve banner");
    let addr = banner
        .split("http://")
        .nth(1)
        .and_then(|r| r.split("/metrics").next())
        .unwrap_or_else(|| panic!("no address in banner: {banner}"));

    let mut stream = TcpStream::connect(addr).expect("connect to rvmon serve");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");

    let status = child.wait().expect("rvmon serve exits after --once");
    assert!(status.success(), "serve exited nonzero");
    response
}

#[test]
fn serve_once_answers_a_prometheus_scrape() {
    let response = fetch_once("/metrics");
    let (head, body) = response.split_once("\r\n\r\n").expect("header/body split");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "bad status line: {head}");
    assert!(head.contains("Content-Type: text/plain; version=0.0.4"), "bad content type: {head}");
    let advertised: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("Content-Length header")
        .parse()
        .expect("numeric Content-Length");
    assert_eq!(advertised, body.len(), "Content-Length must match the body");

    // The demo's Figure 10 row, as counters.
    assert!(body.contains("rvmon_events_total 7"), "E: {body}");
    assert!(body.contains("rvmon_monitors_created_total 3"), "M: {body}");
    assert!(body.contains("rvmon_monitors_flagged_total 1"), "FM: {body}");
    assert!(body.contains("rvmon_monitors_collected_total 2"), "CM: {body}");

    // Per-property phase histograms with non-zero span counts, plus the
    // profiler's own measured overhead as a gauge.
    assert!(
        body.contains(
            "rvmon_profile_spans_total{property=\"UnsafeIter/block1\",phase=\"index_lookup\"} 7"
        ),
        "one index-lookup span per event: {body}"
    );
    assert!(body.contains("phase=\"transition\""), "no transition spans: {body}");
    assert!(body.contains("phase=\"sweep\""), "no sweep spans: {body}");
    assert!(body.contains("rvmon_profiler_self_overhead_ns "), "no self-overhead gauge: {body}");

    // Exposition well-formedness: every metric line is `name{labels} value`
    // or `name value`, every metric family has HELP and TYPE, histogram
    // bucket counts are cumulative and end at +Inf == _count.
    let mut last_bucket: Option<(String, u64)> = None;
    for line in body.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            assert!(
                rest.starts_with("HELP ") || rest.starts_with("TYPE "),
                "bad comment line: {line}"
            );
            continue;
        }
        let (name_and_labels, value) = line.rsplit_once(' ').expect("sample line");
        assert!(value.parse::<f64>().is_ok(), "non-numeric sample: {line}");
        if let Some(le_at) = name_and_labels.find("le=\"") {
            let count: u64 = value.parse().expect("bucket counts are integers");
            let series = &name_and_labels[..le_at];
            if let Some((prev_series, prev_count)) = &last_bucket {
                if prev_series == series {
                    assert!(count >= *prev_count, "non-cumulative buckets: {line}");
                }
            }
            last_bucket = Some((series.to_string(), count));
            if name_and_labels.contains("le=\"+Inf\"") {
                last_bucket = None;
            }
        }
    }
    for family in ["rvmon_events_total", "rvmon_phase_duration_ns", "rvmon_profile_phase_ns"] {
        assert!(body.contains(&format!("# HELP {family} ")), "no HELP for {family}");
        assert!(body.contains(&format!("# TYPE {family} ")), "no TYPE for {family}");
    }
}

#[test]
fn serve_answers_any_path_with_the_same_exposition() {
    let response = fetch_once("/anything-at-all");
    assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
    assert!(response.contains("rvmon_events_total 7"), "{response}");
}

/// `/healthz` answers a plain-text liveness summary — 200, no Prometheus
/// version tag, a leading `ok`, and the engine's real activity counters —
/// instead of the exposition.
#[test]
fn serve_healthz_reports_engine_liveness() {
    let response = fetch_once("/healthz");
    let (head, body) = response.split_once("\r\n\r\n").expect("header/body split");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "bad status line: {head}");
    assert!(head.contains("Content-Type: text/plain"), "bad content type: {head}");
    assert!(!head.contains("version=0.0.4"), "healthz is not an exposition: {head}");
    let advertised: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("Content-Length header")
        .parse()
        .expect("numeric Content-Length");
    assert_eq!(advertised, body.len(), "Content-Length must match the body");
    assert!(body.starts_with("ok\n"), "liveness body must lead with ok: {body}");
    // The demo's real counters, not a bare heartbeat.
    assert!(body.contains("blocks 1"), "{body}");
    assert!(body.contains("events 7"), "{body}");
    assert!(body.contains("triggers 1"), "{body}");
    assert!(body.contains("monitors_live 1"), "{body}");
    assert!(!body.contains("rvmon_events_total"), "healthz must not serve metrics: {body}");
}

/// Regression test for the accept-loop wedge: a client that connects
/// and then sends nothing used to block the (serial) accept loop
/// forever, since the stream had no read timeout. The server must reap
/// the stalled peer after `--timeout-ms`, close it without a response,
/// and — crucially for `--once` — still answer the next real client and
/// exit cleanly.
#[test]
fn serve_reaps_a_stalling_client_instead_of_wedging() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_rvmon"))
        .args([
            "serve",
            &repo_path("specs/unsafe_iter.rv"),
            &repo_path("examples/unsafe_iter.events"),
            "--port",
            "0",
            "--once",
            "--timeout-ms",
            "250",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn rvmon serve");
    let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut banner = String::new();
    stdout.read_line(&mut banner).expect("read serve banner");
    let addr = banner
        .split("http://")
        .nth(1)
        .and_then(|r| r.split("/metrics").next())
        .unwrap_or_else(|| panic!("no address in banner: {banner}"))
        .to_owned();

    // The wedge: connect and go silent. Accepted first, so the server's
    // serial loop is stuck on this peer until the read timeout fires.
    let mut staller = TcpStream::connect(&addr).expect("connect staller");
    staller.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    std::thread::sleep(Duration::from_millis(50));

    // A real client queued behind the staller must still be served.
    let mut client = TcpStream::connect(&addr).expect("connect real client");
    client.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write!(client, "GET /healthz HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").unwrap();
    let mut response = String::new();
    client.read_to_string(&mut response).expect("read response past the staller");
    assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
    assert!(response.contains("\r\n\r\nok\n"), "{response}");

    // The stalled peer was closed without a byte of response.
    let mut leftovers = Vec::new();
    let n = staller.read_to_end(&mut leftovers).expect("staller sees EOF, not a hang");
    assert_eq!(n, 0, "a reaped peer must get no response: {leftovers:?}");

    // And `--once` was spent on the real request, not the staller.
    let status = child.wait().expect("serve exits after the one real request");
    assert!(status.success(), "serve exited nonzero");
}

#[test]
fn serve_usage_errors_exit_2() {
    let out = Command::new(env!("CARGO_BIN_EXE_rvmon"))
        .args([
            "serve",
            &repo_path("specs/unsafe_iter.rv"),
            &repo_path("examples/unsafe_iter.events"),
            "--port",
            "notaport",
        ])
        .output()
        .expect("run rvmon");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage: rvmon serve"));
}
