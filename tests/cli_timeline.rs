//! Structural validation of `rvmon timeline` — the Chrome trace-event
//! (Perfetto-loadable) exporter — through the real binary: the output
//! must be well-formed JSON with a `traceEvents` array, timestamps must
//! be monotone per lane, and every duration span must be a balanced
//! `B`/`E` pair that nests properly (never closing a span that is not
//! the innermost open one).

use std::process::Command;

fn repo_path(rel: &str) -> String {
    format!("{}/{rel}", env!("CARGO_MANIFEST_DIR"))
}

/// One exported trace event, pulled out of the JSON by the hand-rolled
/// scanner below (the workspace is serde-free by design).
#[derive(Debug)]
struct Ev {
    name: String,
    ph: String,
    ts: f64,
    tid: u64,
}

/// Extracts the string/number value of `"key":` within one event object.
fn field<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":");
    let rest = &obj[obj.find(&tag)? + tag.len()..];
    if let Some(quoted) = rest.strip_prefix('"') {
        quoted.split('"').next()
    } else {
        rest.split([',', '}', ']']).next()
    }
}

/// Splits the `traceEvents` array into per-event objects and parses the
/// fields the assertions need. Panics (with context) on malformed JSON —
/// that *is* the test.
fn parse_events(json: &str) -> Vec<Ev> {
    let start = json.find("\"traceEvents\":[").expect("traceEvents array") + 15;
    let mut depth = 0usize;
    let mut obj_start = None;
    let mut events = Vec::new();
    let mut end = None;
    for (i, c) in json[start..].char_indices() {
        match c {
            '{' => {
                if depth == 0 {
                    obj_start = Some(start + i);
                }
                depth += 1;
            }
            '}' => {
                depth -= 1;
                if depth == 0 {
                    let obj = &json[obj_start.expect("object start")..=start + i];
                    events.push(Ev {
                        name: field(obj, "name").expect("name").to_owned(),
                        ph: field(obj, "ph").expect("ph").to_owned(),
                        ts: field(obj, "ts").map_or(0.0, |v| v.parse().expect("numeric ts")),
                        tid: field(obj, "tid").expect("tid").parse().expect("numeric tid"),
                    });
                }
            }
            ']' if depth == 0 => {
                end = Some(start + i);
                break;
            }
            _ => {}
        }
    }
    assert!(end.is_some(), "traceEvents array must close");
    events
}

fn run_timeline(extra: &[&str]) -> std::process::Output {
    let mut args = vec![
        "timeline".to_owned(),
        repo_path("specs/unsafe_iter.rv"),
        repo_path("examples/unsafe_iter.events"),
    ];
    args.extend(extra.iter().map(|s| (*s).to_owned()));
    Command::new(env!("CARGO_BIN_EXE_rvmon")).args(&args).output().expect("run rvmon timeline")
}

#[test]
fn timeline_emits_structurally_valid_chrome_trace_json() {
    let out = run_timeline(&[]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let json = String::from_utf8(out.stdout).expect("UTF-8 output");
    let json = json.trim();
    assert!(json.starts_with('{') && json.ends_with('}'), "not a JSON object");
    assert!(json.contains("\"displayTimeUnit\":\"ms\""), "no display unit: {json}");

    let events = parse_events(json);
    assert!(!events.is_empty(), "empty trace");

    // Exactly one thread-name metadata event per lane, before any span.
    let lanes: Vec<u64> = events.iter().filter(|e| e.ph == "M").map(|e| e.tid).collect();
    assert!(!lanes.is_empty(), "no lane metadata");
    for e in events.iter().filter(|e| e.ph == "M") {
        assert_eq!(e.name, "thread_name", "unexpected metadata event: {e:?}");
    }

    // Per lane: timestamps monotone, B/E balanced, and every E closes
    // the innermost open B (proper nesting, which Perfetto requires).
    // GC cycles arrive as standalone `X` complete events.
    for &lane in &lanes {
        let mut last_ts = f64::MIN;
        let mut stack: Vec<&str> = Vec::new();
        let mut spans = 0usize;
        for e in events.iter().filter(|e| e.tid == lane && e.ph != "M") {
            assert!(
                e.ts >= last_ts,
                "lane {lane}: timestamps must be monotone ({} after {last_ts})",
                e.ts
            );
            last_ts = e.ts;
            match e.ph.as_str() {
                "B" => stack.push(&e.name),
                "E" => {
                    let open = stack.pop().unwrap_or_else(|| {
                        panic!("lane {lane}: E for `{}` with no span open", e.name)
                    });
                    assert_eq!(open, e.name, "lane {lane}: E must close the innermost B");
                    spans += 1;
                }
                "X" => assert!(e.name.starts_with("gc:"), "lane {lane}: stray X: {e:?}"),
                other => panic!("lane {lane}: unexpected phase `{other}`"),
            }
        }
        assert!(stack.is_empty(), "lane {lane}: unclosed spans: {stack:?}");
        assert!(spans > 0, "lane {lane}: no spans at all");
    }

    // The demo trace exercises the hot path, a monitor sweep and a heap
    // collection — all three span families must be on the timeline.
    assert!(events.iter().any(|e| e.name == "index_lookup"), "no hot-path spans");
    assert!(
        events.iter().any(|e| e.ph == "X" && e.name.starts_with("gc:monitor_sweep")),
        "no sweep cycle"
    );
    assert!(events.iter().any(|e| e.ph == "X" && e.name.starts_with("gc:heap")), "no heap cycle");
}

#[test]
fn timeline_out_flag_writes_the_file_and_reports_it() {
    let dir = std::env::temp_dir().join(format!("rvmon-timeline-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let file = dir.join("trace.json");
    let out = run_timeline(&["--out", file.to_str().expect("utf-8 tmpdir")]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("wrote Chrome trace"), "no confirmation: {stdout}");
    let written = std::fs::read_to_string(&file).expect("trace file");
    assert!(!parse_events(&written).is_empty(), "file holds no events");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn timeline_usage_errors_exit_2() {
    let out = Command::new(env!("CARGO_BIN_EXE_rvmon"))
        .args(["timeline", &repo_path("specs/unsafe_iter.rv")])
        .output()
        .expect("run rvmon");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage: rvmon timeline"));
}
