//! Observer/stats parity: every lifecycle callback delivered through
//! [`EngineObserver`] must agree with the engine's own [`EngineStats`]
//! counters — the observability layer is a *view* of the pipeline, never a
//! second bookkeeping source that can drift.
//!
//! Each catalog property is driven through a deterministic workload that
//! exercises creation, flagging (object death + GC), collection, sweeps
//! and triggers, under every GC policy.

use std::collections::HashMap;

use rv_monitor::core::{
    Binding, BudgetKind, DegradationPolicy, EngineConfig, EngineObserver, EngineStats, FlagCause,
    GcPolicy, MetricsRegistry, MonitorId, Phase, PhaseProfiler, PropertyMonitor, ProvenanceLedger,
    ShardConfig, ShardedMonitor, TraceRecorder,
};
use rv_monitor::heap::{Heap, HeapConfig, ObjId};
use rv_monitor::logic::{EventId, ParamId, ParamSet, Verdict};
use rv_monitor::props::{compiled, Property};
use rv_monitor::spec::CompiledSpec;

/// Counts every callback; the plainest possible observer.
#[derive(Clone, Copy, Debug, Default)]
struct Counting {
    events: u64,
    created: u64,
    flagged: u64,
    collected: u64,
    dead_keys: u64,
    triggers: u64,
    cache_hits: u64,
    cache_misses: u64,
    sweeps_started: u64,
    sweeps_finished: u64,
    sweep_flagged: u64,
    sweep_collected: u64,
    budget_trips: u64,
    deg_entered: u64,
    deg_exited: u64,
    shed: u64,
    quarantined: u64,
}

impl EngineObserver for Counting {
    fn event_dispatched(&mut self, _event: EventId, _binding: &Binding, _touched: usize) {
        self.events += 1;
    }
    fn monitor_created(&mut self, _id: MonitorId, _binding: &Binding) {
        self.created += 1;
    }
    fn monitor_flagged(
        &mut self,
        _id: MonitorId,
        _binding: &Binding,
        _last_event: EventId,
        _dead: ParamSet,
        _cause: FlagCause,
    ) {
        self.flagged += 1;
    }
    fn monitor_collected(&mut self, _id: MonitorId) {
        self.collected += 1;
    }
    fn dead_key_discovered(&mut self, _key: &Binding) {
        self.dead_keys += 1;
    }
    fn sweep_started(&mut self) {
        self.sweeps_started += 1;
    }
    fn sweep_finished(&mut self, flagged: u64, collected: u64) {
        self.sweeps_finished += 1;
        self.sweep_flagged += flagged;
        self.sweep_collected += collected;
    }
    fn trigger_fired(&mut self, _step: usize, _binding: &Binding, _verdict: Verdict) {
        self.triggers += 1;
    }
    fn cache_hit(&mut self) {
        self.cache_hits += 1;
    }
    fn cache_miss(&mut self) {
        self.cache_misses += 1;
    }
    fn budget_tripped(&mut self, _budget: BudgetKind, _observed: u64, _limit: u64) {
        self.budget_trips += 1;
    }
    fn degradation_entered(&mut self, _level: DegradationPolicy) {
        self.deg_entered += 1;
    }
    fn degradation_exited(&mut self, _level: DegradationPolicy) {
        self.deg_exited += 1;
    }
    fn monitor_shed(&mut self, _binding: &Binding) {
        self.shed += 1;
    }
    fn monitor_quarantined(&mut self, _id: MonitorId, _binding: &Binding) {
        self.quarantined += 1;
    }
}

/// Drives `spec` through a deterministic workload with observers built by
/// `make`, returning the per-block observers paired with their engines'
/// stats.
///
/// The workload allocates a fresh object per spec parameter each round,
/// replays the whole alphabet over those objects (multi-round, so lookup
/// caches both hit and miss), then drops the objects, collects the heap
/// and sweeps — exercising creation, flagging, collection, dead keys and
/// triggers.
fn drive<O: EngineObserver>(
    spec: CompiledSpec,
    config: &EngineConfig,
    make: impl FnMut(usize) -> O,
) -> Vec<(O, EngineStats)>
where
    O: std::fmt::Debug + Default,
{
    let event_params = spec.event_params.clone();
    let n_params = spec.param_classes.len();
    let n_events = spec.alphabet.len();
    let mut monitor = PropertyMonitor::with_observers(spec, config, make);
    let mut heap = Heap::new(HeapConfig::manual());
    let cls = heap.register_class("Obj");

    for round in 0..6 {
        let frame = heap.enter_frame();
        let objs: Vec<ObjId> = (0..n_params.max(1)).map(|_| heap.alloc(cls)).collect();
        // Two passes over the alphabet per round: the second replays the
        // same parameter instances, so consecutive same-binding events can
        // serve from the lookup cache.
        for _pass in 0..2 {
            for e in 0..n_events {
                let event = EventId(u16::try_from(e).unwrap());
                let pairs: Vec<_> =
                    event_params[e].iter().map(|&p| (p, objs[p.0 as usize])).collect();
                monitor.process(&heap, event, Binding::from_pairs(&pairs));
            }
        }
        heap.exit_frame(frame);
        if round % 2 == 1 {
            heap.collect();
            for engine in monitor.engines_mut() {
                engine.full_sweep(&heap);
            }
        }
    }
    heap.collect();
    monitor.finish(&heap);

    monitor
        .engines_mut()
        .iter_mut()
        .map(|e| {
            let stats = e.stats();
            (std::mem::take(&mut *e.observer_mut()), stats)
        })
        .collect()
}

/// Every catalog property, under every GC policy: observer callback counts
/// must equal the engine's own counters, and the lifecycle identity
/// `live == created − collected` must hold.
#[test]
fn observer_counts_match_engine_stats_for_all_catalog_properties() {
    for p in Property::ALL {
        for policy in [GcPolicy::None, GcPolicy::AllParamsDead, GcPolicy::CoenableLazy] {
            let spec = compiled(p).unwrap();
            let config = EngineConfig { policy, record_triggers: true, ..EngineConfig::default() };
            for (block, (obs, stats)) in
                drive(spec, &config, |_| Counting::default()).into_iter().enumerate()
            {
                let ctx = format!("{p:?} block {block} policy {policy:?}");
                assert_eq!(obs.events, stats.events, "{ctx}: events");
                assert_eq!(obs.created, stats.monitors_created, "{ctx}: created");
                assert_eq!(obs.flagged, stats.monitors_flagged, "{ctx}: flagged");
                assert_eq!(obs.collected, stats.monitors_collected, "{ctx}: collected");
                assert_eq!(obs.dead_keys, stats.dead_keys, "{ctx}: dead keys");
                assert_eq!(obs.triggers, stats.triggers, "{ctx}: triggers");
                assert_eq!(obs.cache_hits, stats.cache_hits, "{ctx}: cache hits");
                assert_eq!(obs.budget_trips, stats.budget_trips, "{ctx}: budget trips");
                assert_eq!(obs.deg_entered, stats.degradations, "{ctx}: degradations");
                assert_eq!(obs.shed, stats.shed, "{ctx}: shed");
                assert_eq!(obs.quarantined, stats.quarantined, "{ctx}: quarantined");
                assert_eq!(
                    obs.cache_hits + obs.cache_misses,
                    stats.events,
                    "{ctx}: every dispatch is a hit or a miss"
                );
                assert_eq!(
                    stats.live_monitors as u64,
                    stats.monitors_created - stats.monitors_collected,
                    "{ctx}: live == created − collected"
                );
                assert!(
                    stats.monitors_flagged <= stats.monitors_created,
                    "{ctx}: flagged ≤ created"
                );
                assert!(
                    stats.monitors_collected <= stats.monitors_created,
                    "{ctx}: collected ≤ created"
                );
                assert!(stats.peak_live_monitors >= stats.live_monitors, "{ctx}: peak ≥ live");
                assert_eq!(obs.sweeps_started, obs.sweeps_finished, "{ctx}: sweeps balanced");
                assert!(obs.sweeps_started >= 1, "{ctx}: finish() sweeps at least once");
                assert!(
                    obs.sweep_flagged <= obs.flagged,
                    "{ctx}: sweep deltas are a subset of all flags"
                );
            }
        }
    }
}

/// The workload must actually exercise the interesting paths somewhere in
/// the catalog — a parity test over all-zero counters proves nothing.
#[test]
fn workload_reaches_creation_flagging_collection_and_triggers() {
    let mut total = Counting::default();
    for p in Property::ALL {
        let spec = compiled(p).unwrap();
        let config = EngineConfig { record_triggers: true, ..EngineConfig::default() };
        for (obs, _) in drive(spec, &config, |_| Counting::default()) {
            total.events += obs.events;
            total.created += obs.created;
            total.flagged += obs.flagged;
            total.collected += obs.collected;
            total.dead_keys += obs.dead_keys;
            total.triggers += obs.triggers;
            total.cache_hits += obs.cache_hits;
        }
    }
    assert!(total.events > 0, "events dispatched");
    assert!(total.created > 0, "monitors created");
    assert!(total.flagged > 0, "monitors flagged");
    assert!(total.collected > 0, "monitors collected");
    assert!(total.dead_keys > 0, "dead keys discovered");
    assert!(total.triggers > 0, "triggers fired");
    assert!(total.cache_hits > 0, "lookup cache exercised");
}

/// [`MetricsRegistry`] is itself an observer; its counters must show the
/// same parity as the hand-written counting observer, and its JSON
/// snapshot must embed the engine stats verbatim.
#[test]
fn metrics_registry_snapshot_agrees_with_engine_stats() {
    let spec = compiled(Property::UnsafeIter).unwrap();
    let config = EngineConfig { record_triggers: true, ..EngineConfig::default() };
    for (obs, stats) in drive(spec, &config, |_| MetricsRegistry::new()) {
        assert_eq!(obs.events(), stats.events);
        assert_eq!(obs.created(), stats.monitors_created);
        assert_eq!(obs.flagged(), stats.monitors_flagged);
        assert_eq!(obs.collected(), stats.monitors_collected);
        assert_eq!(obs.dead_keys(), stats.dead_keys);
        assert_eq!(obs.triggers(), stats.triggers);
        // Monitors collected before the final sweep have recorded
        // lifetimes; none may outlive the bookkeeping.
        assert_eq!(obs.lifetime_events().count(), stats.monitors_collected);
        let json = obs.snapshot_json_with(Some(&stats), None);
        assert!(json.contains(&format!("\"engine\":{}", stats.to_json())));
        assert!(json.contains(&format!("\"monitors_created\":{}", stats.monitors_created)));
    }
}

/// A composed `(TraceRecorder, MetricsRegistry)` observer — the pair the
/// `rvmon trace` CLI installs — delivers every callback to both halves.
#[test]
fn composed_observer_feeds_both_halves() {
    let spec = compiled(Property::HasNext).unwrap();
    let config = EngineConfig { record_triggers: true, ..EngineConfig::default() };
    let runs = drive(spec, &config, |_| (TraceRecorder::new(1 << 16), MetricsRegistry::new()));
    for ((recorder, metrics), stats) in runs {
        assert_eq!(metrics.events(), stats.events);
        assert_eq!(recorder.dropped(), 0, "capacity was ample");
        // The ring holds one record per event/created/flagged/collected/
        // dead-key/trigger callback plus three per sweep (started,
        // finished, and the GC-cycle telemetry record).
        let expected = stats.events
            + stats.monitors_created
            + stats.monitors_flagged
            + stats.monitors_collected
            + stats.dead_keys
            + stats.triggers
            + 3 * metrics.sweeps();
        assert_eq!(recorder.records().len() as u64, expected);
        // Every record renders as a JSON object on its own line.
        for line in recorder.dump_jsonl().lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "bad JSONL line: {line}");
        }
    }
}

/// The trace ring buffer is bounded: overflow drops the *oldest* records
/// and accounts for them, rather than growing or silently truncating.
#[test]
fn trace_recorder_ring_drops_oldest_and_counts_them() {
    let spec = compiled(Property::UnsafeIter).unwrap();
    let config = EngineConfig::default();
    let runs = drive(spec, &config, |_| TraceRecorder::new(8));
    for (recorder, _) in runs {
        let records = recorder.records();
        assert!(records.len() <= 8);
        assert!(recorder.dropped() > 0, "tiny ring must overflow under the workload");
        // Sequence numbers stay contiguous and oldest-first after wrap.
        for w in records.windows(2) {
            assert_eq!(w[1].seq, w[0].seq + 1, "records out of order");
        }
        assert_eq!(records[0].seq, recorder.dropped(), "dropped prefix is accounted");
    }
}

/// Drives UNSAFEITER into sustained resource pressure: every collection /
/// iterator pair stays rooted for the whole run, so with a small
/// `max_live_monitors` budget only the degradation ladder can bound the
/// monitor population.
fn drive_bloat<O: EngineObserver>(
    config: &EngineConfig,
    make: impl FnMut(usize) -> O,
) -> Vec<(O, EngineStats)>
where
    O: std::fmt::Debug + Default,
{
    let spec = compiled(Property::UnsafeIter).unwrap();
    let create = spec.alphabet.lookup("create").unwrap();
    let mut monitor = PropertyMonitor::with_observers(spec, config, make);
    let mut heap = Heap::new(HeapConfig::manual());
    let cls = heap.register_class("Obj");
    let _frame = heap.enter_frame(); // never exited: nothing ever dies
    let (c, i) = (ParamId(0), ParamId(1));
    for _ in 0..24 {
        let coll = heap.alloc(cls);
        let iter = heap.alloc(cls);
        monitor.process(&heap, create, Binding::from_pairs(&[(c, coll), (i, iter)]));
    }
    monitor
        .engines_mut()
        .iter_mut()
        .map(|e| {
            let stats = e.stats();
            (std::mem::take(&mut *e.observer_mut()), stats)
        })
        .collect()
}

/// Under each `DegradationPolicy` ceiling, the budget/degradation/shed
/// callbacks agree with [`EngineStats`], and the creation ledger balances:
/// every creation decision is either shed at the admission gate, still
/// live, or collected — `shed + created − collected == shed + live`.
#[test]
fn degradation_observer_parity_and_ledger_under_each_ceiling() {
    for ceiling in [
        DegradationPolicy::ForcedSweep,
        DegradationPolicy::EagerCollect,
        DegradationPolicy::ShedNewMonitors,
    ] {
        let config = EngineConfig {
            max_live_monitors: Some(4),
            degradation: ceiling,
            ..EngineConfig::default()
        };
        for (block, (obs, stats)) in
            drive_bloat(&config, |_| Counting::default()).into_iter().enumerate()
        {
            let ctx = format!("ceiling {ceiling:?} block {block}");
            assert_eq!(obs.budget_trips, stats.budget_trips, "{ctx}: budget trips");
            assert_eq!(obs.deg_entered, stats.degradations, "{ctx}: degradations entered");
            assert_eq!(obs.shed, stats.shed, "{ctx}: shed");
            assert_eq!(obs.quarantined, stats.quarantined, "{ctx}: quarantined");
            assert!(obs.deg_exited <= obs.deg_entered, "{ctx}: exits ≤ entries");
            assert!(stats.budget_trips > 0, "{ctx}: the workload must trip the budget");
            assert!(stats.degradations > 0, "{ctx}: the ladder must engage");
            assert_eq!(
                stats.shed + stats.monitors_created - stats.monitors_collected,
                stats.shed + stats.live_monitors as u64,
                "{ctx}: shed/created/collected/live ledger must balance"
            );
            if ceiling == DegradationPolicy::ShedNewMonitors {
                assert!(
                    stats.peak_live_monitors <= 4,
                    "{ctx}: the full ladder enforces the budget as a hard cap ({stats})"
                );
                assert!(stats.shed > 0, "{ctx}: pressure without death must shed");
            } else {
                // Shedding is above this ceiling: the population may
                // exceed the budget, but nothing is ever refused.
                assert_eq!(stats.shed, 0, "{ctx}: shedding is not permitted at this ceiling");
            }
        }
    }
}

/// Budget trips, ladder transitions and sheds are visible through both
/// structured observers: as JSONL records in [`TraceRecorder`] and as
/// counters in the [`MetricsRegistry`] snapshot.
#[test]
fn degradation_transitions_are_visible_in_trace_and_metrics() {
    let config = EngineConfig { max_live_monitors: Some(4), ..EngineConfig::default() };
    let runs = drive_bloat(&config, |_| (TraceRecorder::new(1 << 12), MetricsRegistry::new()));
    for ((recorder, metrics), stats) in runs {
        assert!(metrics.budget_trips() > 0);
        assert_eq!(metrics.budget_trips(), stats.budget_trips);
        assert_eq!(metrics.degradations_entered(), stats.degradations);
        assert_eq!(metrics.shed(), stats.shed);
        let jsonl = recorder.dump_jsonl();
        assert!(jsonl.contains("\"kind\":\"budget_tripped\""), "no trip record:\n{jsonl}");
        assert!(jsonl.contains("\"kind\":\"degradation_entered\""), "no ladder record:\n{jsonl}");
        assert!(jsonl.contains("\"kind\":\"shed\""), "no shed record:\n{jsonl}");
        let snap = metrics.snapshot_json_with(Some(&stats), None);
        assert!(snap.contains(&format!("\"budget_trips\":{}", stats.budget_trips)), "{snap}");
        assert!(snap.contains(&format!("\"shed\":{}", stats.shed)), "{snap}");
        assert!(snap.contains(&format!("\"degradations_entered\":{}", stats.degradations)));
    }
}

/// Every engine-instrumented phase span must balance — a `phase_timed`
/// callback counts both ends, and the external enter/exit call sites
/// (journal append, shard route) are not reachable here — for the whole
/// catalog under every GC policy. The hot-path phases must actually fire.
#[test]
fn phase_spans_balance_for_all_catalog_properties_and_policies() {
    for p in Property::ALL {
        for policy in [GcPolicy::None, GcPolicy::AllParamsDead, GcPolicy::CoenableLazy] {
            let spec = compiled(p).unwrap();
            let config = EngineConfig { policy, record_triggers: true, ..EngineConfig::default() };
            for (block, (prof, stats)) in
                drive(spec, &config, |_| PhaseProfiler::new()).into_iter().enumerate()
            {
                let ctx = format!("{p:?} block {block} policy {policy:?}");
                assert!(prof.balanced(), "{ctx}: unbalanced spans: {}", prof.to_json());
                assert_eq!(prof.events(), stats.events, "{ctx}: event denominator");
                for phase in Phase::ALL {
                    assert_eq!(
                        prof.phase(phase).count(),
                        prof.exits(phase),
                        "{ctx}: every closed {} span records one sample",
                        phase.label()
                    );
                }
                assert_eq!(
                    prof.enters(Phase::IndexLookup),
                    stats.events,
                    "{ctx}: one index lookup per dispatched event"
                );
                assert!(
                    prof.enters(Phase::Transition) > 0,
                    "{ctx}: the workload must step monitors"
                );
                assert!(prof.enters(Phase::Sweep) > 0, "{ctx}: finish() sweeps");
                assert_eq!(
                    prof.enters(Phase::JournalAppend),
                    0,
                    "{ctx}: no journal in this harness"
                );
                assert_eq!(prof.enters(Phase::ShardRoute), 0, "{ctx}: no router in this harness");
            }
        }
    }
}

/// Per-shard profiler workload: every object is allocated before the
/// session opens (workers share the heap immutably), the alphabet is
/// replayed twice per round over each round's objects, then the run
/// frees everything, collects, sweeps and finishes — mirrored exactly by
/// [`drive_plain`] so a 1-shard run is comparable span-for-span.
fn drive_sharded(
    property: Property,
    config: &EngineConfig,
    shards: usize,
) -> rv_monitor::core::ShardReport<PhaseProfiler> {
    let spec = compiled(property).unwrap();
    let event_params = spec.event_params.clone();
    let n_params = spec.param_classes.len();
    let n_events = spec.alphabet.len();
    let mut sharded = ShardedMonitor::with_observers(
        spec,
        config,
        ShardConfig { shards, batch: 4, seed: 7 },
        |_, _| PhaseProfiler::new(),
    );
    let mut heap = Heap::new(HeapConfig::manual());
    let cls = heap.register_class("Obj");
    let frame = heap.enter_frame();
    let rounds: Vec<Vec<ObjId>> =
        (0..6).map(|_| (0..n_params.max(1)).map(|_| heap.alloc(cls)).collect()).collect();
    {
        let mut session = sharded.session(&heap);
        for objs in &rounds {
            for _pass in 0..2 {
                for e in 0..n_events {
                    let event = EventId(u16::try_from(e).unwrap());
                    let pairs: Vec<_> =
                        event_params[e].iter().map(|&p| (p, objs[p.0 as usize])).collect();
                    session.process(event, Binding::from_pairs(&pairs));
                }
            }
        }
    }
    heap.exit_frame(frame);
    heap.collect();
    sharded.sweep(&heap);
    sharded.finish(&heap)
}

/// The sequential mirror of [`drive_sharded`]: identical event stream,
/// identical free/collect/sweep/finish tail, one [`PropertyMonitor`].
fn drive_plain(property: Property, config: &EngineConfig) -> Vec<(PhaseProfiler, EngineStats)> {
    let spec = compiled(property).unwrap();
    let event_params = spec.event_params.clone();
    let n_params = spec.param_classes.len();
    let n_events = spec.alphabet.len();
    let mut monitor = PropertyMonitor::with_observers(spec, config, |_| PhaseProfiler::new());
    let mut heap = Heap::new(HeapConfig::manual());
    let cls = heap.register_class("Obj");
    let frame = heap.enter_frame();
    let rounds: Vec<Vec<ObjId>> =
        (0..6).map(|_| (0..n_params.max(1)).map(|_| heap.alloc(cls)).collect()).collect();
    for objs in &rounds {
        for _pass in 0..2 {
            for e in 0..n_events {
                let event = EventId(u16::try_from(e).unwrap());
                let pairs: Vec<_> =
                    event_params[e].iter().map(|&p| (p, objs[p.0 as usize])).collect();
                monitor.process(&heap, event, Binding::from_pairs(&pairs));
            }
        }
    }
    heap.exit_frame(frame);
    heap.collect();
    for engine in monitor.engines_mut() {
        engine.full_sweep(&heap);
    }
    monitor.finish(&heap);
    monitor
        .engines_mut()
        .iter_mut()
        .map(|e| {
            let stats = e.stats();
            (std::mem::take(&mut *e.observer_mut()), stats)
        })
        .collect()
}

/// Sharded phase accounting, across the whole catalog × GC policies ×
/// shard counts {1, 4}: every worker-side profiler balances, the
/// coordinator's routing spans balance and count one span per submitted
/// event, and the cross-shard merge preserves both balance and exact
/// per-phase span counts (merge is pure addition — nothing lost, nothing
/// invented).
#[test]
fn sharded_phase_spans_balance_and_merge_exactly() {
    for p in Property::ALL {
        for policy in [GcPolicy::None, GcPolicy::AllParamsDead, GcPolicy::CoenableLazy] {
            for shards in [1usize, 4] {
                let config = EngineConfig { policy, ..EngineConfig::default() };
                let report = drive_sharded(p, &config, shards);
                let ctx = format!("{p:?} policy {policy:?} shards {shards}");
                assert_eq!(report.error, None, "{ctx}");
                assert!(report.route_profile.balanced(), "{ctx}: router spans");
                assert_eq!(
                    report.route_profile.enters(Phase::ShardRoute),
                    report.events,
                    "{ctx}: one routing span per submitted event"
                );
                let mut merged = PhaseProfiler::new();
                let mut sums = [0u64; Phase::COUNT];
                for per_block in &report.observers {
                    for prof in per_block {
                        assert!(prof.balanced(), "{ctx}: worker spans: {}", prof.to_json());
                        for (i, phase) in Phase::ALL.into_iter().enumerate() {
                            sums[i] += prof.enters(phase);
                        }
                        merged.merge_from(prof);
                    }
                }
                assert!(merged.balanced(), "{ctx}: merge must preserve balance");
                for (i, phase) in Phase::ALL.into_iter().enumerate() {
                    assert_eq!(
                        merged.enters(phase),
                        sums[i],
                        "{ctx}: merged {} spans are the exact sum of the parts",
                        phase.label()
                    );
                }
                assert_eq!(
                    merged.events(),
                    report.deliveries,
                    "{ctx}: one event_dispatched per (shard, block) delivery"
                );
            }
        }
    }
}

/// A 1-shard run delivers exactly the sequential event stream, so the
/// merged worker profilers must agree with a sequential profiler
/// span-count-for-span-count (timings differ; counts may not).
#[test]
fn one_shard_profile_counts_equal_sequential_profile_counts() {
    for p in Property::ALL {
        for policy in [GcPolicy::None, GcPolicy::AllParamsDead, GcPolicy::CoenableLazy] {
            // Worker engines always record triggers; mirror that.
            let config = EngineConfig { policy, record_triggers: true, ..EngineConfig::default() };
            let report = drive_sharded(p, &config, 1);
            assert_eq!(report.error, None, "{p:?} policy {policy:?}");
            assert_eq!(report.broadcast_events, 0, "{p:?}: one shard never broadcasts");
            let mut merged = PhaseProfiler::new();
            for per_block in &report.observers {
                for prof in per_block {
                    merged.merge_from(prof);
                }
            }
            let mut sequential = PhaseProfiler::new();
            let mut seq_stats = EngineStats::default();
            for (prof, stats) in drive_plain(p, &config) {
                sequential.merge_from(&prof);
                seq_stats.merge_from(&stats);
            }
            let ctx = format!("{p:?} policy {policy:?}");
            assert_eq!(report.stats.events, seq_stats.events, "{ctx}: same event stream");
            assert_eq!(merged.events(), sequential.events(), "{ctx}: event denominators");
            for phase in Phase::ALL {
                assert_eq!(
                    merged.enters(phase),
                    sequential.enters(phase),
                    "{ctx}: {} span count must not depend on sharding",
                    phase.label()
                );
                assert_eq!(merged.exits(phase), sequential.exits(phase), "{ctx}: exits");
            }
        }
    }
}

/// The provenance ledger's re-derived Figure 10 row must equal the
/// engine's own E/M/FM/CM — per block, for the whole catalog, under
/// every GC policy. This is the accounting identity `rvmon explain
/// --summary` enforces at the CLI.
#[test]
fn provenance_summary_is_an_accounting_identity_with_engine_stats() {
    for p in Property::ALL {
        for policy in [GcPolicy::None, GcPolicy::AllParamsDead, GcPolicy::CoenableLazy] {
            let spec = compiled(p).unwrap();
            let config = EngineConfig { policy, record_triggers: true, ..EngineConfig::default() };
            for (block, (ledger, stats)) in
                drive(spec, &config, |_| ProvenanceLedger::new()).into_iter().enumerate()
            {
                let ctx = format!("{p:?} block {block} policy {policy:?}");
                let s = ledger.summary();
                assert_eq!(s.events, stats.events, "{ctx}: E");
                assert_eq!(s.created, stats.monitors_created, "{ctx}: M");
                assert_eq!(s.flagged, stats.monitors_flagged, "{ctx}: FM");
                assert_eq!(s.collected, stats.monitors_collected, "{ctx}: CM");
                // Per-instance causality is internally consistent too.
                let live =
                    ledger.instances().iter().filter(|r| r.collected_at_event.is_none()).count();
                assert_eq!(live as u64, s.created - s.collected, "{ctx}: live instances");
                for r in ledger.instances() {
                    if let Some(at) = r.collected_at_event {
                        assert!(at >= r.created_at_event, "{ctx}: collected before created");
                    }
                    for f in &r.flags {
                        assert!(f.at_event >= r.created_at_event, "{ctx}: flagged before created");
                    }
                }
            }
        }
    }
}

/// The GC observatory's accounting identity: every object death happens
/// strictly after the last event, so once the events stop, the only way
/// a monitor can be collected is a sweep cycle — the sum of `reclaimed`
/// over the [`GcCycleRecord`]s must equal exactly the growth of the
/// engine's CM counter across the sweeps (terminal-verdict monitors
/// discarded on the hot path are CM too, but predate the records), and
/// the provenance ledger must re-derive the same total. Occupancy
/// deltas must chain exactly across cycles.
///
/// [`GcCycleRecord`]: rv_monitor::core::GcCycleRecord
#[test]
fn gc_cycle_records_reconcile_with_engine_stats_and_ledger() {
    use rv_monitor::core::{GcCycleRecord, GcKind, GcReason};

    for p in Property::ALL {
        let spec = compiled(p).unwrap();
        let event_params = spec.event_params.clone();
        let n_params = spec.param_classes.len();
        let n_events = spec.alphabet.len();
        let config = EngineConfig { record_triggers: true, ..EngineConfig::default() };
        let mut monitor =
            PropertyMonitor::with_observers(spec, &config, |_| ProvenanceLedger::new());
        let mut heap = Heap::new(HeapConfig::manual());
        let cls = heap.register_class("Obj");
        let frame = heap.enter_frame();
        let rounds: Vec<Vec<ObjId>> =
            (0..4).map(|_| (0..n_params.max(1)).map(|_| heap.alloc(cls)).collect()).collect();
        for objs in &rounds {
            for e in 0..n_events {
                let event = EventId(u16::try_from(e).unwrap());
                let pairs: Vec<_> =
                    event_params[e].iter().map(|&p| (p, objs[p.0 as usize])).collect();
                monitor.process(&heap, event, Binding::from_pairs(&pairs));
            }
        }
        // Everything dies only now — after the final event — so every
        // collection from here on is attributable to a sweep cycle.
        let cm_before_sweeps: Vec<u64> =
            monitor.engines().iter().map(|e| e.stats().monitors_collected).collect();
        heap.exit_frame(frame);
        heap.collect();
        let mut per_block: Vec<Vec<GcCycleRecord>> = Vec::new();
        for engine in monitor.engines_mut() {
            let mut recs = Vec::new();
            for reason in [GcReason::Forced, GcReason::Periodic] {
                recs.push(
                    engine
                        .full_sweep_with(&heap, reason)
                        .expect("enabled observer yields a cycle record"),
                );
            }
            per_block.push(recs);
        }
        for (bi, engine) in monitor.engines().iter().enumerate() {
            let ctx = format!("{p:?} block {bi}");
            let stats = engine.stats();
            let ledger = engine.observer();
            let recs = &per_block[bi];
            let reclaimed: u64 = recs.iter().map(|r| r.reclaimed).sum();
            let flagged: u64 = recs.iter().map(|r| r.flagged).sum();
            assert_eq!(
                reclaimed,
                stats.monitors_collected - cm_before_sweeps[bi],
                "{ctx}: Σ reclaimed == CM growth across the sweeps"
            );
            assert_eq!(
                stats.monitors_collected,
                ledger.summary().collected,
                "{ctx}: ledger re-derives CM"
            );
            assert!(flagged <= stats.monitors_flagged, "{ctx}: sweep flags ⊆ all flags");
            for (ci, r) in recs.iter().enumerate() {
                assert_eq!(r.kind, GcKind::MonitorSweep, "{ctx} cycle {ci}");
                assert_eq!(
                    r.occupancy_before - r.reclaimed,
                    r.occupancy_after,
                    "{ctx} cycle {ci}: occupancy delta is the reclaim count"
                );
                assert_eq!(r.scanned, r.occupancy_before, "{ctx} cycle {ci}: full sweep");
                let bytes = r.to_bytes();
                assert_eq!(GcCycleRecord::from_bytes(&bytes).as_ref(), Some(r), "{ctx}: codec");
            }
            for w in recs.windows(2) {
                assert_eq!(
                    w[0].occupancy_after, w[1].occupancy_before,
                    "{ctx}: occupancy chains across cycles"
                );
                assert!(w[0].end_ns <= w[1].end_ns, "{ctx}: cycle ends are monotone");
            }
            // The second (quiescent) sweep reclaimed nothing.
            assert_eq!(recs[1].reclaimed, 0, "{ctx}: quiescent cycle");
        }
    }
}

/// The structural zero-overhead guarantee: with the no-op observer, a
/// sweep must hand back *no* cycle record at all — no clock is read, no
/// accounting is assembled, nothing allocates.
#[test]
fn disabled_observer_sweeps_yield_no_cycle_records() {
    use rv_monitor::core::GcReason;

    let spec = compiled(Property::UnsafeIter).unwrap();
    let config = EngineConfig::default();
    let mut monitor = PropertyMonitor::new(spec, &config);
    let heap = Heap::new(HeapConfig::manual());
    for engine in monitor.engines_mut() {
        for reason in [GcReason::Forced, GcReason::Periodic, GcReason::Degradation] {
            assert!(
                engine.full_sweep_with(&heap, reason).is_none(),
                "NoopObserver sweep must not assemble a record"
            );
        }
    }
}

/// The timeline lane is a faithful transcript of the profiler: a
/// composed `(SpanLog, PhaseProfiler)` observer must log exactly one
/// phase span per profiler exit, name for name, and the Chrome trace
/// export of those lanes must carry one balanced `B`/`E` pair per span.
#[test]
fn span_log_lanes_match_phase_profiler_counts_for_catalog() {
    use rv_monitor::core::{chrome_trace_json, SpanLog};

    for p in [Property::UnsafeIter, Property::HasNext] {
        let spec = compiled(p).unwrap();
        let config = EngineConfig { record_triggers: true, ..EngineConfig::default() };
        let runs = drive(spec, &config, |_| (SpanLog::new(), PhaseProfiler::new()));
        let mut lanes: Vec<(String, SpanLog)> = Vec::new();
        for (block, ((log, prof), _)) in runs.into_iter().enumerate() {
            let ctx = format!("{p:?} block {block}");
            let phase_spans: u64 = log.spans().iter().filter(|s| s.cat == "phase").count() as u64;
            let profiler_spans: u64 = Phase::ALL.into_iter().map(|ph| prof.exits(ph)).sum();
            assert_eq!(phase_spans, profiler_spans, "{ctx}: one span per exit");
            for ph in Phase::ALL {
                assert_eq!(
                    log.count_named(ph.label()),
                    prof.exits(ph),
                    "{ctx}: {} span count",
                    ph.label()
                );
            }
            lanes.push((format!("block{block}"), log));
        }
        let borrowed: Vec<(String, &SpanLog)> = lanes.iter().map(|(n, l)| (n.clone(), l)).collect();
        let json = chrome_trace_json(&borrowed);
        let opens = json.matches("\"ph\":\"B\"").count();
        let closes = json.matches("\"ph\":\"E\"").count();
        let completes = json.matches("\"ph\":\"X\"").count();
        let phase_spans: usize =
            lanes.iter().map(|(_, l)| l.spans().iter().filter(|s| s.cat == "phase").count()).sum();
        let gc_spans: usize =
            lanes.iter().map(|(_, l)| l.spans().iter().filter(|s| s.cat == "gc").count()).sum();
        assert_eq!(opens, phase_spans, "{p:?}: one B per phase span");
        assert_eq!(closes, phase_spans, "{p:?}: one E per phase span");
        assert_eq!(completes, gc_spans, "{p:?}: one X per GC cycle");
        assert_eq!(
            json.matches("\"ph\":\"M\"").count(),
            lanes.len(),
            "{p:?}: one thread-name metadata event per lane"
        );
    }
}

/// `full_sweep` must be idempotent at a quiescent point, and the observer
/// must see the second sweep as a no-op (0 newly flagged / collected).
#[test]
fn quiescent_sweep_reports_zero_deltas() {
    let spec = compiled(Property::UnsafeIter).unwrap();
    let event_params = spec.event_params.clone();
    let mut monitor =
        PropertyMonitor::with_observers(spec, &EngineConfig::default(), |_| Counting::default());
    let mut heap = Heap::new(HeapConfig::manual());
    let cls = heap.register_class("Obj");
    let frame = heap.enter_frame();
    let objs: Vec<ObjId> = (0..2).map(|_| heap.alloc(cls)).collect();
    for e in 0..3u16 {
        let pairs: Vec<_> =
            event_params[e as usize].iter().map(|&p| (p, objs[p.0 as usize])).collect();
        monitor.process(&heap, EventId(e), Binding::from_pairs(&pairs));
    }
    heap.exit_frame(frame);
    heap.collect();
    monitor.finish(&heap);
    let after_finish: HashMap<usize, Counting> =
        monitor.engines_mut().iter_mut().enumerate().map(|(i, e)| (i, *e.observer_mut())).collect();
    // Nothing changed since finish(): a second sweep observes no deltas.
    for engine in monitor.engines_mut() {
        engine.full_sweep(&heap);
    }
    for (i, engine) in monitor.engines_mut().iter_mut().enumerate() {
        let before = after_finish[&i];
        let now = *engine.observer_mut();
        assert_eq!(now.sweeps_started, before.sweeps_started + 1);
        assert_eq!(now.sweep_flagged, before.sweep_flagged, "block {i}: nothing newly flagged");
        assert_eq!(
            now.sweep_collected, before.sweep_collected,
            "block {i}: nothing newly collected"
        );
        assert_eq!(now.flagged, before.flagged, "block {i}");
        assert_eq!(now.collected, before.collected, "block {i}");
    }
}
