//! The central correctness property of the whole system: on random
//! parametric traces with random object lifetimes, the indexing-tree
//! engine — under **every** GC policy — reports exactly the goal verdicts
//! of the paper's Figure 5 reference algorithm.
//!
//! This simultaneously checks trace slicing (Definition 6), the enable-set
//! creation discipline (no spurious or missing monitors), and GC
//! soundness (Theorem 1: collected monitors could never have triggered).

// Requires the crates.io `proptest` crate: build with
// `--features external-deps` in a networked environment. The offline
// default build compiles this file to nothing.
#![cfg(feature = "external-deps")]

use proptest::prelude::*;
use rv_monitor::core::{monitor_trace, Binding, Engine, EngineConfig, GcPolicy, Trigger};
use rv_monitor::heap::{Heap, HeapConfig, ObjId};
use rv_monitor::logic::{AnyFormalism, EventId, ParamId};
use rv_monitor::props::{compiled, Property};

/// A step of the random program: emit an event over live objects, kill an
/// object, or run a heap collection.
#[derive(Clone, Copy, Debug)]
enum Step {
    /// Emit event `event` binding the object-pool slots in `picks`.
    Emit { event: usize, picks: [usize; 3] },
    /// Unroot pool slot `slot` (a later GC reclaims it).
    Kill { slot: usize },
    /// Run a collection.
    Collect,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        6 => (any::<usize>(), any::<[usize; 3]>())
            .prop_map(|(event, picks)| Step::Emit { event, picks }),
        1 => any::<usize>().prop_map(|slot| Step::Kill { slot }),
        1 => Just(Step::Collect),
    ]
}

/// Replays `steps` against a fresh heap, building the parametric trace and
/// driving `engine` (if given). Returns the recorded trace.
fn replay(
    steps: &[Step],
    spec: &rv_spec::CompiledSpec,
    mut engine: Option<&mut Engine<AnyFormalism>>,
) -> Vec<(EventId, Binding)> {
    const POOL: usize = 6;
    let mut heap = Heap::new(HeapConfig::manual());
    let class = heap.register_class("Object");
    // Allocate in a frame that exits immediately: liveness is governed
    // solely by the pins, so Kill + Collect really reclaims (and the GC
    // paths of the engine are genuinely exercised).
    let frame = heap.enter_frame();
    let pool: Vec<ObjId> = (0..POOL).map(|_| heap.alloc(class)).collect();
    for &o in &pool {
        heap.pin(o);
    }
    heap.exit_frame(frame);
    let mut alive = [true; POOL];
    let mut trace = Vec::new();
    for &step in steps {
        match step {
            Step::Emit { event, picks } => {
                let e = EventId((event % spec.alphabet.len()) as u16);
                let params = &spec.event_params[e.as_usize()];
                // Bind each parameter to a live pool object; skip the
                // event if too few are alive.
                let live: Vec<ObjId> =
                    pool.iter().zip(alive.iter()).filter_map(|(&o, &a)| a.then_some(o)).collect();
                if live.is_empty() {
                    continue;
                }
                let pairs: Vec<(ParamId, ObjId)> = params
                    .iter()
                    .enumerate()
                    .map(|(k, &p)| (p, live[picks[k.min(2)] % live.len()]))
                    .collect();
                // Distinct parameters may pick the same object — that is a
                // legal parametric event; dedup only identical params.
                let binding = Binding::from_pairs(&pairs);
                trace.push((e, binding));
                if let Some(engine) = engine.as_deref_mut() {
                    engine.process(&heap, e, binding);
                }
            }
            Step::Kill { slot } => {
                let s = slot % POOL;
                if alive[s] {
                    alive[s] = false;
                    heap.unpin(pool[s]);
                }
            }
            Step::Collect => {
                // Dead pool slots keep their stale ids; they are never
                // used again because `alive` is false.
                heap.collect();
            }
        }
    }
    trace
}

fn check_property(property: Property, steps: &[Step], policy: GcPolicy) {
    let spec = compiled(property).expect("bundled property");
    for prop in &spec.properties {
        let mut engine = Engine::new(
            prop.formalism.clone(),
            spec.event_def.clone(),
            prop.goal,
            EngineConfig { policy, record_triggers: true, ..EngineConfig::default() },
        );
        let trace = replay(steps, &spec, Some(&mut engine));
        let oracle = monitor_trace(&prop.formalism, prop.goal, &trace);
        // The oracle re-fires absorbing goal verdicts on every event; the
        // engine terminates such monitors after the first report.
        // Compare first-report-per-binding sets.
        // First report per binding; order within a step is unspecified
        // (both sides iterate hash-based structures), so sort.
        let dedup = |ts: &[Trigger]| {
            let mut seen = std::collections::HashSet::new();
            let mut v: Vec<Trigger> =
                ts.iter().filter(|t| seen.insert(t.binding)).copied().collect();
            v.sort();
            v
        };
        assert_eq!(
            dedup(engine.triggers()),
            dedup(&oracle.triggers),
            "{property:?} {policy:?} block {:?} diverged on trace {trace:?}",
            prop.kind
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn unsafe_iter_matches_oracle_under_every_policy(
        steps in proptest::collection::vec(step_strategy(), 0..60)
    ) {
        for policy in [GcPolicy::None, GcPolicy::AllParamsDead, GcPolicy::CoenableLazy] {
            check_property(Property::UnsafeIter, &steps, policy);
        }
    }

    #[test]
    fn has_next_matches_oracle_under_every_policy(
        steps in proptest::collection::vec(step_strategy(), 0..60)
    ) {
        for policy in [GcPolicy::None, GcPolicy::AllParamsDead, GcPolicy::CoenableLazy] {
            check_property(Property::HasNext, &steps, policy);
        }
    }

    #[test]
    fn unsafe_map_iter_matches_oracle(
        steps in proptest::collection::vec(step_strategy(), 0..50)
    ) {
        check_property(Property::UnsafeMapIter, &steps, GcPolicy::CoenableLazy);
        check_property(Property::UnsafeMapIter, &steps, GcPolicy::AllParamsDead);
    }

    #[test]
    fn unsafe_sync_coll_matches_oracle(
        steps in proptest::collection::vec(step_strategy(), 0..50)
    ) {
        check_property(Property::UnsafeSyncColl, &steps, GcPolicy::CoenableLazy);
    }

    #[test]
    fn hash_set_matches_oracle(
        steps in proptest::collection::vec(step_strategy(), 0..50)
    ) {
        check_property(Property::HashSet, &steps, GcPolicy::CoenableLazy);
    }

    #[test]
    fn safe_lock_cfg_matches_oracle(
        steps in proptest::collection::vec(step_strategy(), 0..30)
    ) {
        // The CFG property exercises the Earley monitor and the permissive
        // creation fallback.
        check_property(Property::SafeLock, &steps, GcPolicy::CoenableLazy);
        check_property(Property::SafeLock, &steps, GcPolicy::None);
    }
}

/// The Tracematches-style baseline must agree with the oracle too (it is
/// a different engine entirely, so this exercises its disjunct semantics,
/// slice gating, and retirement tombstones).
fn check_tracematches(property: Property, steps: &[Step]) {
    let spec = compiled(property).expect("bundled property");
    let prop = &spec.properties[0];
    let AnyFormalism::Dfa(dfa) = &prop.formalism else {
        panic!("tracematches check needs a finite-state property");
    };
    let mut tm =
        rv_monitor::tracematches::TraceMatch::new(dfa.clone(), spec.event_def.clone(), prop.goal);
    // Replay: drive the TM engine via a trace we also hand to the oracle.
    let trace = replay(steps, &spec, None);
    {
        // Re-run the same steps against a fresh heap for the TM engine
        // (replay is deterministic given the same steps).
        let mut heap = Heap::new(HeapConfig::manual());
        let class = heap.register_class("Object");
        let _frame = heap.enter_frame();
        let pool: Vec<ObjId> = (0..6).map(|_| heap.alloc(class)).collect();
        for &o in &pool {
            heap.pin(o);
        }
        let mut alive = [true; 6];
        let mut cursor = 0usize;
        for &step in steps {
            match step {
                Step::Emit { .. } => {
                    // The recorded trace already has the binding; replay it
                    // in order. (Bindings refer to the first heap's ids,
                    // which differ from this heap's — remap via index.)
                    if cursor < trace.len() {
                        // Recompute with this heap's objects by position.
                        cursor += 1;
                    }
                }
                Step::Kill { slot } => {
                    let s = slot % 6;
                    if alive[s] {
                        alive[s] = false;
                        heap.unpin(pool[s]);
                    }
                }
                Step::Collect => {
                    heap.collect();
                }
            }
        }
    }
    // Simpler and fully faithful: replay once with a single heap, driving
    // the TM engine directly inside the replay loop via a tiny adapter.
    let trace2 = replay_tm(steps, &spec, &mut tm);
    assert_eq!(trace, trace2, "replays must be deterministic");
    let oracle = monitor_trace(&prop.formalism, prop.goal, &trace);
    let mut seen = std::collections::HashSet::new();
    let oracle_first: Vec<Trigger> =
        oracle.triggers.iter().filter(|t| seen.insert(t.binding)).copied().collect();
    assert_eq!(
        tm.stats().triggers,
        oracle_first.len() as u64,
        "{property:?} TM diverged on trace {trace:?}"
    );
}

/// Like [`replay`], but drives a Tracematches engine.
fn replay_tm(
    steps: &[Step],
    spec: &rv_spec::CompiledSpec,
    tm: &mut rv_monitor::tracematches::TraceMatch,
) -> Vec<(EventId, Binding)> {
    const POOL: usize = 6;
    let mut heap = Heap::new(HeapConfig::manual());
    let class = heap.register_class("Object");
    let frame = heap.enter_frame();
    let pool: Vec<ObjId> = (0..POOL).map(|_| heap.alloc(class)).collect();
    for &o in &pool {
        heap.pin(o);
    }
    heap.exit_frame(frame);
    let mut alive = [true; POOL];
    let mut trace = Vec::new();
    for &step in steps {
        match step {
            Step::Emit { event, picks } => {
                let e = EventId((event % spec.alphabet.len()) as u16);
                let params = &spec.event_params[e.as_usize()];
                let live: Vec<ObjId> =
                    pool.iter().zip(alive.iter()).filter_map(|(&o, &a)| a.then_some(o)).collect();
                if live.is_empty() {
                    continue;
                }
                let pairs: Vec<(ParamId, ObjId)> = params
                    .iter()
                    .enumerate()
                    .map(|(k, &p)| (p, live[picks[k.min(2)] % live.len()]))
                    .collect();
                let binding = Binding::from_pairs(&pairs);
                trace.push((e, binding));
                tm.process(&heap, e, binding);
            }
            Step::Kill { slot } => {
                let s = slot % POOL;
                if alive[s] {
                    alive[s] = false;
                    heap.unpin(pool[s]);
                }
            }
            Step::Collect => {
                heap.collect();
            }
        }
    }
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tracematches_matches_oracle_on_unsafe_iter(
        steps in proptest::collection::vec(step_strategy(), 0..50)
    ) {
        check_tracematches(Property::UnsafeIter, &steps);
    }

    #[test]
    fn tracematches_matches_oracle_on_unsafe_sync_coll(
        steps in proptest::collection::vec(step_strategy(), 0..50)
    ) {
        check_tracematches(Property::UnsafeSyncColl, &steps);
    }
}
