//! The sharded-engine differential suite: for every catalog property,
//! every GC policy, a ladder of shard counts (including a prime one, so
//! routing is exercised off the power-of-two happy path), and a battery
//! of fixed seeds, run the same random workload through
//!
//! 1. the sequential [`PropertyMonitor`](rv_monitor::core::PropertyMonitor),
//! 2. the sharded [`ShardedMonitor`](rv_monitor::core::ShardedMonitor), and
//! 3. the Figure 5 reference oracle,
//!
//! and assert equal verdicts and trigger multisets per block, plus the
//! sharding accounting identities: merged `events` equals total
//! deliveries, the merged peak is the max (not the sum) of the per-shard
//! peaks, and a 1-shard run reproduces the sequential stats verbatim.
//!
//! Runs on the default (offline) build — no external dependencies.

use rv_monitor::core::{differential_run, GcPolicy, ShardConfig, ShardDifferential};
use rv_monitor::props::Property;

const SEEDS: [u64; 4] = [3, 11, 29, 47];
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];
const EVENTS: usize = 128;

/// Runs the full catalog × shard-count × seed battery for one policy.
fn battery(policy: GcPolicy) -> Vec<ShardDifferential> {
    let mut outcomes = Vec::new();
    for property in Property::ALL {
        let spec = rv_monitor::props::compiled(property).expect("catalog compiles");
        for shards in SHARD_COUNTS {
            for seed in SEEDS {
                let cfg = ShardConfig { shards, batch: 16, seed: 0x5EED };
                let out = differential_run(&spec, policy, cfg, seed, EVENTS)
                    .unwrap_or_else(|e| panic!("{property:?} shards {shards} seed {seed}: {e}"));
                assert!(
                    out.matches(),
                    "{property:?} {policy:?} shards {shards} seed {seed}:\n{}",
                    out.mismatches.join("\n")
                );
                assert_eq!(out.trace_len, EVENTS);
                outcomes.push(out);
            }
        }
    }
    outcomes
}

/// A battery proves nothing if no property ever fired, no event was ever
/// broadcast (partial instances), and no event was ever routed: check the
/// aggregates.
fn assert_not_vacuous(outcomes: &[ShardDifferential]) {
    let triggers: usize = outcomes.iter().map(|o| o.report.triggers.len()).sum();
    let routed: u64 = outcomes.iter().map(|o| o.report.routed_events).sum();
    let broadcast: u64 = outcomes
        .iter()
        .filter(|o| o.report.per_shard.len() > 1)
        .map(|o| o.report.broadcast_events)
        .sum();
    assert!(triggers > 0, "no property ever triggered — the workload is too tame");
    assert!(routed > 0, "no event was ever routed by its owner object");
    assert!(broadcast > 0, "no partial instance was ever broadcast");
}

#[test]
fn shard_equivalence_policy_none() {
    assert_not_vacuous(&battery(GcPolicy::None));
}

#[test]
fn shard_equivalence_policy_all_params_dead() {
    assert_not_vacuous(&battery(GcPolicy::AllParamsDead));
}

#[test]
fn shard_equivalence_policy_coenable_lazy() {
    let outcomes = battery(GcPolicy::CoenableLazy);
    assert_not_vacuous(&outcomes);
    // The GC machinery must actually run inside the shards, or the suite
    // is not testing "GC per shard, unchanged".
    let collected: u64 = outcomes.iter().map(|o| o.report.stats.monitors_collected).sum();
    assert!(collected > 0, "sharded engines never collected a monitor");
}

/// The merged peak must be the max of the per-shard peaks — the exact
/// high-water-mark semantics the `merge_from` fix introduced — while the
/// additive counters must be the per-shard sums.
#[test]
fn merged_stats_follow_peak_vs_counter_semantics() {
    let spec = rv_monitor::props::compiled(Property::UnsafeIter).unwrap();
    for shards in SHARD_COUNTS {
        let cfg = ShardConfig { shards, batch: 8, seed: 1 };
        let out = differential_run(&spec, GcPolicy::CoenableLazy, cfg, 5, EVENTS).unwrap();
        assert!(out.matches(), "shards {shards}: {:?}", out.mismatches);
        let report = &out.report;
        assert_eq!(report.per_shard.len(), shards);
        let peak_max = report.per_shard.iter().map(|s| s.peak_live_monitors).max().unwrap();
        let events_sum: u64 = report.per_shard.iter().map(|s| s.events).sum();
        assert_eq!(report.stats.peak_live_monitors, peak_max, "peaks merge with max");
        assert_eq!(report.stats.events, events_sum, "additive counters merge with +");
        assert_eq!(report.stats.events, report.deliveries);
    }
}

/// Trigger output is keyed `(event_seq, ordinal)` and must be identical
/// across shard counts — determinism regardless of thread interleaving.
#[test]
fn trigger_streams_are_identical_across_shard_counts() {
    let spec = rv_monitor::props::compiled(Property::UnsafeMapIter).unwrap();
    let mut streams = Vec::new();
    for shards in SHARD_COUNTS {
        let cfg = ShardConfig { shards, batch: 8, seed: 0x5EED };
        let out = differential_run(&spec, GcPolicy::AllParamsDead, cfg, 17, EVENTS).unwrap();
        assert!(out.matches(), "shards {shards}: {:?}", out.mismatches);
        streams.push((shards, out.report.triggers));
    }
    for pair in streams.windows(2) {
        assert_eq!(
            pair[0].1, pair[1].1,
            "shards {} and {} disagree on the ordered trigger stream",
            pair[0].0, pair[1].0
        );
    }
}
