//! The sharded-engine differential suite: for every catalog property,
//! every GC policy, a ladder of shard counts (including a prime one, so
//! routing is exercised off the power-of-two happy path), and a battery
//! of fixed seeds, run the same random workload through
//!
//! 1. the sequential [`PropertyMonitor`](rv_monitor::core::PropertyMonitor),
//! 2. the sharded [`ShardedMonitor`](rv_monitor::core::ShardedMonitor), and
//! 3. the Figure 5 reference oracle,
//!
//! and assert equal verdicts and trigger multisets per block, plus the
//! sharding accounting identities: merged `events` equals total
//! deliveries, the merged peak is the max (not the sum) of the per-shard
//! peaks, and a 1-shard run reproduces the sequential stats verbatim.
//!
//! Runs on the default (offline) build — no external dependencies.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rv_monitor::core::{
    differential_run, differential_run_with, Binding, DegradationPolicy, EngineConfig, GcPolicy,
    HandlerFactory, NoopObserver, PropertyMonitor, ShardConfig, ShardDifferential, ShardedMonitor,
    Trigger,
};
use rv_monitor::heap::{Heap, HeapConfig, ObjId};
use rv_monitor::props::Property;
use rv_monitor::spec::CompiledSpec;

const SEEDS: [u64; 4] = [3, 11, 29, 47];
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];
const EVENTS: usize = 128;

/// Runs the full catalog × shard-count × seed battery for one policy.
fn battery(policy: GcPolicy) -> Vec<ShardDifferential> {
    let mut outcomes = Vec::new();
    for property in Property::ALL {
        let spec = rv_monitor::props::compiled(property).expect("catalog compiles");
        for shards in SHARD_COUNTS {
            for seed in SEEDS {
                let cfg = ShardConfig { shards, batch: 16, seed: 0x5EED };
                let out = differential_run(&spec, policy, cfg, seed, EVENTS)
                    .unwrap_or_else(|e| panic!("{property:?} shards {shards} seed {seed}: {e}"));
                assert!(
                    out.matches(),
                    "{property:?} {policy:?} shards {shards} seed {seed}:\n{}",
                    out.mismatches.join("\n")
                );
                assert_eq!(out.trace_len, EVENTS);
                outcomes.push(out);
            }
        }
    }
    outcomes
}

/// A battery proves nothing if no property ever fired, no event was ever
/// broadcast (partial instances), and no event was ever routed: check the
/// aggregates.
fn assert_not_vacuous(outcomes: &[ShardDifferential]) {
    let triggers: usize = outcomes.iter().map(|o| o.report.triggers.len()).sum();
    let routed: u64 = outcomes.iter().map(|o| o.report.routed_events).sum();
    let broadcast: u64 = outcomes
        .iter()
        .filter(|o| o.report.per_shard.len() > 1)
        .map(|o| o.report.broadcast_events)
        .sum();
    assert!(triggers > 0, "no property ever triggered — the workload is too tame");
    assert!(routed > 0, "no event was ever routed by its owner object");
    assert!(broadcast > 0, "no partial instance was ever broadcast");
}

#[test]
fn shard_equivalence_policy_none() {
    assert_not_vacuous(&battery(GcPolicy::None));
}

#[test]
fn shard_equivalence_policy_all_params_dead() {
    assert_not_vacuous(&battery(GcPolicy::AllParamsDead));
}

#[test]
fn shard_equivalence_policy_coenable_lazy() {
    let outcomes = battery(GcPolicy::CoenableLazy);
    assert_not_vacuous(&outcomes);
    // The GC machinery must actually run inside the shards, or the suite
    // is not testing "GC per shard, unchanged".
    let collected: u64 = outcomes.iter().map(|o| o.report.stats.monitors_collected).sum();
    assert!(collected > 0, "sharded engines never collected a monitor");
}

/// The merged peak must be the max of the per-shard peaks — the exact
/// high-water-mark semantics the `merge_from` fix introduced — while the
/// additive counters must be the per-shard sums.
#[test]
fn merged_stats_follow_peak_vs_counter_semantics() {
    let spec = rv_monitor::props::compiled(Property::UnsafeIter).unwrap();
    for shards in SHARD_COUNTS {
        let cfg = ShardConfig { shards, batch: 8, seed: 1 };
        let out = differential_run(&spec, GcPolicy::CoenableLazy, cfg, 5, EVENTS).unwrap();
        assert!(out.matches(), "shards {shards}: {:?}", out.mismatches);
        let report = &out.report;
        assert_eq!(report.per_shard.len(), shards);
        let peak_max = report.per_shard.iter().map(|s| s.peak_live_monitors).max().unwrap();
        let events_sum: u64 = report.per_shard.iter().map(|s| s.events).sum();
        assert_eq!(report.stats.peak_live_monitors, peak_max, "peaks merge with max");
        assert_eq!(report.stats.events, events_sum, "additive counters merge with +");
        assert_eq!(report.stats.events, report.deliveries);
    }
}

// --- Degradation ladder under sharding -----------------------------------
//
// The PR-2 ladder (ForcedSweep → EagerCollect → ShedNewMonitors) is
// engine-local state: budgets trip per engine, and a sharded monitor has
// one engine per block per shard. The sweep rungs are verdict-preserving
// (they only reclaim *dead* monitors), so any workload must produce
// identical trigger streams at any shard count. The shed rung drops
// monitor creations, so determinism across shard counts needs the whole
// slice population on one shard — a single owner object routes every
// owner-bound event (and with it every monitor creation) to the same
// worker at every count, making the shed decisions, and therefore the
// trigger stream, reproducible bit-for-bit.

/// The single-owner workload: one collection, many iterators. All
/// creations come first so the live-monitor population actually climbs
/// (a create→update→next triple would retire each matched monitor
/// before the next creation), then one update, then every iterator is
/// advanced — each surviving monitor fires UnsafeIter's match.
fn single_owner_trace(
    spec: &CompiledSpec,
    c: ObjId,
    iters: &[ObjId],
) -> Vec<(&'static str, Binding)> {
    let params = |name: &str| {
        let e = spec.alphabet.lookup(name).expect("catalog event");
        spec.event_params[e.as_usize()].clone()
    };
    let (pc, pu, pn) = (params("create"), params("update"), params("next"));
    let mut trace = Vec::new();
    for &i in iters {
        trace.push(("create", Binding::from_pairs(&[(pc[0], c), (pc[1], i)])));
    }
    trace.push(("update", Binding::from_pairs(&[(pu[0], c)])));
    for &i in iters {
        trace.push(("next", Binding::from_pairs(&[(pn[0], i)])));
    }
    trace
}

fn single_owner_heap(iters: usize) -> (Heap, ObjId, Vec<ObjId>) {
    let mut heap = Heap::new(HeapConfig::manual());
    let class = heap.register_class("Obj");
    let frame = heap.enter_frame();
    let c = heap.alloc(class);
    heap.pin(c);
    let iters: Vec<ObjId> = (0..iters)
        .map(|_| {
            let o = heap.alloc(class);
            heap.pin(o);
            o
        })
        .collect();
    heap.exit_frame(frame);
    (heap, c, iters)
}

/// Runs the single-owner workload through a sharded monitor, returning
/// the ordered per-block trigger stream and the merged stats.
fn sharded_single_owner(
    spec: &CompiledSpec,
    config: &EngineConfig,
    shards: usize,
    handlers: Option<HandlerFactory>,
) -> (Vec<Trigger>, rv_monitor::core::EngineStats) {
    let (heap, c, iters) = single_owner_heap(24);
    let trace = single_owner_trace(spec, c, &iters);
    let cfg = ShardConfig { shards, batch: 4, seed: 0x5EED };
    let mut sharded = ShardedMonitor::with_observers_and_handlers(
        spec.clone(),
        config,
        cfg,
        |_, _| NoopObserver,
        handlers,
    );
    let mut session = sharded.session(&heap);
    for (name, binding) in &trace {
        session.process_named(name, *binding);
    }
    drop(session);
    let report = sharded.finish(&heap);
    assert!(report.error.is_none(), "shards {shards}: {:?}", report.error);
    (report.block_triggers(0), report.stats)
}

/// The same workload through the sequential engine (the ground truth).
fn sequential_single_owner(
    spec: &CompiledSpec,
    config: &EngineConfig,
    panic_handlers: bool,
) -> (Vec<Trigger>, rv_monitor::core::EngineStats) {
    let (heap, c, iters) = single_owner_heap(24);
    let trace = single_owner_trace(spec, c, &iters);
    let mut config = config.clone();
    config.record_triggers = true;
    let mut monitor = PropertyMonitor::new(spec.clone(), &config);
    if panic_handlers {
        for engine in monitor.engines_mut() {
            engine.set_trigger_handler(|_, _, _| panic!("injected ladder-test handler panic"));
        }
    }
    for (name, binding) in &trace {
        monitor
            .try_process_named(&heap, name, *binding)
            .unwrap_or_else(|e| panic!("sequential: {e}"));
    }
    (monitor.engines()[0].triggers().to_vec(), monitor.stats())
}

/// ForcedSweep and EagerCollect under budget pressure are
/// verdict-preserving: the random differential workload must agree
/// sharded-vs-sequential at every shard count (the Figure 5 oracle is
/// not consulted — it models no budgets).
#[test]
fn sweep_rungs_under_budget_pressure_match_sequential_at_all_shard_counts() {
    let spec = rv_monitor::props::compiled(Property::UnsafeIter).unwrap();
    for degradation in [DegradationPolicy::ForcedSweep, DegradationPolicy::EagerCollect] {
        let config = EngineConfig {
            max_live_monitors: Some(6),
            degradation,
            record_triggers: true,
            ..EngineConfig::default()
        };
        let mut streams = Vec::new();
        let mut trips = 0;
        for shards in [1usize, 2, 4] {
            let cfg = ShardConfig { shards, batch: 8, seed: 0x5EED };
            let out = differential_run_with(&spec, &config, cfg, 13, EVENTS)
                .unwrap_or_else(|e| panic!("{degradation:?} shards {shards}: {e}"));
            assert!(
                out.matches(),
                "{degradation:?} shards {shards}:\n{}",
                out.mismatches.join("\n")
            );
            trips += out.report.stats.budget_trips;
            streams.push((shards, out.report.triggers));
        }
        assert!(trips > 0, "{degradation:?}: the budget never tripped — workload too tame");
        for pair in streams.windows(2) {
            assert_eq!(
                pair[0].1, pair[1].1,
                "{degradation:?}: shards {} and {} disagree on the trigger stream",
                pair[0].0, pair[1].0
            );
        }
    }
}

/// The shed rung with a single-owner workload: every monitor creation
/// lands on the owner's shard, so the hard cap sheds the *same*
/// creations at shard counts 1, 2 and 4 — trigger streams and shed
/// counts are identical to each other and to the sequential engine.
#[test]
fn shed_rung_is_deterministic_across_shard_counts() {
    let spec = rv_monitor::props::compiled(Property::UnsafeIter).unwrap();
    let config = EngineConfig {
        max_live_monitors: Some(4),
        degradation: DegradationPolicy::ShedNewMonitors,
        record_triggers: true,
        ..EngineConfig::default()
    };
    let (seq_triggers, seq_stats) = sequential_single_owner(&spec, &config, false);
    assert!(seq_stats.shed > 0, "the cap never shed a creation — workload too tame");
    assert!(seq_stats.budget_trips > 0);
    assert!(!seq_triggers.is_empty(), "shedding must degrade, not silence, the monitor");
    for shards in [1usize, 2, 4] {
        let (triggers, stats) = sharded_single_owner(&spec, &config, shards, None);
        assert_eq!(
            triggers, seq_triggers,
            "shards {shards}: shed trigger stream diverged from sequential"
        );
        assert_eq!(stats.shed, seq_stats.shed, "shards {shards}: shed counts diverged");
        assert_eq!(
            stats.budget_trips, seq_stats.budget_trips,
            "shards {shards}: budget trips diverged"
        );
        assert_eq!(
            stats.degradations, seq_stats.degradations,
            "shards {shards}: ladder transitions diverged"
        );
    }
}

/// Panicking trigger handlers inside shard workers: the engine's panic
/// boundary quarantines the offending monitor on its shard; the recorded
/// trigger streams and quarantine counts are identical at shard counts
/// {1, 2, 4} and match the sequential engine with the same handler.
#[test]
fn handler_quarantine_is_deterministic_across_shard_counts() {
    let spec = rv_monitor::props::compiled(Property::UnsafeIter).unwrap();
    let config = EngineConfig { record_triggers: true, ..EngineConfig::default() };
    let (seq_triggers, seq_stats) = sequential_single_owner(&spec, &config, true);
    assert!(seq_stats.quarantined > 0, "the panicking handler never quarantined a monitor");
    for shards in [1usize, 2, 4] {
        let invocations = Arc::new(AtomicU64::new(0));
        let counter = Arc::clone(&invocations);
        let factory: HandlerFactory = Arc::new(move |_shard, _block| {
            let counter = Arc::clone(&counter);
            Some(Box::new(move |_step, _binding: &Binding, _verdict| {
                counter.fetch_add(1, Ordering::Relaxed);
                panic!("injected ladder-test handler panic");
            }))
        });
        let (triggers, stats) = sharded_single_owner(&spec, &config, shards, Some(factory));
        assert_eq!(
            triggers, seq_triggers,
            "shards {shards}: quarantine trigger stream diverged from sequential"
        );
        assert_eq!(
            stats.quarantined, seq_stats.quarantined,
            "shards {shards}: quarantine counts diverged"
        );
        assert_eq!(
            invocations.load(Ordering::Relaxed),
            seq_stats.triggers,
            "shards {shards}: every report must reach the handler exactly once"
        );
    }
}

/// Trigger output is keyed `(event_seq, ordinal)` and must be identical
/// across shard counts — determinism regardless of thread interleaving.
#[test]
fn trigger_streams_are_identical_across_shard_counts() {
    let spec = rv_monitor::props::compiled(Property::UnsafeMapIter).unwrap();
    let mut streams = Vec::new();
    for shards in SHARD_COUNTS {
        let cfg = ShardConfig { shards, batch: 8, seed: 0x5EED };
        let out = differential_run(&spec, GcPolicy::AllParamsDead, cfg, 17, EVENTS).unwrap();
        assert!(out.matches(), "shards {shards}: {:?}", out.mismatches);
        streams.push((shards, out.report.triggers));
    }
    for pair in streams.windows(2) {
        assert_eq!(
            pair[0].1, pair[1].1,
            "shards {} and {} disagree on the ordered trigger stream",
            pair[0].0, pair[1].0
        );
    }
}
