//! Tenant-isolation fault battery for the `rvmond` service layer
//! (`rv_core::service`).
//!
//! The contract under test is the ISSUE-7 acceptance scenario: with
//! tenant A's trigger handler panicking on every report and tenant B
//! tripping its budget ladder, tenant C's observable behaviour — its
//! counters *and* its on-disk journal, byte for byte — must be
//! indistinguishable from a run where C is the only tenant. A crash
//! (drop without drain, torn journal tail) must recover every tenant
//! with exactly-once trigger delivery: zero duplicated and zero dropped
//! `(event_seq, ordinal)` keys.

use std::path::Path;
use std::time::{SystemTime, UNIX_EPOCH};

use rv_monitor::core::service::TENANT_FLAG_PANIC_HANDLER;
use rv_monitor::core::{read_journal, Record, Service, ServiceConfig, TenantOptions, TenantState};

const SPEC: &str = r#"
UnsafeIter(Collection c, Iterator i) {
    event create(c, i);
    event update(c);
    event next(i);
    ere: update* create next* update+ next
    @match { report "improper Concurrent Modification found!"; }
}
"#;

const ITERS: usize = 24;

/// A fresh scratch root under the target dir.
fn scratch(tag: &str) -> std::path::PathBuf {
    let nanos = SystemTime::now().duration_since(UNIX_EPOCH).unwrap().as_nanos();
    let dir = std::env::temp_dir()
        .join(format!("rvmond-isolation-{tag}-{nanos}-{:?}", std::thread::current().id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config(root: &Path) -> ServiceConfig {
    ServiceConfig { root: root.to_path_buf(), ..ServiceConfig::default() }
}

/// The single-owner workload: every creation first (so the live-monitor
/// population actually climbs), one mutation, then every iterator is
/// advanced — each surviving monitor fires UnsafeIter's match.
fn workload(prefix: &str) -> Vec<String> {
    let mut lines = Vec::new();
    for i in 0..ITERS {
        lines.push(format!("create c {prefix}{i}"));
    }
    lines.push("update c".to_owned());
    for i in 0..ITERS {
        lines.push(format!("next {prefix}{i}"));
    }
    lines
}

fn drive(service: &Service, tenant: &str, lines: &[String]) {
    for line in lines {
        service.submit(tenant, line).unwrap_or_else(|e| panic!("submit to `{tenant}`: {e:?}"));
    }
    service.sync(tenant, 1).unwrap_or_else(|e| panic!("sync `{tenant}`: {e:?}"));
}

fn snapshot_of(service: &Service, tenant: &str) -> rv_monitor::core::TenantSnapshot {
    service
        .snapshots()
        .into_iter()
        .find(|s| s.name == tenant)
        .unwrap_or_else(|| panic!("no snapshot for `{tenant}`"))
}

/// All `(event_seq, ordinal)` trigger keys in a tenant's journal, in
/// append order.
fn trigger_keys(dir: &Path) -> Vec<(u64, u32)> {
    let scan = read_journal(dir).unwrap_or_else(|e| panic!("read_journal({dir:?}): {e}"));
    scan.records
        .iter()
        .filter_map(|sr| match &sr.record {
            Record::Trigger { event_seq, ordinal, .. } => Some((*event_seq, *ordinal)),
            _ => None,
        })
        .collect()
}

/// Raw bytes of every journal segment of a tenant, concatenated in
/// segment order.
fn journal_bytes(dir: &Path) -> Vec<u8> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.unwrap().file_name().into_string().ok())
        .filter(|n| n.starts_with("journal-"))
        .collect();
    names.sort();
    assert!(!names.is_empty(), "no journal segments in {dir:?}");
    let mut bytes = Vec::new();
    for n in names {
        bytes.extend_from_slice(&std::fs::read(dir.join(n)).unwrap());
    }
    bytes
}

/// Tenant A panics in every trigger handler, tenant B runs its budget
/// ladder to the shed rung, tenant C is healthy — and C's counters and
/// journal are byte-identical to a solo run.
#[test]
fn faulty_tenants_do_not_perturb_a_healthy_neighbor() {
    let multi_root = scratch("multi");
    let solo_root = scratch("solo");
    let lines = workload("i");

    let multi = Service::new(config(&multi_root)).unwrap();
    multi
        .admit(
            "a",
            SPEC,
            TenantOptions { flags: TENANT_FLAG_PANIC_HANDLER, ..TenantOptions::default() },
        )
        .unwrap();
    multi
        .admit("b", SPEC, TenantOptions { max_live_monitors: Some(4), ..TenantOptions::default() })
        .unwrap();
    multi.admit("c", SPEC, TenantOptions::default()).unwrap();
    // Interleave the tenants line by line — isolation must hold under
    // concurrent progress, not just sequential per-tenant batches.
    for line in &lines {
        for tenant in ["a", "b", "c"] {
            multi.submit(tenant, line).unwrap();
        }
    }
    for tenant in ["a", "b", "c"] {
        multi.sync(tenant, 7).unwrap();
    }

    let solo = Service::new(config(&solo_root)).unwrap();
    solo.admit("c", SPEC, TenantOptions::default()).unwrap();
    drive(&solo, "c", &lines);

    let a = snapshot_of(&multi, "a");
    assert_eq!(a.state, TenantState::Running, "a handler panic must stay engine-contained");
    assert!(a.quarantined > 0, "a's panicking handler never quarantined a monitor");
    assert_eq!(a.triggers, ITERS as u64, "triggers are recorded before the handler runs");

    let b = snapshot_of(&multi, "b");
    assert_eq!(b.state, TenantState::Running);
    assert!(b.budget_trips > 0, "b's 4-monitor cap never tripped");
    assert!(b.shed_monitors > 0, "b's ladder never reached the shed rung");
    assert!(b.triggers < ITERS as u64, "shedding must have dropped some of b's monitors");

    let c = snapshot_of(&multi, "c");
    let c_solo = snapshot_of(&solo, "c");
    assert_eq!(c.state, TenantState::Running);
    assert_eq!(c.quarantined, 0);
    assert_eq!(c.budget_trips, 0);
    assert_eq!(
        (c.events, c.triggers, c.shed_monitors, c.monitors_live, c.journal_records),
        (
            c_solo.events,
            c_solo.triggers,
            c_solo.shed_monitors,
            c_solo.monitors_live,
            c_solo.journal_records
        ),
        "neighboring faults leaked into c's counters"
    );
    assert_eq!(c.triggers, ITERS as u64);

    assert_eq!(multi.drain(), 3);
    assert_eq!(solo.drain(), 1);
    assert_eq!(
        journal_bytes(&multi_root.join("c")),
        journal_bytes(&solo_root.join("c")),
        "c's journal must be byte-identical to a solo run"
    );

    let _ = std::fs::remove_dir_all(&multi_root);
    let _ = std::fs::remove_dir_all(&solo_root);
}

/// Drain checkpoints every tenant; a new service over the same root
/// recovers each one with its counters intact and keeps accepting work.
#[test]
fn drain_and_restart_preserve_every_tenant() {
    let root = scratch("drain");
    let lines = workload("i");

    let before = {
        let service = Service::new(config(&root)).unwrap();
        service.admit("x", SPEC, TenantOptions::default()).unwrap();
        service
            .admit(
                "y",
                SPEC,
                TenantOptions { max_live_monitors: Some(4), ..TenantOptions::default() },
            )
            .unwrap();
        drive(&service, "x", &lines);
        drive(&service, "y", &lines);
        let snaps = service.snapshots();
        assert_eq!(service.drain(), 2);
        snaps
    };

    let service = Service::new(config(&root)).unwrap();
    let (ok, failed) = service.recover_all().unwrap();
    assert!(failed.is_empty(), "recovery failures: {failed:?}");
    assert_eq!(ok, vec!["x".to_owned(), "y".to_owned()]);
    for pre in &before {
        let post = snapshot_of(&service, &pre.name);
        assert_eq!(post.state, TenantState::Running);
        assert_eq!(post.events, pre.events, "tenant `{}` lost events across restart", pre.name);
        assert_eq!(post.triggers, pre.triggers, "tenant `{}` lost triggers", pre.name);
        // Drain checkpointed at the exact tail: replay touches nothing.
        assert_eq!(post.recovered_events, 0, "tenant `{}` replayed past its checkpoint", pre.name);
        assert_eq!(post.suppressed_triggers, 0);
    }

    // Recovered tenants accept new work with monotonically growing seqs.
    drive(&service, "x", &workload("j"));
    let post = snapshot_of(&service, "x");
    assert_eq!(post.events, before[0].events + workload("j").len() as u64);
    assert_eq!(post.triggers, 2 * ITERS as u64);
    let _ = service.drain();

    let keys = trigger_keys(&root.join("x"));
    let mut dedup = keys.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(dedup.len(), keys.len(), "duplicate trigger keys in x's journal");
    assert_eq!(keys.len(), 2 * ITERS);

    let _ = std::fs::remove_dir_all(&root);
}

/// A hard crash — no drain, no final checkpoint, a torn record at the
/// journal tail — recovers with exactly-once trigger delivery: the
/// replay re-fires and suppresses every already-journaled trigger, and
/// post-recovery work appends only fresh keys.
#[test]
fn crash_recovery_delivers_triggers_exactly_once() {
    let root = scratch("crash");
    let lines = workload("i");
    // No periodic checkpoints: recovery must replay the whole journal.
    let cfg = ServiceConfig { checkpoint_every: 1_000_000, ..config(&root) };

    {
        let service = Service::new(cfg.clone()).unwrap();
        service.admit("t", SPEC, TenantOptions::default()).unwrap();
        drive(&service, "t", &lines);
        // Dropped without drain(): the crash path.
    }
    let dir = root.join("t");
    let pre_crash = trigger_keys(&dir);
    assert_eq!(pre_crash.len(), ITERS, "workload must have journaled its triggers");

    // Tear the tail: a truncated record that repair must chop off.
    {
        use std::io::Write as _;
        let mut f =
            std::fs::OpenOptions::new().append(true).open(dir.join("journal-00000000")).unwrap();
        f.write_all(&[0x1f, 0x00, 0x00, 0x00, 0x07]).unwrap();
    }

    let service = Service::new(cfg).unwrap();
    let (ok, failed) = service.recover_all().unwrap();
    assert_eq!(ok, vec!["t".to_owned()], "failures: {failed:?}");
    let snap = snapshot_of(&service, "t");
    assert_eq!(snap.state, TenantState::Running);
    assert_eq!(snap.events, lines.len() as u64);
    assert_eq!(snap.recovered_events, lines.len() as u64);
    assert_eq!(snap.triggers, ITERS as u64, "recovery dropped or duplicated triggers");
    assert_eq!(
        snap.suppressed_triggers, ITERS as u64,
        "full-journal replay must re-fire and suppress every delivered trigger"
    );

    drive(&service, "t", &workload("j"));
    let _ = service.drain();

    let keys = trigger_keys(&dir);
    let mut dedup = keys.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(dedup.len(), keys.len(), "replay re-journaled an already-delivered trigger");
    assert_eq!(keys.len(), 2 * ITERS, "exactly-once: {} pre-crash + {} fresh", ITERS, ITERS);
    assert!(
        keys[ITERS..].iter().all(|k| k > pre_crash.last().unwrap()),
        "post-recovery triggers must extend, not rewrite, the stream"
    );

    let _ = std::fs::remove_dir_all(&root);
}
