//! One wire-level test per typed REJECT code, over a real TCP socket
//! against an in-process [`Service`], plus a seeded malformed-frame
//! fuzz loop: whatever bytes arrive, the framer never panics and
//! always answers a typed `400` (or closes cleanly on EOF) — and the
//! service keeps serving well-formed clients afterwards.

use std::io::Write as _;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use rv_monitor::core::service::{
    encode_frame, encode_hello, TENANT_FLAG_ALLOW_FATAL, TENANT_FLAG_SLOW_WORKER,
};
use rv_monitor::core::{
    read_frame, serve_connection, write_frame, Backpressure, Service, ServiceConfig, TenantOptions,
    TenantState,
};

const FRAME_HELLO: u8 = 0x01;
const FRAME_EVENT: u8 = 0x02;
const FRAME_SYNC: u8 = 0x03;
const FRAME_POLL: u8 = 0x07;
const FRAME_OK: u8 = 0x80;
const FRAME_REJECT: u8 = 0x83;

const SPEC: &str = r#"
UnsafeIter(Collection c, Iterator i) {
    event create(c, i);
    event update(c);
    event next(i);
    ere: update* create next* update+ next
    @match { report "improper Concurrent Modification found!"; }
}
"#;

fn scratch(tag: &str) -> std::path::PathBuf {
    let nanos = SystemTime::now().duration_since(UNIX_EPOCH).unwrap().as_nanos();
    let dir = std::env::temp_dir().join(format!("rv-reject-{tag}-{nanos}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// An in-process service behind a real TCP listener, one
/// `serve_connection` thread per accepted socket.
struct Server {
    svc: Arc<Service>,
    addr: String,
    stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    fn start(config: ServiceConfig) -> Server {
        let svc = Arc::new(Service::new(config).unwrap());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        listener.set_nonblocking(true).unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let svc = Arc::clone(&svc);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((mut s, _)) => {
                            let svc = Arc::clone(&svc);
                            std::thread::spawn(move || {
                                let _ = s.set_nodelay(true);
                                let _ = s.set_read_timeout(Some(Duration::from_secs(10)));
                                let _ = serve_connection(&svc, &mut s);
                            });
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => break,
                    }
                }
            })
        };
        Server { svc, addr, stop, accept: Some(accept) }
    }

    fn connect(&self) -> TcpStream {
        let s = TcpStream::connect(&self.addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        s.set_nodelay(true).unwrap();
        s
    }

    /// Opens a connection and completes a HELLO handshake.
    fn hello(&self, tenant: &str, spec: &str, opts: &TenantOptions) -> TcpStream {
        let mut s = self.connect();
        write_frame(&mut s, FRAME_HELLO, &encode_hello(tenant, spec, opts)).unwrap();
        let (kind, payload) = read_frame(&mut s).unwrap().expect("HELLO reply");
        assert_eq!((kind, payload.as_slice()), (FRAME_OK, tenant.as_bytes()));
        s
    }

    /// Opens a connection, sends one HELLO, and returns the REJECT.
    fn hello_rejected(&self, tenant: &str, spec: &str) -> (u16, String) {
        let mut s = self.connect();
        write_frame(&mut s, FRAME_HELLO, &encode_hello(tenant, spec, &TenantOptions::default()))
            .unwrap();
        expect_reject(&mut s)
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

/// Reads frames until a REJECT arrives; returns `(code, message)`.
fn expect_reject(s: &mut TcpStream) -> (u16, String) {
    loop {
        match read_frame(s).expect("read frame").expect("closed before REJECT") {
            (FRAME_REJECT, p) => {
                let code = u16::from_le_bytes(p[..2].try_into().unwrap());
                return (code, String::from_utf8_lossy(&p[2..]).into_owned());
            }
            _ => {}
        }
    }
}

#[test]
fn reject_400_bad_frame() {
    let root = scratch("400");
    let server = Server::start(ServiceConfig { root: root.clone(), ..ServiceConfig::default() });

    // A frame whose CRC trailer does not match its body.
    let mut s = server.connect();
    let mut bytes = encode_frame(FRAME_HELLO, &encode_hello("t", SPEC, &TenantOptions::default()));
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    s.write_all(&bytes).unwrap();
    let (code, msg) = expect_reject(&mut s);
    assert_eq!(code, 400, "{msg}");
    assert!(msg.contains("malformed frame"), "{msg}");

    // A protocol-order violation: EVENT before HELLO.
    let mut s = server.connect();
    write_frame(&mut s, FRAME_EVENT, b"update c").unwrap();
    let (code, msg) = expect_reject(&mut s);
    assert_eq!(code, 400, "{msg}");
    assert!(msg.contains("before HELLO"), "{msg}");

    assert_eq!(server.svc.stats.bad_frames.load(Ordering::Relaxed), 2);
    drop(server);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn reject_409_spec_mismatch() {
    let root = scratch("409");
    let server = Server::start(ServiceConfig { root: root.clone(), ..ServiceConfig::default() });
    let _alive = server.hello("t", SPEC, &TenantOptions::default());
    let different = SPEC.replace("update+ next", "update+ next next");
    let (code, msg) = server.hello_rejected("t", &different);
    assert_eq!(code, 409, "{msg}");
    drop(server);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn reject_410_resume_gone() {
    let root = scratch("410");
    let server = Server::start(ServiceConfig {
        root: root.clone(),
        trigger_log_cap: 2,
        ..ServiceConfig::default()
    });
    let mut s = server.hello("t", SPEC, &TenantOptions::default());
    // Four matches overflow the 2-entry trigger log, evicting the
    // oldest two; resuming from the beginning is then impossible.
    for i in 0..4 {
        write_frame(&mut s, FRAME_EVENT, format!("create c i{i}").as_bytes()).unwrap();
    }
    write_frame(&mut s, FRAME_EVENT, b"update c").unwrap();
    for i in 0..4 {
        write_frame(&mut s, FRAME_EVENT, format!("next i{i}").as_bytes()).unwrap();
    }
    write_frame(&mut s, FRAME_SYNC, &1u64.to_le_bytes()).unwrap();
    let (kind, _) = read_frame(&mut s).unwrap().unwrap();
    assert_eq!(kind, 0x81, "SYNCED");

    let mut poll = Vec::new();
    poll.extend_from_slice(&0u64.to_le_bytes());
    poll.extend_from_slice(&0u32.to_le_bytes());
    poll.extend_from_slice(&16u32.to_le_bytes());
    write_frame(&mut s, FRAME_POLL, &poll).unwrap();
    let (code, msg) = expect_reject(&mut s);
    assert_eq!(code, 410, "{msg}");
    assert!(msg.contains("evicted"), "{msg}");
    drop(server);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn reject_422_bad_spec() {
    let root = scratch("422");
    let server = Server::start(ServiceConfig { root: root.clone(), ..ServiceConfig::default() });
    let (code, msg) = server.hello_rejected("t", "NotASpec {");
    assert_eq!(code, 422, "{msg}");
    drop(server);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn reject_429_too_many_tenants() {
    let root = scratch("429");
    let server = Server::start(ServiceConfig {
        root: root.clone(),
        max_tenants: 1,
        ..ServiceConfig::default()
    });
    let _alive = server.hello("a", SPEC, &TenantOptions::default());
    let (code, msg) = server.hello_rejected("b", SPEC);
    assert_eq!(code, 429, "{msg}");
    drop(server);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn reject_430_too_many_conns() {
    let root = scratch("430");
    let server = Server::start(ServiceConfig {
        root: root.clone(),
        max_conns_per_tenant: 1,
        ..ServiceConfig::default()
    });
    let _alive = server.hello("t", SPEC, &TenantOptions::default());
    let (code, msg) = server.hello_rejected("t", "");
    assert_eq!(code, 430, "{msg}");
    drop(server);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn reject_431_queue_full_under_shed() {
    let root = scratch("431");
    let server = Server::start(ServiceConfig {
        root: root.clone(),
        queue_depth: 1,
        backpressure: Backpressure::Shed,
        ..ServiceConfig::default()
    });
    let opts = TenantOptions { flags: TENANT_FLAG_SLOW_WORKER, ..TenantOptions::default() };
    let mut s = server.hello("t", SPEC, &opts);
    // A burst into a depth-1 queue with a 2ms/line worker must shed.
    for _ in 0..64 {
        write_frame(&mut s, FRAME_EVENT, b"update c").unwrap();
    }
    let (code, msg) = expect_reject(&mut s);
    assert_eq!(code, 431, "{msg}");
    drop(server);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn reject_500_tenant_failed() {
    let root = scratch("500");
    let server = Server::start(ServiceConfig { root: root.clone(), ..ServiceConfig::default() });
    let opts = TenantOptions { flags: TENANT_FLAG_ALLOW_FATAL, ..TenantOptions::default() };
    let mut s = server.hello("t", SPEC, &opts);
    write_frame(&mut s, FRAME_EVENT, b"!fatal").unwrap();
    // Unsupervised: the worker dies and stays dead. Wait for the state
    // to settle so the next EVENT deterministically answers 500.
    let deadline = Instant::now() + Duration::from_secs(10);
    while !server
        .svc
        .snapshots()
        .iter()
        .any(|t| t.name == "t" && matches!(t.state, TenantState::Failed(_)))
    {
        assert!(Instant::now() < deadline, "worker never failed");
        std::thread::sleep(Duration::from_millis(5));
    }
    write_frame(&mut s, FRAME_EVENT, b"update c").unwrap();
    let (code, msg) = expect_reject(&mut s);
    assert_eq!(code, 500, "{msg}");
    drop(server);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn reject_503_draining() {
    let root = scratch("503");
    let server = Server::start(ServiceConfig { root: root.clone(), ..ServiceConfig::default() });
    let s = server.hello("t", SPEC, &TenantOptions::default());
    drop(s);
    let _ = server.svc.drain();
    let (code, msg) = server.hello_rejected("t", "");
    assert_eq!(code, 503, "{msg}");
    drop(server);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn reject_504_timeout() {
    let root = scratch("504");
    let server = Server::start(ServiceConfig {
        root: root.clone(),
        reply_timeout: Duration::from_millis(40),
        queue_depth: 256,
        ..ServiceConfig::default()
    });
    let opts = TenantOptions { flags: TENANT_FLAG_SLOW_WORKER, ..TenantOptions::default() };
    let mut s = server.hello("t", SPEC, &opts);
    // ~120ms of queued slow-worker work vs a 40ms barrier deadline.
    for _ in 0..60 {
        write_frame(&mut s, FRAME_EVENT, b"update c").unwrap();
    }
    write_frame(&mut s, FRAME_SYNC, &7u64.to_le_bytes()).unwrap();
    let (code, msg) = expect_reject(&mut s);
    assert_eq!(code, 504, "{msg}");
    drop(server);
    let _ = std::fs::remove_dir_all(&root);
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seeded garbage against the framer: raw byte soup, CRC-corrupted
/// real frames, and CRC-valid frames with unknown kinds. Every
/// connection must end in a typed 400 or a clean close — never a
/// panic, never a hang — and the service must keep serving real
/// clients afterwards.
#[test]
fn malformed_frame_fuzz_never_panics_always_400() {
    let root = scratch("fuzz");
    let server = Server::start(ServiceConfig { root: root.clone(), ..ServiceConfig::default() });
    let mut rng: u64 = 0xF022_5EED;
    let hello = encode_frame(FRAME_HELLO, &encode_hello("t", SPEC, &TenantOptions::default()));

    for case in 0..120u32 {
        let mut s = server.connect();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let bytes: Vec<u8> = match case % 3 {
            // Raw byte soup of random length.
            0 => {
                let len = (splitmix64(&mut rng) % 96 + 1) as usize;
                (0..len).map(|_| (splitmix64(&mut rng) & 0xFF) as u8).collect()
            }
            // A real frame with one random bit flipped past the length
            // prefix (so the framer reads it fully and fails the CRC).
            1 => {
                let mut b = hello.clone();
                let pos = 4 + (splitmix64(&mut rng) as usize) % (b.len() - 4);
                b[pos] ^= 1 << (splitmix64(&mut rng) % 8);
                b
            }
            // A CRC-valid frame with an unknown kind byte.
            _ => {
                let kind = 0x20 | (splitmix64(&mut rng) & 0x1F) as u8;
                let payload: Vec<u8> =
                    (0..(splitmix64(&mut rng) % 32) as usize).map(|i| i as u8).collect();
                encode_frame(kind, &payload)
            }
        };
        s.write_all(&bytes).unwrap();
        // EOF the write half so a truncated length prefix cannot park
        // the server waiting for more bytes.
        s.shutdown(Shutdown::Write).unwrap();
        // The server either answers a typed 400 and closes, or (when
        // the soup happens to be a clean EOF boundary) just closes.
        loop {
            match read_frame(&mut s) {
                Ok(Some((FRAME_REJECT, p))) => {
                    let code = u16::from_le_bytes(p[..2].try_into().unwrap());
                    assert_eq!(code, 400, "case {case}: wrong reject code");
                }
                Ok(Some((kind, _))) => panic!("case {case}: unexpected frame kind {kind:#x}"),
                Ok(None) => break,
                // The server closing with unread soup still buffered
                // surfaces as RST on this side — still a clean outcome.
                Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => break,
                Err(e) => panic!("case {case}: client-side read error: {e}"),
            }
        }
    }

    // The service survived 120 hostile connections: a well-formed
    // client still gets a full handshake and a working tenant.
    let mut s = server.hello("t", SPEC, &TenantOptions::default());
    write_frame(&mut s, FRAME_EVENT, b"create c i1").unwrap();
    write_frame(&mut s, FRAME_EVENT, b"update c").unwrap();
    write_frame(&mut s, FRAME_EVENT, b"next i1").unwrap();
    write_frame(&mut s, FRAME_SYNC, &1u64.to_le_bytes()).unwrap();
    let (kind, _) = read_frame(&mut s).unwrap().unwrap();
    assert_eq!(kind, 0x81, "SYNCED after the fuzz barrage");
    let snap = server.svc.snapshots().into_iter().find(|t| t.name == "t").unwrap();
    assert_eq!(snap.triggers, 1, "{}", snap.to_json());
    drop(server);
    let _ = std::fs::remove_dir_all(&root);
}
