//! End-to-end battery for the real `rvmond` binary: spawn it on
//! ephemeral ports, speak the framed wire protocol over TCP, scrape
//! `/healthz`, kill it with SIGKILL mid-traffic, restart over the same
//! root and verify every tenant recovers, then SIGTERM-drain to a clean
//! exit 0.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use rv_monitor::core::service::{
    encode_hello, FRAME_BYE, FRAME_EVENT, FRAME_HELLO, FRAME_OK, FRAME_STATS, FRAME_STATS_REPLY,
    FRAME_SYNC, FRAME_SYNCED,
};
use rv_monitor::core::{read_frame, write_frame, TenantOptions};

const SPEC: &str = r#"
UnsafeIter(Collection c, Iterator i) {
    event create(c, i);
    event update(c);
    event next(i);
    ere: update* create next* update+ next
    @match { report "improper Concurrent Modification found!"; }
}
"#;

struct Daemon {
    child: Child,
    ingest: String,
    http: String,
}

impl Daemon {
    fn spawn(root: &std::path::Path) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_rvmond"))
            .args(["--root", root.to_str().unwrap(), "--port", "0", "--http-port", "0"])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn rvmond");
        // Banner: `rvmond ingest on ADDR http on http://ADDR/healthz`.
        let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        let mut banner = String::new();
        stdout.read_line(&mut banner).expect("read rvmond banner");
        let ingest = banner
            .split("ingest on ")
            .nth(1)
            .and_then(|r| r.split_whitespace().next())
            .unwrap_or_else(|| panic!("no ingest addr in banner: {banner}"))
            .to_owned();
        let http = banner
            .split("http://")
            .nth(1)
            .and_then(|r| r.split("/healthz").next())
            .unwrap_or_else(|| panic!("no http addr in banner: {banner}"))
            .to_owned();
        Daemon { child, ingest, http }
    }

    fn healthz(&self) -> String {
        let mut stream = TcpStream::connect(&self.http).expect("connect /healthz");
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        write!(stream, "GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read /healthz");
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        response.split_once("\r\n\r\n").expect("header/body split").1.to_owned()
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn scratch() -> std::path::PathBuf {
    let nanos = SystemTime::now().duration_since(UNIX_EPOCH).unwrap().as_nanos();
    let dir = std::env::temp_dir().join(format!("rvmond-cli-{nanos}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A framed-protocol client for one tenant connection.
struct Client {
    stream: TcpStream,
}

impl Client {
    fn hello(addr: &str, tenant: &str, spec: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connect ingest");
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        stream.set_nodelay(true).unwrap();
        let mut c = Client { stream };
        let hello = encode_hello(tenant, spec, &TenantOptions::default());
        write_frame(&mut c.stream, FRAME_HELLO, &hello).unwrap();
        let (kind, payload) = c.next_frame();
        assert_eq!(
            (kind, payload.as_slice()),
            (FRAME_OK, tenant.as_bytes()),
            "HELLO rejected: {}",
            String::from_utf8_lossy(&payload)
        );
        c
    }

    fn next_frame(&mut self) -> (u8, Vec<u8>) {
        read_frame(&mut self.stream).expect("read frame").expect("peer closed mid-conversation")
    }

    fn event(&mut self, line: &str) {
        write_frame(&mut self.stream, FRAME_EVENT, line.as_bytes()).unwrap();
    }

    fn sync(&mut self, token: u64) {
        write_frame(&mut self.stream, FRAME_SYNC, &token.to_le_bytes()).unwrap();
        let (kind, payload) = self.next_frame();
        assert_eq!(kind, FRAME_SYNCED, "sync: {}", String::from_utf8_lossy(&payload));
        assert_eq!(payload, token.to_le_bytes());
    }

    fn stats(&mut self) -> String {
        write_frame(&mut self.stream, FRAME_STATS, &[]).unwrap();
        let (kind, payload) = self.next_frame();
        assert_eq!(kind, FRAME_STATS_REPLY);
        String::from_utf8(payload).expect("stats JSON is UTF-8")
    }

    fn bye(mut self) {
        write_frame(&mut self.stream, FRAME_BYE, &[]).unwrap();
    }
}

fn json_u64(json: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let rest =
        &json[json.find(&pat).unwrap_or_else(|| panic!("no `{key}` in {json}")) + pat.len()..];
    rest.chars().take_while(char::is_ascii_digit).collect::<String>().parse().unwrap()
}

/// Drives `n` UnsafeIter matches through a tenant connection.
fn drive(client: &mut Client, prefix: &str, n: usize) {
    for i in 0..n {
        client.event(&format!("create c {prefix}{i}"));
    }
    client.event("update c");
    for i in 0..n {
        client.event(&format!("next {prefix}{i}"));
    }
    client.sync(0xB0B);
}

/// A daemon asked to bind a port that is already taken must fail fast
/// — before recovery, with exit code 2 and a typed error naming the
/// port — not limp along half-listening.
#[test]
fn rvmond_fails_fast_on_bound_port() {
    let root = scratch();
    let daemon = Daemon::spawn(&root);
    let taken = daemon.ingest.rsplit(':').next().expect("port in ingest addr").to_owned();

    let other_root = scratch();
    let output = Command::new(env!("CARGO_BIN_EXE_rvmond"))
        .args(["--root", other_root.to_str().unwrap(), "--port", &taken, "--http-port", "0"])
        .output()
        .expect("run rvmond against a taken port");
    assert_eq!(output.status.code(), Some(2), "typed exit for a bound port");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("error[port-bound]"), "{stderr}");
    assert!(stderr.contains(&taken), "diagnostic must name the port: {stderr}");

    drop(daemon);
    let _ = std::fs::remove_dir_all(&root);
    let _ = std::fs::remove_dir_all(&other_root);
}

#[test]
fn rvmond_survives_sigkill_and_drains_on_sigterm() {
    let root = scratch();

    // Phase 1: two tenants over the wire, then SIGKILL mid-flight.
    let daemon = Daemon::spawn(&root);
    let mut alpha = Client::hello(&daemon.ingest, "alpha", SPEC);
    let mut beta = Client::hello(&daemon.ingest, "beta", SPEC);
    drive(&mut alpha, "i", 8);
    drive(&mut beta, "i", 5);
    let alpha_stats = alpha.stats();
    assert_eq!(json_u64(&alpha_stats, "events"), 17);
    assert_eq!(json_u64(&alpha_stats, "triggers"), 8);
    assert_eq!(json_u64(&beta.stats(), "triggers"), 5);

    let body = daemon.healthz();
    assert!(body.starts_with("ok\n"), "{body}");
    assert!(body.contains("tenants 2"), "{body}");
    assert!(body.contains("tenant alpha state=running"), "{body}");
    assert!(body.contains("tenant beta state=running"), "{body}");

    let pid = daemon.child.id();
    drop(daemon); // SIGKILL: no drain, no final checkpoint.
    let _ = pid;

    // Phase 2: restart over the same root — both tenants recover with
    // their journaled history, exactly once, and accept new work.
    let daemon = Daemon::spawn(&root);
    let body = daemon.healthz();
    assert!(body.contains("tenants 2"), "recovery missed a tenant: {body}");
    let mut alpha = Client::hello(&daemon.ingest, "alpha", "");
    let stats = alpha.stats();
    assert_eq!(json_u64(&stats, "events"), 17, "alpha lost events: {stats}");
    assert_eq!(json_u64(&stats, "triggers"), 8, "alpha lost triggers: {stats}");
    assert_eq!(
        json_u64(&stats, "suppressed_triggers"),
        8,
        "replay must re-fire and suppress, not re-deliver: {stats}"
    );
    drive(&mut alpha, "j", 4);
    let stats = alpha.stats();
    assert_eq!(json_u64(&stats, "events"), 26);
    assert_eq!(json_u64(&stats, "triggers"), 12, "fresh triggers after recovery: {stats}");
    alpha.bye();

    // Phase 3: SIGTERM → checkpoint every tenant, exit 0.
    let mut daemon = daemon;
    let status = Command::new("kill")
        .args(["-TERM", &daemon.child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(status.success());
    let code = daemon.child.wait().expect("rvmond exits on SIGTERM");
    assert!(code.success(), "SIGTERM drain must exit 0, got {code:?}");

    // Phase 4: a drained root restarts with zero replay.
    let daemon = Daemon::spawn(&root);
    let mut alpha = Client::hello(&daemon.ingest, "alpha", "");
    let stats = alpha.stats();
    assert_eq!(json_u64(&stats, "events"), 26);
    assert_eq!(json_u64(&stats, "triggers"), 12);
    assert_eq!(json_u64(&stats, "recovered_events"), 0, "drain checkpointed the tail: {stats}");
    alpha.bye();
    drop(daemon);

    let _ = std::fs::remove_dir_all(&root);
}
