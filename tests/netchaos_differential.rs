//! Differential chaos proof: the trigger stream a [`ResilientClient`]
//! observes through a fault-injecting [`ChaosProxy`] is byte-identical
//! to a clean solo run — exactly-once, no gaps, no reorders — across
//! seeds and fault profiles up to 5%, *including* a mid-stream
//! worker-fatal supervised restart and a hot spec reload.
//!
//! Both sides of every differential run the identical workload and
//! daemon configuration; only the wire between them differs.

use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use rv_monitor::core::service::TENANT_FLAG_ALLOW_FATAL;
use rv_monitor::core::{
    serve_connection, Backpressure, ChaosProfile, ChaosProxy, ClientStats, ReconnectPolicy,
    ResilientClient, Service, ServiceConfig, SupervisorConfig, TenantOptions,
};

const SPEC: &str = r#"
UnsafeIter(Collection c, Iterator i) {
    event create(c, i);
    event update(c);
    event next(i);
    ere: update* create next* update+ next
    @match { report "improper Concurrent Modification found!"; }
}
"#;

const SPEC_V2: &str = r#"
UnsafeIter(Collection c, Iterator i) {
    event create(c, i);
    event update(c);
    event next(i);
    ere: update* create next* update+ next
    @match { report "v2: still an improper Concurrent Modification!"; }
}
"#;

const EVENTS: usize = 600;
const SYNC_EVERY: usize = 48;
const FATAL_AT: usize = 220;
const RELOAD_AT: usize = 400;
const RELOAD_TOKEN: u64 = 0xD00B_1E51;
const SESSION: u64 = 0x5E55_1011;

fn scratch(tag: &str) -> std::path::PathBuf {
    let nanos = SystemTime::now().duration_since(UNIX_EPOCH).unwrap().as_nanos();
    let dir = std::env::temp_dir().join(format!("rv-chaosdiff-{tag}-{nanos}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The deterministic trace both sides replay: a seeded create/update/
/// next mix over a rolling window of iterators, with periodic `!free`s
/// so the GC machinery stays exercised under chaos too.
fn workload() -> Vec<String> {
    let mut rng: u64 = 0x10AD_0001;
    let mut iters: Vec<u64> = Vec::new();
    let mut next_iter = 0u64;
    let mut lines = Vec::with_capacity(EVENTS);
    while lines.len() < EVENTS {
        let roll = splitmix64(&mut rng) % 100;
        if iters.is_empty() || roll < 25 {
            next_iter += 1;
            iters.push(next_iter);
            lines.push(format!("create c{} i{next_iter}", next_iter % 7));
        } else if roll < 40 {
            lines.push(format!("update c{}", splitmix64(&mut rng) % 7));
        } else if roll < 90 {
            let pick = iters[(splitmix64(&mut rng) as usize) % iters.len()];
            lines.push(format!("next i{pick}"));
        } else {
            let victim = iters.remove((splitmix64(&mut rng) as usize) % iters.len());
            lines.push(format!("!free i{victim}"));
        }
    }
    lines
}

/// An in-process supervised service behind a real TCP listener.
struct Server {
    _svc: Arc<Service>,
    addr: String,
    stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    fn start(root: &std::path::Path) -> Server {
        let config = ServiceConfig {
            root: root.to_path_buf(),
            backpressure: Backpressure::Block,
            reply_timeout: Duration::from_secs(10),
            supervisor: SupervisorConfig {
                max_restarts: 5,
                backoff: Duration::from_millis(10),
                backoff_cap: Duration::from_millis(100),
                poll: Duration::from_millis(5),
                ..SupervisorConfig::default()
            },
            ..ServiceConfig::default()
        };
        let svc = Arc::new(Service::new(config).unwrap());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        listener.set_nonblocking(true).unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let svc = Arc::clone(&svc);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((mut s, _)) => {
                            let svc = Arc::clone(&svc);
                            std::thread::spawn(move || {
                                let _ = s.set_nodelay(true);
                                let _ = s.set_read_timeout(Some(Duration::from_secs(30)));
                                let _ = serve_connection(&svc, &mut s);
                            });
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => break,
                    }
                }
            })
        };
        Server { _svc: svc, addr, stop, accept: Some(accept) }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

/// Runs the full workload — mid-stream `!fatal`, quiescent hot reload,
/// final barrier, trigger drain — against a fresh supervised service,
/// optionally through a chaos proxy. Returns the rendered trigger
/// stream in delivery order plus the client's counters.
fn run_once(tag: &str, chaos: Option<ChaosProfile>) -> (Vec<String>, ClientStats) {
    let root = scratch(tag);
    let server = Server::start(&root);
    let mut proxy = chaos.map(|p| ChaosProxy::start(&server.addr, p).unwrap());
    let addr = proxy.as_ref().map_or_else(|| server.addr.clone(), |p| p.addr());

    let opts = TenantOptions { flags: TENANT_FLAG_ALLOW_FATAL, ..TenantOptions::default() };
    let policy = ReconnectPolicy {
        max_attempts: 64,
        backoff: Duration::from_millis(10),
        backoff_cap: Duration::from_millis(200),
        read_timeout: Duration::from_millis(1500),
        ..ReconnectPolicy::default()
    };
    let mut client = ResilientClient::connect(&addr, "t", SPEC, opts, SESSION, policy).unwrap();

    for (i, line) in workload().iter().enumerate() {
        if i == FATAL_AT {
            client.send("!fatal").unwrap();
        }
        if i == RELOAD_AT {
            // Quiesce, then cut over: the barrier pins the reload to a
            // deterministic journal position on both sides.
            client.sync().unwrap();
            assert_eq!(client.reload(RELOAD_TOKEN, SPEC_V2).unwrap(), 2);
        }
        client.send(line).unwrap();
        if (i + 1) % SYNC_EVERY == 0 {
            client.sync().unwrap();
        }
    }
    client.sync().unwrap();

    let mut rendered = Vec::new();
    let mut empties = 0;
    while empties < 2 {
        let batch = client.poll_triggers(256).unwrap();
        if batch.is_empty() {
            empties += 1;
        } else {
            empties = 0;
            rendered.extend(batch.iter().map(|t| t.render()));
        }
    }
    let stats = client.bye();
    if let Some(p) = proxy.as_mut() {
        p.shutdown();
    }
    drop(proxy);
    drop(server);
    let _ = std::fs::remove_dir_all(&root);
    (rendered, stats)
}

/// Asserts the chaos-side stream is byte-identical to the clean one.
fn assert_identical(clean: &[String], chaos: &[String], label: &str, stats: &ClientStats) {
    assert!(!clean.is_empty(), "workload produced no triggers");
    assert_eq!(
        chaos.len(),
        clean.len(),
        "{label}: trigger count diverged ({} vs {}); client: {}",
        chaos.len(),
        clean.len(),
        stats.to_json()
    );
    for (i, (c, k)) in clean.iter().zip(chaos.iter()).enumerate() {
        assert_eq!(c, k, "{label}: trigger {i} diverged; client: {}", stats.to_json());
    }
}

#[test]
fn clean_runs_are_deterministic() {
    let (a, _) = run_once("clean-a", None);
    let (b, stats) = run_once("clean-b", None);
    assert_identical(&a, &b, "clean vs clean", &stats);
}

#[test]
fn one_percent_loss_is_exactly_once() {
    let (clean, _) = run_once("c1", None);
    for seed in [1u64, 2] {
        let profile = ChaosProfile::lossy(10, seed);
        let (chaos, stats) = run_once(&format!("l1-s{seed}"), Some(profile));
        assert_identical(&clean, &chaos, &format!("1% loss seed {seed}"), &stats);
    }
}

#[test]
fn five_percent_loss_is_exactly_once() {
    let (clean, _) = run_once("c5", None);
    for seed in [3u64, 4] {
        let profile = ChaosProfile::lossy(50, seed);
        let (chaos, stats) = run_once(&format!("l5-s{seed}"), Some(profile));
        assert_identical(&clean, &chaos, &format!("5% loss seed {seed}"), &stats);
        assert!(
            stats.reconnects > 0,
            "5% loss should force reconnects; client: {}",
            stats.to_json()
        );
    }
}

#[test]
fn mixed_fault_profile_is_exactly_once() {
    let (clean, _) = run_once("cm", None);
    // Every fault class at once — drops, dups, corruption, truncation,
    // resets, and delay — still under the 5% ceiling.
    let profile = ChaosProfile::parse(
        "drop=10,dup=10,corrupt=10,truncate=5,reset=5,delay=10,delay_ms=2,seed=9",
    )
    .unwrap();
    let (chaos, stats) = run_once("mixed", Some(profile));
    assert_identical(&clean, &chaos, "mixed faults", &stats);
}
