//! Property tests for the managed-heap substrate: the mark-sweep collector
//! must agree exactly with a naive reachability model, and weak references
//! must die precisely at the sweep that reclaims their referent.

// Requires the crates.io `proptest` crate: build with
// `--features external-deps` in a networked environment. The offline
// default build compiles this file to nothing.
#![cfg(feature = "external-deps")]

use proptest::prelude::*;
use rv_monitor::heap::{Heap, HeapConfig, ObjId, WeakRef};
use std::collections::{HashMap, HashSet};

#[derive(Clone, Copy, Debug)]
enum Op {
    /// Allocate an object pinned as a root.
    AllocPinned,
    /// Allocate an object rooted only by the current frame.
    AllocLocal,
    /// Add an edge between two previously allocated (possibly dead) slots.
    Edge { from: usize, to: usize },
    /// Unpin a pinned object.
    Unpin { slot: usize },
    /// Collect.
    Collect,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => Just(Op::AllocPinned),
        2 => Just(Op::AllocLocal),
        3 => (any::<usize>(), any::<usize>()).prop_map(|(from, to)| Op::Edge { from, to }),
        2 => any::<usize>().prop_map(|slot| Op::Unpin { slot }),
        2 => Just(Op::Collect),
    ]
}

/// A shadow model: objects, pins, edges; liveness = reachable from pins.
#[derive(Default)]
struct Model {
    pins: HashSet<usize>,
    edges: HashMap<usize, Vec<usize>>,
    dead: HashSet<usize>,
}

impl Model {
    fn live_set(&self) -> HashSet<usize> {
        let mut seen: HashSet<usize> = HashSet::new();
        let mut stack: Vec<usize> = self.pins.iter().copied().collect();
        while let Some(n) = stack.pop() {
            if seen.insert(n) {
                if let Some(succ) = self.edges.get(&n) {
                    stack.extend(succ.iter().copied());
                }
            }
        }
        seen
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn mark_sweep_agrees_with_reachability_model(
        ops in proptest::collection::vec(op_strategy(), 0..80)
    ) {
        let mut heap = Heap::new(HeapConfig::manual());
        let class = heap.register_class("Obj");
        let _frame = heap.enter_frame();
        let mut objects: Vec<ObjId> = Vec::new();
        let mut weaks: Vec<WeakRef> = Vec::new();
        let mut model = Model::default();

        for op in ops {
            match op {
                Op::AllocPinned => {
                    let frame = heap.enter_frame();
                    let o = heap.alloc(class);
                    heap.pin(o);
                    heap.exit_frame(frame);
                    weaks.push(heap.weak_ref(o));
                    model.pins.insert(objects.len());
                    objects.push(o);
                }
                Op::AllocLocal => {
                    // Allocated in a frame that exits immediately: dead at
                    // the next collection unless an edge saves it first.
                    let frame = heap.enter_frame();
                    let o = heap.alloc(class);
                    heap.exit_frame(frame);
                    weaks.push(heap.weak_ref(o));
                    objects.push(o);
                }
                Op::Edge { from, to } => {
                    if objects.is_empty() {
                        continue;
                    }
                    let f = from % objects.len();
                    let t = to % objects.len();
                    // Edges can only be added between live objects.
                    if !model.dead.contains(&f) && !model.dead.contains(&t)
                        && heap.is_alive(objects[f]) && heap.is_alive(objects[t])
                    {
                        heap.add_edge(objects[f], objects[t]);
                        model.edges.entry(f).or_default().push(t);
                    }
                }
                Op::Unpin { slot } => {
                    if objects.is_empty() {
                        continue;
                    }
                    let s = slot % objects.len();
                    if model.pins.remove(&s) {
                        heap.unpin(objects[s]);
                    }
                }
                Op::Collect => {
                    heap.collect();
                    let live = model.live_set();
                    for idx in 0..objects.len() {
                        if !live.contains(&idx) {
                            model.dead.insert(idx);
                        }
                    }
                }
            }
            // Invariant: after any op, everything the model calls dead is
            // dead on the heap, and pinned-reachable objects are alive.
            for (idx, &o) in objects.iter().enumerate() {
                if model.dead.contains(&idx) {
                    prop_assert!(!heap.is_alive(o), "model says slot {idx} is dead");
                    prop_assert!(!weaks[idx].is_alive(&heap));
                    prop_assert!(weaks[idx].upgrade(&heap).is_none());
                }
            }
        }
        // Final full agreement after one more collection.
        heap.collect();
        let live = model.live_set();
        for (idx, &o) in objects.iter().enumerate() {
            prop_assert_eq!(
                heap.is_alive(o),
                live.contains(&idx) && !model.dead.contains(&idx),
                "slot {} disagrees", idx
            );
        }
        prop_assert_eq!(
            heap.live_count(),
            objects
                .iter()
                .enumerate()
                .filter(|(idx, _)| live.contains(idx) && !model.dead.contains(idx))
                .count()
        );
    }
}
