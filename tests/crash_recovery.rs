//! Durability suite: snapshot round-trips over the full property catalog
//! and the kill-at-any-byte crash sweep.
//!
//! Part one snapshots a mid-flight [`PropertyMonitor`] for every catalog
//! property under every GC policy, restores it into a fresh monitor, and
//! drives both twins over the identical event suffix: the restored run
//! must be byte-identical at the snapshot point and verdict-identical at
//! the end (modulo the deliberately cold lookup cache). Part two runs
//! [`crash_and_recover`] across seeds × kill classes and asserts the
//! recovered run equals the uninterrupted oracle with zero duplicate
//! goal-report deliveries.

use rv_monitor::core::{
    crash_and_recover, Binding, EngineConfig, GcPolicy, KillClass, PropertyMonitor,
};
use rv_monitor::heap::{Heap, HeapConfig, ObjId, SplitMix64};
use rv_monitor::logic::EventId;
use rv_monitor::props::{compiled, Property};
use rv_monitor::spec::CompiledSpec;

const POOL: usize = 6;
const POLICIES: [GcPolicy; 3] = [GcPolicy::None, GcPolicy::AllParamsDead, GcPolicy::CoenableLazy];

/// One scheduled step of the deterministic workload driver.
enum Step {
    Kill(usize),
    Collect,
    Event(EventId, Vec<(rv_monitor::logic::ParamId, usize)>),
}

/// A seed-reproducible schedule of kills, collections, and events over a
/// fixed pool of parameter objects — the same shape the chaos and crash
/// harnesses use, regenerated here so the test is a pure function of
/// `(spec, seed)`.
fn schedule(spec: &CompiledSpec, seed: u64, events: usize) -> Vec<Step> {
    let mut rng = SplitMix64::new(seed ^ 0x5851_f42d_4c95_7f2d);
    let mut steps = Vec::new();
    let mut emitted = 0;
    while emitted < events {
        if rng.chance(0.15) {
            steps.push(Step::Kill(rng.gen_range(POOL)));
        } else if rng.chance(0.08) {
            steps.push(Step::Collect);
        } else {
            let e = EventId(rng.gen_range(spec.alphabet.len()) as u16);
            let slots =
                spec.event_params[e.as_usize()].iter().map(|&p| (p, rng.gen_range(POOL))).collect();
            steps.push(Step::Event(e, slots));
            emitted += 1;
        }
    }
    steps
}

fn fresh_pool(heap: &mut Heap, class: rv_monitor::heap::ClassId) -> Vec<ObjId> {
    let frame = heap.enter_frame();
    let pool: Vec<ObjId> = (0..POOL).map(|_| heap.alloc(class)).collect();
    for &o in &pool {
        heap.pin(o);
    }
    heap.exit_frame(frame);
    pool
}

fn apply(
    step: &Step,
    heap: &mut Heap,
    class: rv_monitor::heap::ClassId,
    pool: &mut [ObjId],
    monitors: &mut [&mut PropertyMonitor],
) {
    match step {
        Step::Kill(slot) => {
            heap.unpin(pool[*slot]);
            let frame = heap.enter_frame();
            let fresh = heap.alloc(class);
            heap.pin(fresh);
            heap.exit_frame(frame);
            pool[*slot] = fresh;
        }
        Step::Collect => {
            heap.collect();
        }
        Step::Event(e, slots) => {
            let pairs: Vec<_> = slots.iter().map(|&(p, s)| (p, pool[s])).collect();
            let binding = Binding::from_pairs(&pairs);
            for m in monitors.iter_mut() {
                m.try_process(heap, *e, binding).expect("engine accepts scheduled event");
            }
        }
    }
}

/// Engine statistics with the lookup-cache counter zeroed: a restored
/// monitor deliberately starts with a cold cache, so `cache_hits` is the
/// one counter allowed to differ between the twins.
fn normalized(m: &PropertyMonitor) -> rv_monitor::core::EngineStats {
    let mut s = m.stats();
    s.cache_hits = 0;
    s
}

fn round_trip_one(spec: &CompiledSpec, policy: GcPolicy, seed: u64, events: usize, split: usize) {
    let config = EngineConfig { policy, record_triggers: true, ..EngineConfig::default() };
    let mut original = PropertyMonitor::new(spec.clone(), &config);
    let mut heap = Heap::new(HeapConfig::manual());
    let class = heap.register_class("Obj");
    let mut pool = fresh_pool(&mut heap, class);
    let steps = schedule(spec, seed, events);

    for step in &steps[..split] {
        apply(step, &mut heap, class, &mut pool, &mut [&mut original]);
    }
    let snap = original.snapshot_bytes().expect("serializable state");
    let mut restored = PropertyMonitor::new(spec.clone(), &config);
    restored.restore_snapshot(&snap, "<memory>").expect("restore own snapshot");
    assert_eq!(
        restored.snapshot_bytes().expect("re-serialize"),
        snap,
        "{}/{policy:?}/seed {seed}: restore → snapshot must be byte-identical",
        spec.name
    );
    restored.check_invariants(&heap).expect("restored state is structurally sound");

    for step in &steps[split..] {
        apply(step, &mut heap, class, &mut pool, &mut [&mut original, &mut restored]);
    }
    original.finish(&heap);
    restored.finish(&heap);
    assert_eq!(
        normalized(&original),
        normalized(&restored),
        "{}/{policy:?}/seed {seed}: twins diverged after the split",
        spec.name
    );
    for (a, b) in original.engines().iter().zip(restored.engines()) {
        assert_eq!(a.triggers(), b.triggers(), "{}/{policy:?}/seed {seed}", spec.name);
    }
}

/// Every catalog property, every GC policy: snapshot mid-run, restore,
/// and the twin runs stay in lock-step to the end of the trace.
#[test]
fn snapshot_round_trips_for_every_catalog_property_and_policy() {
    for property in Property::ALL {
        let spec = compiled(property).expect("catalog property compiles");
        for policy in POLICIES {
            round_trip_one(&spec, policy, 11, 96, 40);
        }
    }
}

/// A snapshot taken at step 0 (before any event) and at the very end of
/// the trace both round-trip — the boundary cases of the split point.
#[test]
fn snapshot_round_trips_at_trace_boundaries() {
    let spec = compiled(Property::UnsafeMapIter).expect("catalog property compiles");
    for split in [0, 60] {
        round_trip_one(&spec, GcPolicy::CoenableLazy, 3, 60, split);
    }
}

fn scratch(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("rv-crash-sweep-{}-{tag}", std::process::id()))
}

/// The crash sweep proper: every kill class against every catalog
/// property under the paper's coenable policy. Each run crashes at a
/// seed-chosen operation, mutilates the journal or checkpoint per the
/// kill class, recovers, finishes the trace, and must equal the
/// uninterrupted oracle with zero duplicate goal-report deliveries.
#[test]
fn every_property_survives_every_kill_class() {
    for (pi, property) in Property::ALL.into_iter().enumerate() {
        let spec = compiled(property).expect("catalog property compiles");
        for (ki, kill) in KillClass::ALL.into_iter().enumerate() {
            let dir = scratch(&format!("p{pi}k{ki}"));
            let out = crash_and_recover(&spec, 0, GcPolicy::CoenableLazy, 23, 96, 8, kill, &dir)
                .expect("harness runs clean");
            assert!(
                out.ok(),
                "{}/{}: verdicts_match={} stats_match={} dups={} delivered={} (oracle {})",
                spec.name,
                kill.label(),
                out.verdicts_match(),
                out.stats_match(),
                out.duplicate_deliveries,
                out.delivered,
                out.oracle_stats.triggers
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// Seeds × policies on one representative property: the crash point and
/// the mutilation move with the seed, so this sweeps many distinct
/// kill offsets.
#[test]
fn seed_sweep_crashes_at_many_offsets_without_duplicates() {
    let spec = compiled(Property::UnsafeIter).expect("catalog property compiles");
    for policy in POLICIES {
        for seed in [1u64, 2, 3, 5, 8] {
            for (ki, kill) in KillClass::ALL.into_iter().enumerate() {
                let dir = scratch(&format!("s{seed}{policy:?}k{ki}"));
                let out = crash_and_recover(&spec, 0, policy, seed, 80, 6, kill, &dir)
                    .expect("harness runs clean");
                assert!(
                    out.ok(),
                    "{policy:?}/seed {seed}/{}: dups={} lost={}",
                    kill.label(),
                    out.duplicate_deliveries,
                    out.lost_bytes
                );
                assert_eq!(out.duplicate_deliveries, 0);
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }
}

/// Property-based round-trip: proptest chooses the property, policy,
/// seed, and split point. Gated behind `external-deps` with the rest of
/// the proptest suites.
#[cfg(feature = "external-deps")]
mod prop {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn any_split_point_round_trips(
            pi in 0usize..10,
            policy in prop_oneof![
                Just(GcPolicy::None),
                Just(GcPolicy::AllParamsDead),
                Just(GcPolicy::CoenableLazy),
            ],
            seed in 0u64..1_000,
            events in 8usize..64,
            split_frac in 0.0f64..1.0,
        ) {
            let spec = compiled(Property::ALL[pi]).expect("catalog property compiles");
            let steps = schedule(&spec, seed, events).len();
            let split = ((steps as f64) * split_frac) as usize;
            round_trip_one(&spec, policy, seed, events, split.min(steps));
        }
    }
}
