//! `rvmon recover` against the corrupt-artifact corpus in
//! `tests/data/corrupt/`: every unusable journal must produce a typed
//! `error:` diagnostic and exit code 2 — never a panic — while a journal
//! that is merely torn at the tail must recover cleanly (torn tails are
//! normal crash debris, not corruption).

use std::path::Path;
use std::process::Command;

fn repo_path(rel: &str) -> String {
    format!("{}/{rel}", env!("CARGO_MANIFEST_DIR"))
}

/// Copies one corpus directory into a fresh scratch dir — `recover`
/// repairs journals in place, and the committed corpus must stay
/// pristine.
fn stage(case: &str) -> std::path::PathBuf {
    let dst = std::env::temp_dir().join(format!("rv-corrupt-{}-{case}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dst);
    std::fs::create_dir_all(&dst).expect("create scratch dir");
    let src = repo_path(&format!("tests/data/corrupt/{case}"));
    for entry in std::fs::read_dir(&src).expect("corpus dir exists") {
        let entry = entry.expect("readable entry");
        std::fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy corpus file");
    }
    dst
}

/// Runs `rvmon <cmd> <dir>` and returns (exit code, stdout, stderr).
fn run(cmd: &str, dir: &Path) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_rvmon"))
        .args([cmd, dir.to_str().expect("utf-8 path")])
        .output()
        .expect("run rvmon");
    (
        out.status.code().expect("rvmon terminated by signal"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// The four unusable corpus cases: an empty segment, a stale format
/// version, a first record truncated mid-body, and a first record with a
/// corrupted checksum. None of them leaves a durable spec record, so both
/// `recover` and `replay` must refuse with a typed error.
#[test]
fn unusable_journals_exit_2_with_typed_errors() {
    for case in ["empty", "stale_version", "truncated", "bad_crc"] {
        for cmd in ["recover", "replay"] {
            let dir = stage(case);
            let (code, out, err) = run(cmd, &dir);
            assert_eq!(
                code, 2,
                "rvmon {cmd} on {case}: expected exit 2, got {code}\nstderr: {err}"
            );
            assert!(err.contains("error:"), "rvmon {cmd} on {case}: no diagnostic: {err}");
            assert!(
                !err.contains("panicked") && !out.contains("panicked"),
                "rvmon {cmd} on {case} panicked: {err}"
            );
        }
    }
}

/// The error messages carry file/offset context where the format defines
/// one: header-level corruption (a stale version byte) names the segment
/// and byte offset. An empty segment is *not* header corruption — it is
/// what a crash between `create` and the header write leaves behind — so
/// it reports the directory-level "no durable records" instead.
#[test]
fn header_corruption_is_anchored_to_file_and_offset() {
    let dir = stage("stale_version");
    let (code, _out, err) = run("recover", &dir);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("journal-00000000"), "no file context: {err}");
    assert!(err.contains("at byte"), "no offset context: {err}");
    assert!(err.contains("version"), "no version detail: {err}");

    let dir = stage("empty");
    let (code, _out, err) = run("recover", &dir);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("no durable records"), "stderr: {err}");
}

/// A torn tail is crash debris, not corruption: `recover` truncates it,
/// reports what was discarded, and exits 0 — and `replay` on the repaired
/// journal then sees a clean tail.
#[test]
fn torn_tail_recovers_cleanly_and_reports_the_discard() {
    let dir = stage("torn_tail");
    let (code, out, err) = run("recover", &dir);
    assert_eq!(code, 0, "stdout: {out}\nstderr: {err}");
    assert!(out.contains("truncated torn tail"), "no discard report: {out}");
    assert!(out.contains("byte(s) discarded"), "no lost-byte count: {out}");

    let (code, out, err) = run("replay", &dir);
    assert_eq!(code, 0, "stdout: {out}\nstderr: {err}");
    assert!(!out.contains("torn tail"), "tail should be clean after repair: {out}");
}
