//! Supervision and hot-reload battery against an in-process [`Service`]:
//! a worker-fatal tenant is restarted unattended with its counters and
//! acked history intact, the restart budget circuit-breaks
//! deterministically to `failed-permanent`, and spec reloads are
//! idempotent, versioned, and journal-durable across a daemon restart.

use std::sync::atomic::Ordering;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use rv_monitor::core::service::TENANT_FLAG_ALLOW_FATAL;
use rv_monitor::core::{
    Backpressure, Service, ServiceConfig, SupervisorConfig, TenantOptions, TenantState,
};

const SPEC: &str = r#"
UnsafeIter(Collection c, Iterator i) {
    event create(c, i);
    event update(c);
    event next(i);
    ere: update* create next* update+ next
    @match { report "improper Concurrent Modification found!"; }
}
"#;

const SPEC_V2: &str = r#"
UnsafeIter(Collection c, Iterator i) {
    event create(c, i);
    event update(c);
    event next(i);
    ere: update* create next+ update+ next
    @match { report "v2: improper Concurrent Modification found!"; }
}
"#;

fn scratch(tag: &str) -> std::path::PathBuf {
    let nanos = SystemTime::now().duration_since(UNIX_EPOCH).unwrap().as_nanos();
    let dir = std::env::temp_dir().join(format!("rv-selfheal-{tag}-{nanos}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn supervised_config(root: &std::path::Path, max_restarts: u32) -> ServiceConfig {
    ServiceConfig {
        root: root.to_path_buf(),
        backpressure: Backpressure::Block,
        reply_timeout: Duration::from_secs(10),
        supervisor: SupervisorConfig {
            max_restarts,
            window: Duration::from_secs(60),
            backoff: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(100),
            poll: Duration::from_millis(5),
            ..SupervisorConfig::default()
        },
        ..ServiceConfig::default()
    }
}

fn fatal_opts() -> TenantOptions {
    TenantOptions { flags: TENANT_FLAG_ALLOW_FATAL, ..TenantOptions::default() }
}

fn snapshot(svc: &Service, name: &str) -> rv_monitor::core::TenantSnapshot {
    svc.snapshots().into_iter().find(|s| s.name == name).expect("tenant snapshot")
}

/// Polls until `pred` holds on the tenant snapshot or the deadline
/// passes; panics with the last snapshot on timeout.
fn wait_for(
    svc: &Service,
    name: &str,
    what: &str,
    pred: impl Fn(&rv_monitor::core::TenantSnapshot) -> bool,
) -> rv_monitor::core::TenantSnapshot {
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let snap = snapshot(svc, name);
        if pred(&snap) {
            return snap;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}; last snapshot: {}",
            snap.to_json()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Drives `n` UnsafeIter matches (`2n + 1` events) through `submit`.
fn drive(svc: &Service, tenant: &str, prefix: &str, n: usize) {
    for i in 0..n {
        svc.submit(tenant, &format!("create c {prefix}{i}")).unwrap();
    }
    svc.submit(tenant, "update c").unwrap();
    for i in 0..n {
        svc.submit(tenant, &format!("next {prefix}{i}")).unwrap();
    }
    svc.sync(tenant, 1).unwrap();
}

#[test]
fn supervisor_restarts_fatal_tenant_unattended() {
    let root = scratch("restart");
    let svc = Service::new(supervised_config(&root, 3)).unwrap();
    svc.admit("t", SPEC, fatal_opts()).unwrap();

    drive(&svc, "t", "i", 6);
    let before = snapshot(&svc, "t");
    assert_eq!(before.triggers, 6, "{}", before.to_json());

    // The worker dies; nobody intervenes. The supervisor must bring the
    // tenant back to Running through the recovery path.
    svc.submit("t", "!fatal").unwrap();
    let healed = wait_for(&svc, "t", "supervised restart", |s| {
        s.state == TenantState::Running && s.restarts == 1
    });

    // Acked history survived the crash: every pre-fatal event was
    // replayed, every pre-fatal trigger suppressed (not re-delivered).
    // The `!fatal` directive itself is a journaled marker, not an event.
    assert_eq!(healed.events, before.events, "{}", healed.to_json());
    assert_eq!(healed.triggers, 6, "{}", healed.to_json());
    assert_eq!(healed.suppressed_triggers, 6, "replay re-delivered: {}", healed.to_json());
    assert!(healed.recovered_events > 0, "{}", healed.to_json());

    // And the healed tenant keeps working.
    drive(&svc, "t", "j", 3);
    let after = snapshot(&svc, "t");
    assert_eq!(after.triggers, 9, "{}", after.to_json());

    assert_eq!(svc.stats.tenants_restarted.load(Ordering::Relaxed), 1);
    assert_eq!(svc.stats.tenants_circuit_broken.load(Ordering::Relaxed), 0);
    let health = svc.healthz();
    assert!(health.contains("restarts=1"), "{health}");
    let prom = svc.prometheus();
    assert!(prom.contains("rvmond_tenants_restarted_total 1"), "{prom}");

    drop(svc);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn restart_budget_circuit_breaks_deterministically() {
    let root = scratch("circuit");
    let svc = Service::new(supervised_config(&root, 2)).unwrap();
    svc.admit("t", SPEC, fatal_opts()).unwrap();

    // Burn the budget: each fatal consumes one restart. The third crash
    // exceeds max_restarts=2 inside the window and must circuit-break.
    for round in 1..=2u64 {
        svc.submit("t", "!fatal").unwrap();
        wait_for(&svc, "t", "restart after fatal", |s| {
            s.state == TenantState::Running && s.restarts == round
        });
    }
    svc.submit("t", "!fatal").unwrap();
    let broken = wait_for(&svc, "t", "circuit break", |s| {
        matches!(s.state, TenantState::FailedPermanent(_))
    });
    assert_eq!(broken.restarts, 2, "budget overrun: {}", broken.to_json());

    // Deterministic terminal state: submissions answer 500, the state
    // never flaps back, and the break is visible on every surface.
    let (code, _) = svc.submit("t", "update c").unwrap_err();
    assert_eq!(code, 500);
    std::thread::sleep(Duration::from_millis(50));
    assert!(
        matches!(snapshot(&svc, "t").state, TenantState::FailedPermanent(_)),
        "circuit break must hold"
    );
    assert_eq!(svc.stats.tenants_circuit_broken.load(Ordering::Relaxed), 1);
    let health = svc.healthz();
    assert!(health.contains("state=failed-permanent"), "{health}");
    let prom = svc.prometheus();
    assert!(prom.contains("rvmond_tenants_circuit_broken_total 1"), "{prom}");

    drop(svc);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn unsupervised_fatal_stays_failed() {
    let root = scratch("unsup");
    let svc = Service::new(supervised_config(&root, 0)).unwrap();
    svc.admit("t", SPEC, fatal_opts()).unwrap();
    svc.submit("t", "!fatal").unwrap();
    let failed = wait_for(&svc, "t", "worker death", |s| matches!(s.state, TenantState::Failed(_)));
    // No supervisor thread: the tenant must still be Failed well past
    // any plausible restart backoff.
    std::thread::sleep(Duration::from_millis(200));
    assert!(matches!(snapshot(&svc, "t").state, TenantState::Failed(_)), "{}", failed.to_json());
    assert_eq!(svc.stats.tenants_restarted.load(Ordering::Relaxed), 0);
    drop(svc);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn reload_is_idempotent_versioned_and_durable() {
    let root = scratch("reload");
    let svc = Service::new(supervised_config(&root, 1)).unwrap();
    svc.admit("t", SPEC, TenantOptions::default()).unwrap();
    drive(&svc, "t", "i", 2);

    // v1 → v2, exactly once for a given token.
    assert_eq!(svc.reload("t", 7, SPEC_V2).unwrap(), 2);
    assert_eq!(svc.reload("t", 7, SPEC_V2).unwrap(), 2, "same token must be a no-op");
    assert_eq!(snapshot(&svc, "t").spec_version, 2, "idempotent retry reapplied");
    assert_eq!(svc.reload("t", 8, SPEC).unwrap(), 3, "new token bumps the version");

    // A bad spec is a typed 422 and leaves the version alone.
    let (code, _) = svc.reload("t", 9, "NotASpec {").unwrap_err();
    assert_eq!(code, 422);
    let snap = snapshot(&svc, "t");
    assert_eq!(snap.spec_version, 3, "{}", snap.to_json());

    // The reload works after the cutover: pre-reload state was
    // checkpointed at the exact journal tail, so new events monitor
    // under the new spec with nothing lost.
    drive(&svc, "t", "k", 2);
    let snap = snapshot(&svc, "t");
    assert_eq!(snap.triggers, 4, "{}", snap.to_json());

    // Durability: the AUX_RELOAD cutover records survive a full daemon
    // restart over the same root.
    assert!(svc.drain() >= 1);
    drop(svc);
    let svc = Service::new(supervised_config(&root, 1)).unwrap();
    let (recovered, failed) = svc.recover_all().unwrap();
    assert_eq!((recovered.len(), failed.len()), (1, 0), "{failed:?}");
    let snap = snapshot(&svc, "t");
    assert_eq!(snap.spec_version, 3, "reload version lost in recovery: {}", snap.to_json());
    assert_eq!(snap.triggers, 4, "{}", snap.to_json());
    drop(svc);
    let _ = std::fs::remove_dir_all(&root);
}
