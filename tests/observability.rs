//! Observability battery against an in-process [`Service`]: request
//! traces land in the per-tenant ring with full stage breakdowns, SLO
//! error budgets burn under injected errors, the flight recorder black-
//! boxes a worker failure into a parseable dump, the Prometheus
//! exposition never emits a duplicate series, a circuit-broken tenant's
//! label set freezes, and the disabled trace path is structurally free.

use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use rv_monitor::core::service::TENANT_FLAG_ALLOW_FATAL;
use rv_monitor::core::{
    Backpressure, FlightDump, NoopObserver, RequestTrace, RequestTraceRing, Service, ServiceConfig,
    SloConfig, SupervisorConfig, TenantOptions, TenantState, STAGE_COUNT,
};

const SPEC: &str = r#"
UnsafeIter(Collection c, Iterator i) {
    event create(c, i);
    event update(c);
    event next(i);
    ere: update* create next* update+ next
    @match { report "improper Concurrent Modification found!"; }
}
"#;

fn scratch(tag: &str) -> std::path::PathBuf {
    let nanos = SystemTime::now().duration_since(UNIX_EPOCH).unwrap().as_nanos();
    let dir = std::env::temp_dir().join(format!("rv-obs-{tag}-{nanos}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config(root: &std::path::Path) -> ServiceConfig {
    ServiceConfig {
        root: root.to_path_buf(),
        backpressure: Backpressure::Block,
        reply_timeout: Duration::from_secs(10),
        slo: SloConfig::parse("latency_target_us=1000000,latency_goal=0.5,window=64").unwrap(),
        ..ServiceConfig::default()
    }
}

/// Drives `n` UnsafeIter matches (`2n + 1` events) through the traced
/// ingest path, as if each line arrived on a session-stamped frame.
fn drive_traced(svc: &Service, tenant: &str, prefix: &str, n: usize) {
    let mut cseq = 0u64;
    let mut send = |line: &str| {
        cseq += 1;
        svc.submit_traced(tenant, 7, cseq, line, 1_000).unwrap();
    };
    for i in 0..n {
        send(&format!("create c {prefix}{i}"));
    }
    send("update c");
    for i in 0..n {
        send(&format!("next {prefix}{i}"));
    }
    svc.sync(tenant, 1).unwrap();
}

#[test]
fn trace_ring_captures_stage_breakdown_exemplars() {
    let root = scratch("ring");
    let svc = Service::new(config(&root)).unwrap();
    svc.admit("t", SPEC, TenantOptions::default()).unwrap();
    drive_traced(&svc, "t", "i", 8);

    let path = svc.dump_flight("exemplars").unwrap();
    let dump = FlightDump::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(dump.reason, "exemplars");
    assert!(!dump.traces.is_empty(), "ring must hold request traces");
    for (tenant, trace) in &dump.traces {
        assert_eq!(tenant, "t");
        assert_eq!(trace.session, 7);
        assert_eq!(trace.stages.len(), STAGE_COUNT);
        // wire_read is journaled as handed in; engine + journal_append
        // are timed by the worker on every line.
        assert_eq!(trace.stages[0], 1_000, "wire span survives the pipeline");
        assert!(trace.stages[3] > 0, "engine span timed: {trace:?}");
        assert!(trace.stages[4] > 0, "journal_append span timed: {trace:?}");
        assert!(trace.total_ns() >= 1_000);
    }
    // The dump is idempotent text: render → parse → same shape.
    let text = std::fs::read_to_string(&path).unwrap();
    let reparsed = FlightDump::parse(&text).unwrap();
    assert_eq!(reparsed.traces.len(), dump.traces.len());
    assert!(!reparsed.render_text().is_empty());

    let _ = svc.drain();
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn stage_sums_stay_consistent_with_sync_rtt() {
    let root = scratch("sums");
    let svc = Service::new(config(&root)).unwrap();
    svc.admit("t", SPEC, TenantOptions::default()).unwrap();

    let t0 = Instant::now();
    drive_traced(&svc, "t", "i", 32);
    let wall_us = t0.elapsed().as_micros() as f64;

    let json = svc.tenant_stats_json("t").unwrap();
    let sum = |stage: &str| -> f64 {
        let pat = format!("\"{stage}_sum_us\":");
        let rest =
            &json[json.find(&pat).unwrap_or_else(|| panic!("no {pat} in {json}")) + pat.len()..];
        let end = rest.find([',', '}']).unwrap();
        rest[..end].parse().unwrap()
    };
    // The worker-serial stages (engine, journal append + fsync, trigger
    // delivery) execute one request at a time on one thread, so their
    // sums must fit inside the wall clock of the drive — a gross
    // inconsistency means a stage is measuring something it shouldn't.
    // (queue_wait sums deliberately exceed wall clock: queued requests
    // wait concurrently.)
    let attributed =
        sum("engine") + sum("journal_append") + sum("journal_fsync") + sum("trigger_delivery");
    assert!(attributed > 0.0, "stages must attribute nonzero time: {json}");
    assert!(
        attributed <= wall_us,
        "serial stage sums ({attributed:.0}us) exceed the drive wall clock ({wall_us:.0}us): \
         {json}"
    );
    assert!(sum("queue_wait") > 0.0, "queue wait must be attributed: {json}");

    let _ = svc.drain();
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn slo_error_budget_burns_under_injected_errors() {
    let root = scratch("slo");
    let mut cfg = config(&root);
    cfg.slo = SloConfig::parse("availability=0.99,window=100").unwrap();
    let svc = Service::new(cfg).unwrap();
    svc.admit("t", SPEC, TenantOptions::default()).unwrap();
    drive_traced(&svc, "t", "i", 8);

    let before = svc.prometheus();
    assert!(
        before.contains(
            "rvmond_slo_error_budget_remaining{tenant=\"t\",objective=\"availability\"} 1"
        ),
        "budget starts intact: {before}"
    );
    // Ten malformed-frame rejects in a 100-wide window at a 1% error
    // budget: the availability budget must be fully burnt.
    for _ in 0..10 {
        svc.note_request_error("t", 400, "malformed frame");
    }
    let after = svc.prometheus();
    assert!(
        after.contains(
            "rvmond_slo_error_budget_remaining{tenant=\"t\",objective=\"availability\"} 0"
        ),
        "ten errors in a 100-window at 0.99 must exhaust the budget: {after}"
    );
    let burn_line = after
        .lines()
        .find(|l| l.starts_with("rvmond_slo_burn_rate{tenant=\"t\",objective=\"availability\"}"))
        .expect("burn rate series");
    let burn: f64 = burn_line.rsplit(' ').next().unwrap().parse().unwrap();
    assert!(burn > 1.0, "burn rate must exceed 1x: {burn_line}");
    let health = svc.healthz();
    assert!(health.contains("slo t "), "{health}");
    assert!(health.contains("bad=10"), "healthz must surface the errors: {health}");

    let _ = svc.drain();
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn flight_dump_written_on_worker_failure() {
    let root = scratch("dump");
    let svc = Service::new(config(&root)).unwrap();
    let opts = TenantOptions { flags: TENANT_FLAG_ALLOW_FATAL, ..TenantOptions::default() };
    svc.admit("t", SPEC, opts).unwrap();
    drive_traced(&svc, "t", "i", 4);
    svc.submit("t", "!fatal").unwrap();

    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let snap = svc.snapshots().into_iter().find(|s| s.name == "t").unwrap();
        if matches!(snap.state, TenantState::Failed(_)) {
            break;
        }
        assert!(Instant::now() < deadline, "worker never failed: {}", snap.to_json());
        std::thread::sleep(Duration::from_millis(10));
    }
    // The black box lands next to the tenant directory, named after the
    // tenant and the failure class, without any operator involvement.
    let dump_path = root.join("flight-t-worker-fatal-0.rvfr");
    let deadline = Instant::now() + Duration::from_secs(15);
    while !dump_path.exists() {
        assert!(Instant::now() < deadline, "no flight dump at {}", dump_path.display());
        std::thread::sleep(Duration::from_millis(10));
    }
    let dump = FlightDump::parse(&std::fs::read_to_string(&dump_path).unwrap()).unwrap();
    assert_eq!(dump.reason, "worker-fatal");
    assert!(
        dump.meta.iter().any(|(k, v)| k == "tenant" && v == "t"),
        "dump must name the tenant: {:?}",
        dump.meta
    );
    assert!(!dump.traces.is_empty(), "dump carries the pre-failure request traces");
    let rendered = dump.render_text();
    assert!(rendered.contains("reason=worker-fatal"), "{rendered}");
    assert!(rendered.contains("wire_read="), "stage breakdown rendered: {rendered}");

    let _ = svc.drain();
    std::fs::remove_dir_all(&root).unwrap();
}

/// Parses a Prometheus text exposition into (series-with-labels) keys
/// and asserts structural lints: no duplicate series, and exactly one
/// `# TYPE` per metric family.
fn lint_exposition(expo: &str) {
    let mut series = std::collections::HashSet::new();
    let mut types = std::collections::HashSet::new();
    for line in expo.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let name = rest.split_whitespace().next().unwrap();
            assert!(types.insert(name.to_owned()), "duplicate # TYPE for `{name}`");
            continue;
        }
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let key = line.rsplit_once(' ').map_or(line, |(k, _)| k);
        assert!(series.insert(key.to_owned()), "duplicate series `{key}`");
    }
    assert!(!series.is_empty());
}

#[test]
fn exposition_has_no_duplicate_series() {
    let root = scratch("lint");
    let svc = Service::new(config(&root)).unwrap();
    svc.admit("alpha", SPEC, TenantOptions::default()).unwrap();
    svc.admit("beta", SPEC, TenantOptions::default()).unwrap();
    drive_traced(&svc, "alpha", "i", 4);
    drive_traced(&svc, "beta", "j", 2);
    lint_exposition(&svc.prometheus());
    let _ = svc.drain();
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn failed_tenant_label_set_freezes_after_circuit_break() {
    let root = scratch("freeze");
    let mut cfg = config(&root);
    cfg.supervisor = SupervisorConfig {
        max_restarts: 1,
        window: Duration::from_secs(60),
        backoff: Duration::from_millis(10),
        backoff_cap: Duration::from_millis(100),
        poll: Duration::from_millis(5),
        ..SupervisorConfig::default()
    };
    let svc = Service::new(cfg).unwrap();
    let opts = TenantOptions { flags: TENANT_FLAG_ALLOW_FATAL, ..TenantOptions::default() };
    svc.admit("t", SPEC, opts).unwrap();
    svc.admit("live", SPEC, TenantOptions::default()).unwrap();
    drive_traced(&svc, "t", "i", 4);

    // Burn the restart budget: fatal → restart, fatal again → break.
    let wait_state = |pred: &dyn Fn(&rv_monitor::core::TenantSnapshot) -> bool, what: &str| {
        let deadline = Instant::now() + Duration::from_secs(15);
        loop {
            let snap = svc.snapshots().into_iter().find(|s| s.name == "t").unwrap();
            if pred(&snap) {
                return;
            }
            assert!(Instant::now() < deadline, "timed out on {what}: {}", snap.to_json());
            std::thread::sleep(Duration::from_millis(10));
        }
    };
    svc.submit("t", "!fatal").unwrap();
    wait_state(
        &|s| matches!(s.state, TenantState::Running) && s.restarts == 1,
        "supervised restart",
    );
    svc.submit("t", "!fatal").unwrap();
    wait_state(&|s| matches!(s.state, TenantState::FailedPermanent(_)), "circuit break");

    let tenant_series = |expo: &str| -> std::collections::BTreeSet<String> {
        expo.lines()
            .filter(|l| !l.starts_with('#') && l.contains("tenant=\"t\""))
            .map(|l| l.rsplit_once(' ').map_or(l, |(k, _)| k).to_owned())
            .collect()
    };
    let frozen = tenant_series(&svc.prometheus());
    assert!(!frozen.is_empty(), "broken tenant keeps its series");

    // More traffic elsewhere must not grow or shrink the broken
    // tenant's label set — dashboards keep their history, alerts their
    // identity.
    drive_traced(&svc, "live", "k", 6);
    let after = tenant_series(&svc.prometheus());
    assert_eq!(frozen, after, "label set must freeze at circuit-break");
    lint_exposition(&svc.prometheus());

    // And the circuit-break itself black-boxed a dump.
    let dumps: Vec<_> = std::fs::read_dir(&root)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("flight-t-") && n.ends_with(".rvfr"))
        .collect();
    assert!(!dumps.is_empty(), "circuit break must write a flight dump");

    let _ = svc.drain();
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn disabled_trace_path_is_structurally_free() {
    // The engine's disabled observer is a ZST: monomorphized observer
    // calls compile to nothing, so the un-instrumented path cannot pay
    // for instrumentation it doesn't use.
    assert_eq!(std::mem::size_of::<NoopObserver>(), 0);

    // A zero-capacity trace ring retains nothing: pushes count but
    // neither allocate nor keep traces, so `--trace-ring 0` is a pure
    // counter increment per request.
    let mut ring = RequestTraceRing::new(0, 0);
    assert!(!ring.enabled());
    for i in 0..1_000 {
        ring.push(RequestTrace { session: 1, cseq: i, seq: i, at_ns: 0, stages: [1; STAGE_COUNT] });
    }
    assert_eq!(ring.recorded(), 1_000);
    assert_eq!(ring.recent().count(), 0);
    assert!(ring.slowest().is_empty());
}
